"""Microbenchmarks of the substrate components.

These use pytest-benchmark's statistical timing (many rounds) — useful for
catching performance regressions in the hot paths that dominate full
simulation runs: cache lookups, fabric delivery, detector updates.
"""

from repro.cache import LineState, SetAssociativeCache
from repro.common import CacheConfig, EventQueue, Stats, baseline
from repro.common.stats import Stats as StatsClass
from repro.network import Fabric, Message, MsgType
from repro.protocol import DetectorEntry, ProducerConsumerDetector
from repro.sim import Compute, System


def test_cache_probe_hit(benchmark):
    cache = SetAssociativeCache(CacheConfig(32 * 1024, 4), name="bench")
    for i in range(64):
        cache.insert(i * 128)
    benchmark(cache.access, 31 * 128)


def test_cache_insert_evict(benchmark):
    cache = SetAssociativeCache(CacheConfig(4096, 4), name="bench")
    addrs = [i * 128 for i in range(256)]
    counter = [0]

    def insert_next():
        cache.insert(addrs[counter[0] % len(addrs)])
        counter[0] += 1

    benchmark(insert_next)


def test_fabric_send_deliver(benchmark):
    cfg = baseline(num_nodes=4)
    events = EventQueue()
    fabric = Fabric(cfg, events, Stats())
    for n in range(4):
        fabric.attach(n, lambda m: None)

    def roundtrip():
        fabric.send(Message(MsgType.GETS, 0, 3, 0))
        events.run()

    benchmark(roundtrip)


def test_detector_update(benchmark):
    detector = ProducerConsumerDetector(baseline().protocol, StatsClass())
    entry = DetectorEntry(addr=0)

    def cycle():
        detector.observe_write(entry, 1, distinct_readers=1)
        detector.observe_read(entry, 2, already_sharer=False)

    benchmark(cycle)


def test_event_queue_throughput(benchmark):
    def burst():
        events = EventQueue()
        for i in range(1000):
            events.schedule(i % 97, lambda: None)
        events.run()

    benchmark(burst)


def test_event_queue_batched_schedule(benchmark):
    """schedule_many + run: the batched push/pop path of the rewrite."""
    nop = lambda: None
    batch = [(i % 97, nop, ()) for i in range(1000)]

    def burst():
        events = EventQueue()
        events.schedule_many(batch)
        events.run()

    benchmark(burst)


def test_message_pool_acquire_release(benchmark):
    """Message construction through the free-list pool (steady state:
    every release feeds the next acquire, so no allocation occurs)."""
    Message.clear_pool()
    Message(MsgType.GETS, 0, 1, 0).release()  # prime the pool

    def cycle():
        Message(MsgType.GETS, 0, 1, 0x80).release()

    benchmark(cycle)


def test_dispatch_table_hit(benchmark):
    """Hub handler dispatch through the pre-bound per-MsgType array."""
    from repro.sim.system import System as _System

    system = _System(baseline(num_nodes=4), check_coherence=False)
    hub = system.hubs[0]
    msg = Message(MsgType.WB_ACK, src=1, dst=0, addr=0)

    benchmark(hub.dispatch, msg)


def test_simulator_ops_per_second(benchmark):
    """End-to-end simulation throughput on a compute-only trace."""
    def run():
        system = System(baseline(num_nodes=4), check_coherence=False)
        system.run([[Compute(10) for _ in range(500)] for _ in range(4)])

    benchmark(run)
