"""Table 3: number of consumers in producer-consumer sharing patterns.

Regenerates the consumer-count distribution each application's detector
observes on the baseline system and prints it beside the paper's row.
"""

from repro.harness import experiments

from conftest import run_once


def test_table3(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.table3, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    print("\nPaper values for comparison:")
    for app, row in out["paper"].items():
        print("  %-7s %s" % (app, row))
    # Shape assertions: the dominant bucket matches the paper per app.
    dominant = {app: max(row, key=row.get)
                for app, row in out["paper"].items()}
    for app, bucket in dominant.items():
        measured = out["measured"][app]
        assert max(measured, key=measured.get) == bucket, app
