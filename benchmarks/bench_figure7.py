"""Figure 7: speedup, network messages and remote misses for all seven
applications on the six evaluated system configurations.

This is the paper's main result.  Shape expectations asserted:

* Em3D and LU gain the most, CG the least (~6%);
* MG is delegate-cache-limited (small config well below large);
* Appbt is RAC-limited (small config well below large);
* speedups land within a loose band of the paper's per-app numbers.
"""

from repro.harness import experiments

from conftest import run_once


def test_figure7(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure7, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    print("\nPaper speedups (small / large):")
    for app, row in out["paper"].items():
        measured = out["speedup"][app]
        print("  %-7s paper %.2f/%.2f  measured %.3f/%.3f" % (
            app, row["small"], row["large"],
            measured["dele32_rac32k"], measured["dele1k_rac1m"]))

    sp = {app: out["speedup"][app] for app in out["speedup"]}
    small, large = "dele32_rac32k", "dele1k_rac1m"
    # Ordering: biggest winners and the smallest winner.
    assert sp["cg"][large] == min(row[large] for row in sp.values())
    assert sp["em3d"][large] >= 1.2
    assert sp["lu"][large] >= 1.2
    # Capacity stories.
    assert sp["mg"][large] > sp["mg"][small]
    assert sp["appbt"][large] > sp["appbt"][small]
    # Every app benefits (or at worst is a wash) from the large config.
    assert all(row[large] > 0.97 for row in sp.values())
    # Remote misses and traffic drop for the communication-bound apps.
    assert out["misses"]["em3d"][large] < 0.8
    assert out["messages"]["em3d"][large] < 0.9
