"""Verification throughput (the paper's §2.5 as a benchmark).

Times exhaustive exploration of the full protocol model (delegation +
speculative updates + evictions, 3 nodes) and reports the state count —
the reproduction of "we built a formal model ... and performed an
exhaustive reachability analysis".
"""

from repro.mc import ALL_INVARIANTS, ModelChecker, ProtocolModel

from conftest import run_once


def explore(num_nodes=3, writers=(1,), readers=(2,)):
    model = ProtocolModel(num_nodes=num_nodes, writers=writers,
                          readers=readers)
    mc = ModelChecker(model.initial_states(), model.rules(), ALL_INVARIANTS,
                      quiescent=model.quiescent, track_traces=False,
                      canonicalize=model.canonical)
    return mc.run()


def test_exhaustive_verification(benchmark):
    result = run_once(benchmark, explore)
    print("\nfull mechanism, 3 nodes: %d states, %d transitions, depth %d"
          % (result.states_explored, result.transitions, result.max_depth))
    assert result.states_explored > 1000


def test_exhaustive_verification_two_consumers(benchmark):
    result = run_once(benchmark, explore, num_nodes=4, writers=(1,),
                      readers=(2, 3))
    print("\nfull mechanism, 4 nodes: %d states, %d transitions, depth %d"
          % (result.states_explored, result.transitions, result.max_depth))
    assert result.states_explored > 5000
