"""Ablation: detector design (paper §2.2 conservatism vs §5 future work).

Sweeps the write-repeat saturation threshold (1-bit aggressive vs 2-bit
paper default vs 3-bit conservative) and compares the paper's simple
single-writer detector against the §5 multi-writer extension, on the two
applications that stress detection the most:

* CG — heavy false sharing: the simple detector correctly refuses those
  lines; the multi-writer detector takes the bait and pays churn;
* Barnes — many stable producer-consumer lines: everything should detect.
"""

from repro.analysis import render_table
from repro.common import large
from repro.harness import SweepJob
from repro.common import params

from conftest import run_once

APPS = ("cg", "barnes")


def sweep(scale, engine):
    variants = {
        "aggressive (1-bit)": large().with_protocol(write_repeat_bits=1),
        "paper (2-bit)": large(),
        "conservative (3-bit)": large().with_protocol(write_repeat_bits=3),
        "multiwriter": large().with_protocol(detector_kind="multiwriter"),
    }
    jobs = {(app, "base"): SweepJob(app=app, config=params.baseline(),
                                    scale=scale)
            for app in APPS}
    jobs.update({(app, name): SweepJob(app=app, config=config, scale=scale)
                 for app in APPS for name, config in variants.items()})
    runs = engine.run_many(jobs)
    out = {}
    for app in APPS:
        base = runs[(app, "base")].metrics
        rows = {}
        for name in variants:
            m = runs[(app, name)].metrics
            rows[name] = {
                "speedup": base.cycles / m.cycles,
                "delegations": m.delegations,
                "undelegations": m.undelegations,
                "wasted": m.updates_wasted,
                "accuracy": m.update_accuracy,
            }
        out[app] = rows
    return out


def test_detector_ablation(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, sweep, bench_scale, bench_engine)
    for app, rows in out.items():
        table = [[name, r["speedup"], r["delegations"], r["undelegations"],
                  r["wasted"], "%.0f%%" % (100 * r["accuracy"])]
                 for name, r in rows.items()]
        print()
        print(render_table(
            ["detector", "speedup", "delegations", "undelegations",
             "wasted updates", "update accuracy"],
            table, title="Detector ablation: %s" % app))
    # The paper's 2-bit default trails the 1-bit aggressive variant a
    # little here: our generators emit perfectly stable patterns from the
    # first iteration, so earlier detection is pure upside — the startup
    # noise the paper's conservatism guards against does not exist in a
    # synthetic trace.  The default must still be close to the best and
    # strictly ahead of the over-conservative 3-bit variant.
    for app, rows in out.items():
        best = max(r["speedup"] for r in rows.values())
        assert rows["paper (2-bit)"]["speedup"] >= best - 0.08, app
        assert (rows["paper (2-bit)"]["speedup"]
                >= rows["conservative (3-bit)"]["speedup"] - 0.01), app
