"""Ablation: sharing-vector format at the home directory.

The paper's SGI-style directory stores a full per-node bit vector (exact
invalidations).  This ablation swaps in the classic compressed formats —
coarse vector and limited pointers — and measures what the lossy encodings
cost on a many-consumer application (Appbt) and a single-consumer one
(LU): extra invalidations, inflated update sets, and the speedup impact.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.common import baseline, large
from repro.directory.formats import DirectoryFormat
from repro.harness import SweepJob

from conftest import run_once

FORMATS = ("full", "coarse:4", "limited:2")
APPS = ("appbt", "lu")


def sweep(scale, engine):
    jobs = {}
    for app in APPS:
        for spec in FORMATS:
            jobs[(app, spec, "base")] = SweepJob(
                app=app, config=replace(baseline(), directory_format=spec),
                scale=scale)
            jobs[(app, spec, "enh")] = SweepJob(
                app=app, config=replace(large(), directory_format=spec),
                scale=scale)
    runs = engine.run_many(jobs)
    out = {}
    for app in APPS:
        rows = {}
        for spec in FORMATS:
            base = runs[(app, spec, "base")].metrics
            enh = runs[(app, spec, "enh")].metrics
            rows[spec] = {
                "speedup": base.cycles / enh.cycles,
                "base_msgs": base.messages,
                "enh_msgs": enh.messages,
                "bits": DirectoryFormat.parse(spec).bits_per_entry(16),
            }
        out[app] = rows
    return out


def test_directory_format_ablation(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, sweep, bench_scale, bench_engine)
    for app, rows in out.items():
        table = [[spec, r["bits"], r["speedup"], r["base_msgs"],
                  r["enh_msgs"]] for spec, r in rows.items()]
        print()
        print(render_table(
            ["format", "dir bits/entry", "speedup", "base msgs",
             "enhanced msgs"],
            table, title="Directory format ablation: %s" % app))
    for app, rows in out.items():
        # Compressed formats never help traffic...
        assert rows["coarse:4"]["base_msgs"] >= rows["full"]["base_msgs"]
        # ...and the mechanisms keep working under every encoding.
        assert all(r["speedup"] > 1.0 for r in rows.values()), app
