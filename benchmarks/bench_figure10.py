"""Figure 10: sensitivity to network hop latency (Appbt).

Baseline and enhanced (32-entry deledc + 32 KB RAC) execution time as hop
latency sweeps 25..200 ns.  Paper: execution time nearly doubles with each
doubling of hop latency, and the speedup of the mechanisms grows gradually
(24% -> 28%) as remote misses get more expensive.
"""

from repro.harness import experiments

from conftest import run_once


def test_figure10(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure10, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    points = out["measured"]
    # Execution time rises monotonically with hop latency.
    base_cycles = [p["base_cycles"] for p in points]
    assert base_cycles == sorted(base_cycles)
    # The mechanisms' value grows (or at least does not shrink) with
    # latency: compare the endpoints.
    assert points[-1]["speedup"] >= points[0]["speedup"]
    # And every point shows a real speedup.
    assert all(p["speedup"] > 1.0 for p in points)
