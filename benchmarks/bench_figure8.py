"""Figure 8: smarter vs larger caches at equal silicon area.

A 1 MB L2 with the 32-entry delegate cache + 32 KB RAC extensions is
compared against spending the same ~40 KB of SRAM on a plain 1.04 MB L2.
Paper: the extensions win for every benchmark except Appbt (whose small
RAC is its bottleneck).
"""

from repro.harness import experiments

from conftest import run_once


def test_figure8(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure8, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    winners = 0
    for app, row in out["measured"].items():
        if row["deledc_32K_RAC"] > row["equal_area_1.04M"]:
            winners += 1
    # "For most benchmarks adding a 32-entry delegate cache and a 32KB RAC
    # yields significantly better performance than simply building a
    # larger L2 cache."
    assert winners >= 5
    # A 4% larger L2 on multi-MB-resident workloads is a wash.
    for app, row in out["measured"].items():
        assert 0.95 < row["equal_area_1.04M"] < 1.1, app
