"""Figure 11: sensitivity to delegate cache size (MG).

MG has more live producer-consumer lines than a 32-entry delegate cache
holds; speedup grows with the table size, and the 1K-entry + 1M-RAC point
caps the sweep.  Network messages drop as thrash-undelegations disappear.
"""

from repro.harness import experiments

from conftest import run_once


def test_figure11(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure11, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    points = out["measured"]
    by_entries = {(p["entries"], p["rac"]): p for p in points}
    # Growing the delegate cache helps MG substantially.
    assert (by_entries[(1024, "32K")]["speedup"]
            > by_entries[(32, "32K")]["speedup"] + 0.03)
    # The trend is broadly monotonic across the sweep.
    sweep = [p["speedup"] for p in points if p["rac"] == "32K"]
    assert sweep[-1] > sweep[0]
    # Traffic shrinks as capacity-undelegation churn disappears.
    assert (by_entries[(1024, "32K")]["messages"]
            <= by_entries[(32, "32K")]["messages"] + 0.02)
