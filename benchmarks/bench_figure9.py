"""Figure 9: sensitivity to the intervention delay interval.

Execution time for each application across delays from 5 cycles to 5M
cycles plus "infinite", normalised to the 5-cycle run.  Paper findings
asserted: performance is largely flat between 5 and 5000 cycles, and
degrades once the delay is so large that updates arrive too late (or
never, at "infinite", which reduces to delegation-only behaviour).
"""

from repro.harness import experiments

from conftest import run_once

DELAYS = (5, 50, 500, 5_000, 50_000, 500_000, 5_000_000)


def test_figure9(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure9, scale=bench_scale,
                   delays=DELAYS, engine=bench_engine)
    print()
    print(out["text"])
    for app, points in out["measured"].items():
        series = dict(points)
        # Largely insensitive across 5..500 cycles (paper: within ~5%).
        for delay in (50, 500):
            assert 0.85 < series[delay] < 1.15, (app, delay)
        # Apps degrade at different rates beyond that (paper §3.3.2); by
        # 5K cycles tight pipelines (LU) already miss their consume
        # window, looser ones (MG) have not degraded yet.
        assert 0.85 < series[5_000] < 1.45, app
        # Infinite delay (no updates) must not be better than a 50-cycle
        # delay for the communication-bound applications.
        if app in ("em3d", "lu", "mg"):
            assert series["inf"] >= series[50], app
