"""Figure 12: sensitivity to RAC size (Appbt).

Appbt's per-consumer update volume exceeds a 32 KB RAC, so pushed data is
evicted before it is read; growing the RAC recovers nearly the whole
benefit even with 32-entry delegate tables (paper: 8% -> ~24%).
"""

from repro.harness import experiments

from conftest import run_once


def test_figure12(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.figure12, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    points = out["measured"]
    by_rac = {(p["rac_kb"], p["entries"]): p for p in points}
    # Growing the RAC alone (32-entry tables) recovers most of the win.
    assert (by_rac[(1024, 32)]["speedup"]
            > by_rac[(32, 32)]["speedup"] + 0.05)
    # The sweep trends upward.
    sweep = [p["speedup"] for p in points if p["entries"] == 32]
    assert sweep[-1] > sweep[0]
