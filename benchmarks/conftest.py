"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure at full workload scale and
prints the regenerated rows next to the paper's values.  Set
``REPRO_BENCH_SCALE`` (e.g. ``0.5``) to shrink workloads for a faster,
directional pass.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are long deterministic simulations; repeating them only to
    tighten timing statistics would multiply a multi-minute suite, so every
    bench uses a single round.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
