"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure at full workload scale and
prints the regenerated rows next to the paper's values.  Set
``REPRO_BENCH_SCALE`` (e.g. ``0.5``) to shrink workloads for a faster,
directional pass, ``REPRO_BENCH_JOBS`` to fan each artefact's simulations
over worker processes, and ``REPRO_BENCH_CACHE=1`` to replay finished
simulations from the on-disk cache (see :mod:`repro.harness.sweep`).
"""

import os

import pytest

from repro.harness import SweepEngine


@pytest.fixture(scope="session")
def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_engine():
    """Sweep engine shared by every artefact bench in the session."""
    return SweepEngine(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache=os.environ.get("REPRO_BENCH_CACHE", "") == "1")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are long deterministic simulations; repeating them only to
    tighten timing statistics would multiply a multi-minute suite, so every
    bench uses a single round.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
