"""Headline results: the paper's abstract numbers.

Small configuration (32-entry deledc + 32 KB RAC): 13% geomean speedup,
17% traffic reduction, 29% remote-miss reduction.  Large configuration
(1K-entry + 1 MB RAC): 21% / 15% / 40%.  Also checks the delegation-only
ablation (paper: within ~1% of baseline for most applications).
"""

from repro.harness import experiments

from conftest import run_once


def test_headline(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.headline, scale=bench_scale,
                   engine=bench_engine)
    print()
    print(out["text"])
    small_sp, small_traffic, small_miss = out["measured"]["small"]
    large_sp, large_traffic, large_miss = out["measured"]["large"]
    # Shape: both configurations deliver a real mean speedup, the large
    # one more; both cut remote misses, the large one more.
    assert 1.05 < small_sp < 1.35
    assert 1.10 < large_sp < 1.40
    assert large_sp > small_sp
    assert 0.1 < small_miss < 0.7
    assert 0.2 < large_miss < 0.8
    assert large_miss > small_miss
    # Traffic falls under both configurations; the small config cuts less
    # than the paper's 17% because its RAC-thrash waste (Appbt, Barnes) is
    # by design — the same over-aggressiveness the paper concedes for MG.
    assert small_traffic > 0.0
    assert large_traffic > 0.08


def test_delegation_only_ablation(benchmark, bench_scale, bench_engine):
    out = run_once(benchmark, experiments.delegation_only,
                   scale=bench_scale, engine=bench_engine)
    print()
    print(out["text"])
    # Paper: converting 3-hop to 2-hop roughly balances delegation
    # overhead -- within a few percent of baseline either way.
    for app, speedup in out["measured"].items():
        assert 0.93 < speedup < 1.2, (app, speedup)
