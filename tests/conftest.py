"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.common import baseline, small
from repro.sim import System


@pytest.fixture
def base4():
    """A small 4-node baseline configuration (fast tests)."""
    return baseline(num_nodes=4)


@pytest.fixture
def small4():
    """A 4-node configuration with RAC + delegation + updates."""
    return small(num_nodes=4)


def run_ops(config, per_cpu_ops, placements=None, check=True):
    """Build a system, run op lists, return the RunResult."""
    system = System(config, check_coherence=check)
    return system.run(per_cpu_ops, placements=placements)


def make_system(config, check=True):
    return System(config, check_coherence=check)
