"""Alternative predictors (§5 future work) and detector aggressiveness."""

import pytest
from dataclasses import replace

from repro.common import ConfigError, ProtocolConfig, Stats, baseline, small
from repro.protocol.detector import ProducerConsumerDetector
from repro.protocol.predictors import (
    DETECTOR_KINDS,
    MultiWriterDetector,
    MultiWriterEntry,
    make_detector,
)
from repro.sim import Barrier, Compute, Read, System, Write

LINE = 0x100000


def cfg(**kwargs):
    return ProtocolConfig(enable_rac=True, enable_delegation=True, **kwargs)


class TestFactory:
    def test_simple_by_default(self):
        detector = make_detector(cfg(), Stats())
        assert type(detector) is ProducerConsumerDetector

    def test_multiwriter_selectable(self):
        detector = make_detector(cfg(detector_kind="multiwriter"), Stats())
        assert isinstance(detector, MultiWriterDetector)

    def test_bad_kind_rejected_by_config(self):
        with pytest.raises(ConfigError):
            cfg(detector_kind="oracle")

    def test_kinds_registry(self):
        assert set(DETECTOR_KINDS) == {"simple", "multiwriter"}

    def test_entry_types_match(self):
        simple = make_detector(cfg(), Stats())
        multi = make_detector(cfg(detector_kind="multiwriter"), Stats())
        assert type(simple.new_entry(0)).__name__ == "DetectorEntry"
        assert isinstance(multi.new_entry(0), MultiWriterEntry)


class TestMultiWriterDetection:
    def drive(self, detector, entry, writers, rounds):
        marked = False
        for i in range(rounds):
            writer = writers[i % len(writers)]
            marked |= detector.observe_write(entry, writer,
                                             distinct_readers=1)
            detector.observe_read(entry, 14, already_sharer=False)
        return marked

    def test_two_alternating_writers_detected(self):
        detector = MultiWriterDetector(cfg(), Stats())
        entry = detector.new_entry(0)
        assert self.drive(detector, entry, writers=[1, 2], rounds=12)
        assert entry.marked_pc

    def test_simple_detector_never_marks_two_writers(self):
        detector = ProducerConsumerDetector(cfg(), Stats())
        entry = detector.new_entry(0)
        marked = False
        for i in range(12):
            marked |= detector.observe_write(entry, 1 + (i % 2),
                                             distinct_readers=1)
            detector.observe_read(entry, 14, already_sharer=False)
        assert not marked

    def test_single_writer_still_detected(self):
        detector = MultiWriterDetector(cfg(), Stats())
        entry = detector.new_entry(0)
        assert self.drive(detector, entry, writers=[3], rounds=6)

    def test_three_writers_overflow_resets(self):
        detector = MultiWriterDetector(cfg(), Stats(), max_writers=2)
        entry = detector.new_entry(0)
        assert not self.drive(detector, entry, writers=[1, 2, 3], rounds=18)
        assert not entry.marked_pc

    def test_writer_set_bounded(self):
        detector = MultiWriterDetector(cfg(), Stats(), max_writers=2)
        entry = detector.new_entry(0)
        self.drive(detector, entry, writers=[1, 2, 3, 4], rounds=20)
        assert len(entry.writer_set) <= 2


class TestAggressivenessKnob:
    def test_one_bit_threshold_marks_after_single_repeat(self):
        detector = ProducerConsumerDetector(cfg(write_repeat_bits=1),
                                            Stats())
        entry = detector.new_entry(0)
        detector.observe_write(entry, 1, distinct_readers=0)
        detector.observe_read(entry, 2, already_sharer=False)
        assert detector.observe_write(entry, 1, distinct_readers=1)

    def test_three_bit_threshold_needs_seven_repeats(self):
        detector = ProducerConsumerDetector(cfg(write_repeat_bits=3),
                                            Stats())
        entry = detector.new_entry(0)
        marked = False
        for _ in range(7):
            detector.observe_read(entry, 2, already_sharer=False)
            marked |= detector.observe_write(entry, 1, distinct_readers=1)
        assert not marked  # 7 writes = 6 repeats < threshold 7
        detector.observe_read(entry, 2, already_sharer=False)
        assert detector.observe_write(entry, 1, distinct_readers=1)


class TestEndToEnd:
    def alternating_writer_ops(self):
        ops = [[] for _ in range(4)]
        bid = 0
        for it in range(10):
            writer = 1 if it % 2 == 0 else 2
            ops[writer].append(Write(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
            ops[3].append(Compute(200))
            ops[3].append(Read(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
        return ops

    def run(self, detector_kind):
        config = small(num_nodes=4).with_protocol(detector_kind=detector_kind)
        system = System(config)
        system.address_map.place_range(LINE, 128, 0)
        return system.run(self.alternating_writer_ops())

    def test_multiwriter_delegates_where_simple_does_not(self):
        simple = self.run("simple")
        multi = self.run("multiwriter")
        assert simple.stats.get("dele.delegate", 0) == 0
        assert multi.stats.get("dele.delegate", 0) >= 1

    def test_multiwriter_stays_coherent(self):
        result = self.run("multiwriter")  # online checker active
        assert result.cycles > 0

    def test_multiwriter_pays_delegation_churn(self):
        """The cost the paper avoided: the non-writing delegate gets
        recalled whenever the other writer wants the line."""
        multi = self.run("multiwriter")
        undele = sum(v for k, v in multi.stats.items()
                     if k.startswith("dele.undelegate."))
        assert undele >= 1
