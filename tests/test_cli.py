"""The command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_apps_and_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("barnes", "appbt"):
            assert app in out
        assert "dele32_rac32k" in out


class TestRun:
    def test_run_single_system(self, capsys):
        assert main(["run", "ocean", "--system", "base",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "ocean" in out
        assert "cycles" in out

    def test_run_all_systems(self, capsys):
        assert main(["run", "ocean", "--scale", "0.2", "--no-check"]) == 0
        out = capsys.readouterr().out
        assert "dele1k_rac1m" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linpack"])


class TestExperiment:
    def test_table3(self, capsys):
        assert main(["experiment", "table3", "--scale", "0.25"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["experiment", "figure10", "--scale", "0.25"]) == 0
        assert "hop" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestVerify:
    def test_full_protocol_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PASS")
        assert "states" in out

    def test_base_only(self, capsys):
        assert main(["verify", "--no-delegation"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_unordered_finds_violation(self, capsys):
        assert main(["verify", "--unordered"]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestArea:
    def test_small_config_budget(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "40.5 KB" in out
        assert "producer table" in out

    def test_large_config_budget(self, capsys):
        assert main(["area", "--system", "dele1k_rac1m"]) == 0
        assert "RAC" in capsys.readouterr().out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    @pytest.mark.slow
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        from repro.cli import main as cli_main
        assert cli_main(["report", "--output", str(out),
                         "--scale", "0.2"]) == 0
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 12" in text
