"""The command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_apps_and_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("barnes", "appbt"):
            assert app in out
        assert "dele32_rac32k" in out


class TestRun:
    def test_run_single_system(self, capsys):
        assert main(["run", "ocean", "--system", "base",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "ocean" in out
        assert "cycles" in out

    def test_run_all_systems(self, capsys):
        assert main(["run", "ocean", "--scale", "0.2", "--no-check"]) == 0
        out = capsys.readouterr().out
        assert "dele1k_rac1m" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "linpack"])


class TestExperiment:
    def test_table3(self, capsys):
        assert main(["experiment", "table3", "--scale", "0.25"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure10(self, capsys):
        assert main(["experiment", "figure10", "--scale", "0.25"]) == 0
        assert "hop" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestVerify:
    def test_full_protocol_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PASS")
        assert "states" in out

    def test_base_only(self, capsys):
        assert main(["verify", "--no-delegation"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_unordered_finds_violation(self, capsys):
        assert main(["verify", "--unordered"]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestArea:
    def test_small_config_budget(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "40.5 KB" in out
        assert "producer table" in out

    def test_large_config_budget(self, capsys):
        assert main(["area", "--system", "dele1k_rac1m"]) == 0
        assert "RAC" in capsys.readouterr().out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_second_run_served_from_cache(self, tmp_path, capsys):
        args = ["sweep", "table3", "--scale", "0.1", "--quiet",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "Table 3" in first
        assert "0 cached" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second
        # The cache only stores simulation inputs/outputs, so the rendered
        # artefact must be reproduced exactly.
        assert second.splitlines()[:-1] == first.splitlines()[:-1]

    def test_no_cache_always_executes(self, tmp_path, capsys):
        args = ["sweep", "table3", "--scale", "0.1", "--quiet", "--no-cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        assert main(args) == 0
        assert "0 executed" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_json_timing_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sweep.json"
        assert main(["sweep", "table3", "--scale", "0.1", "--quiet",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        bench = doc["benchmarks"][0]
        assert bench["name"] == "sweep[table3]"
        assert bench["stats"]["rounds"] == 1
        assert bench["stats"]["mean"] > 0
        assert doc["sweep"]["name"] == "table3"
        assert doc["sweep"]["executed"] > 0
        assert doc["sweep"]["cached"] == 0

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "figure99"])


class TestReport:
    @pytest.mark.slow
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        from repro.cli import main as cli_main
        assert cli_main(["report", "--output", str(out),
                         "--scale", "0.2"]) == 0
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 12" in text
