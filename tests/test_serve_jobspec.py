"""Job-spec validation: specs -> content-addressed work units."""

import pytest

from repro.common import params
from repro.fuzz.runner import run_seed_payload
from repro.harness.sweep import job_key
from repro.serve.jobspec import SpecError, parse_job, resolve_config
from repro.serve.workers import traced_sim_runner


class TestResolveConfig:
    def test_default_is_base(self):
        config = resolve_config({})
        assert params.config_digest(config) == \
            params.config_digest(params.baseline())

    def test_preset_and_alias(self):
        assert params.config_digest(resolve_config({"system": "pc"})) == \
            params.config_digest(resolve_config(
                {"system": "dele32_rac32k"}))

    def test_nodes_override(self):
        assert resolve_config({"system": "base", "nodes": 4}).num_nodes == 4

    def test_embedded_config_document(self):
        doc = params.config_to_dict(params.small(num_nodes=4))
        config = resolve_config({"config": doc})
        assert params.config_to_dict(config) == doc

    @pytest.mark.parametrize("doc", [
        {"system": "nope"},
        {"system": "base", "config": {}},
        {"system": 7},
        {"config": {"num_nodes": 4}},       # incomplete document
        {"system": "base", "nodes": 1},
    ])
    def test_rejects(self, doc):
        with pytest.raises(SpecError):
            resolve_config(doc)


class TestSimSpec:
    def spec(self, **overrides):
        doc = {"kind": "sim", "app": "ocean", "system": "base",
               "nodes": 4, "scale": 0.1}
        doc.update(overrides)
        return doc

    def test_expands_to_one_unit(self):
        spec = parse_job(self.spec())
        assert spec.kind == "sim"
        assert len(spec.units) == 1
        unit = spec.units[0]
        assert unit.runner is None
        assert unit.key == job_key(unit.job)
        assert unit.job.app == "ocean"
        assert unit.job.scale == 0.1

    def test_traced_sim_uses_traced_runner_key(self):
        plain = parse_job(self.spec()).units[0]
        traced = parse_job(self.spec(trace=True)).units[0]
        assert traced.runner is traced_sim_runner
        assert traced.key == job_key(traced.job, traced_sim_runner)
        assert traced.key != plain.key     # runner identity is in the key

    @pytest.mark.parametrize("overrides", [
        {"app": "nope"},
        {"seed": "x"},
        {"scale": 0},
        {"scale": 100},
        {"num_cpus": 0},
        {"check_coherence": "yes"},
        {"trace": "yes"},
    ])
    def test_rejects(self, overrides):
        with pytest.raises(SpecError):
            parse_job(self.spec(**overrides))


class TestSweepSpec:
    def test_expands_matrix(self):
        spec = parse_job({"kind": "sweep", "apps": ["ocean", "lu"],
                          "systems": ["base", "rac32k"], "nodes": 4,
                          "scale": 0.1})
        assert len(spec.units) == 4
        assert sorted({u.job.app for u in spec.units}) == ["lu", "ocean"]
        assert len({u.key for u in spec.units}) == 4

    def test_systems_default_to_all_presets(self):
        spec = parse_job({"kind": "sweep", "apps": ["ocean"], "nodes": 4,
                          "scale": 0.1})
        assert len(spec.units) == len(params.EVALUATED_SYSTEMS)

    @pytest.mark.parametrize("doc", [
        {"kind": "sweep"},
        {"kind": "sweep", "apps": []},
        {"kind": "sweep", "apps": ["nope"]},
        {"kind": "sweep", "apps": ["ocean"], "systems": []},
    ])
    def test_rejects(self, doc):
        with pytest.raises(SpecError):
            parse_job(doc)


class TestFuzzSpec:
    def test_seed_list(self):
        spec = parse_job({"kind": "fuzz", "seeds": [1, 2], "scale": 0.5})
        assert [u.job.seed for u in spec.units] == [1, 2]
        assert all(u.runner is run_seed_payload for u in spec.units)
        assert all(u.key == job_key(u.job, run_seed_payload)
                   for u in spec.units)

    def test_seed_range(self):
        spec = parse_job({"kind": "fuzz", "seed_start": 5, "count": 3})
        assert [u.job.seed for u in spec.units] == [5, 6, 7]

    def test_scenario_chaos_lands_in_job(self):
        # Unit jobs carry the rolled scenario config/chaos, so the key
        # hashes the full fuzz content (same identity the fuzz pool uses).
        spec = parse_job({"kind": "fuzz", "seeds": [3]})
        from repro.fuzz.scenarios import FuzzScenario
        scenario = FuzzScenario.from_seed(3, scale=1.0)
        unit = spec.units[0]
        assert params.config_digest(unit.job.config) == \
            params.config_digest(scenario.config)
        assert unit.job.chaos == scenario.chaos

    @pytest.mark.parametrize("doc", [
        {"kind": "fuzz"},
        {"kind": "fuzz", "seeds": []},
        {"kind": "fuzz", "seeds": ["a"]},
        {"kind": "fuzz", "seed_start": 0, "count": 0},
    ])
    def test_rejects(self, doc):
        with pytest.raises(SpecError):
            parse_job(doc)


class TestEnvelope:
    @pytest.mark.parametrize("doc", [
        [],
        {},
        {"kind": "nope"},
    ])
    def test_rejects_bad_envelopes(self, doc):
        with pytest.raises(SpecError):
            parse_job(doc)

    def test_unit_cap(self):
        with pytest.raises(SpecError):
            parse_job({"kind": "fuzz", "seed_start": 0, "count": 100_000})
