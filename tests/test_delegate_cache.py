"""Delegate cache: producer and consumer tables (paper §2.3, Figure 3)."""

import pytest

from repro.common import DelegateCacheConfig
from repro.common.errors import ProtocolError
from repro.common.rng import stream
from repro.directory import DirectoryEntry
from repro.protocol import ConsumerTable, ProducerTable
from repro.protocol.transactions import BusyKind, BusyRecord


def entry(addr, **kwargs):
    return DirectoryEntry(addr=addr, **kwargs)


class TestProducerTable:
    def test_insert_and_lookup(self):
        table = ProducerTable(4)
        table.insert(0, entry(0))
        assert table.lookup(0).addr == 0
        assert 0 in table

    def test_lookup_missing(self):
        assert ProducerTable(4).lookup(0) is None

    def test_capacity_enforced(self):
        table = ProducerTable(2)
        table.insert(0, entry(0))
        table.insert(128, entry(128))
        with pytest.raises(ProtocolError):
            table.insert(256, entry(256))

    def test_double_insert_rejected(self):
        table = ProducerTable(4)
        table.insert(0, entry(0))
        with pytest.raises(ProtocolError):
            table.insert(0, entry(0))

    def test_victim_is_oldest(self):
        table = ProducerTable(2)
        table.insert(0, entry(0))
        table.insert(128, entry(128))
        assert table.victim_if_full().addr == 0

    def test_lookup_refreshes_age(self):
        table = ProducerTable(2)
        table.insert(0, entry(0))
        table.insert(128, entry(128))
        table.lookup(0)  # 0 becomes youngest
        assert table.victim_if_full().addr == 128

    def test_victim_skips_busy_entries(self):
        table = ProducerTable(2)
        busy_entry = entry(0, busy=BusyRecord(BusyKind.INVALIDATING))
        table.insert(0, busy_entry)
        table.insert(128, entry(128))
        assert table.victim_if_full().addr == 128

    def test_victim_skips_pending_update_entries(self):
        table = ProducerTable(2)
        pending = entry(0)
        pending.pending_updates = 2
        table.insert(0, pending)
        table.insert(128, entry(128))
        assert table.victim_if_full().addr == 128

    def test_no_victim_when_all_busy(self):
        table = ProducerTable(1)
        table.insert(0, entry(0, busy=BusyRecord(BusyKind.INVALIDATING)))
        assert table.victim_if_full() is None

    def test_no_victim_when_room(self):
        table = ProducerTable(4)
        table.insert(0, entry(0))
        assert table.victim_if_full() is None

    def test_remove(self):
        table = ProducerTable(4)
        table.insert(0, entry(0))
        assert table.remove(0).addr == 0
        assert 0 not in table
        assert table.remove(0) is None

    def test_only_direntries_accepted(self):
        table = ProducerTable(4)
        with pytest.raises(ProtocolError):
            table.insert(0, {"not": "an entry"})

    def test_addresses(self):
        table = ProducerTable(4)
        table.insert(0, entry(0))
        table.insert(128, entry(128))
        assert table.addresses() == [0, 128]

    def test_has_room(self):
        table = ProducerTable(2)
        assert table.has_room
        table.insert(0, entry(0))
        assert table.has_room
        table.insert(128, entry(128))
        assert not table.has_room
        table.remove(0)
        assert table.has_room


class TestConsumerTable:
    def make(self, entries=8, assoc=4):
        cfg = DelegateCacheConfig(entries=entries, consumer_assoc=assoc)
        return ConsumerTable(cfg, rng=stream(3, "ct"))

    def test_insert_and_lookup(self):
        table = self.make()
        table.insert(0, 5)
        assert table.lookup(0) == 5

    def test_lookup_missing(self):
        assert self.make().lookup(0) is None

    def test_refresh_existing(self):
        table = self.make()
        table.insert(0, 5)
        table.insert(0, 7)
        assert table.lookup(0) == 7
        assert len(table) == 1

    def test_remove_stale_hint(self):
        table = self.make()
        table.insert(0, 5)
        assert table.remove(0) == 5
        assert 0 not in table

    def test_random_replacement_within_set(self):
        table = self.make(entries=8, assoc=4)  # 2 sets
        stride = table.num_sets * 128
        addrs = [i * stride for i in range(5)]  # all one set, 1 overflow
        for addr in addrs:
            table.insert(addr, 1)
        # Capacity respected: one of the five was replaced.
        resident = [a for a in addrs if a in table]
        assert len(resident) == 4
        assert addrs[4] in table  # newest always resident

    def test_len_counts_all_sets(self):
        table = self.make()
        table.insert(0, 1)
        table.insert(128, 2)
        assert len(table) == 2

    @pytest.mark.parametrize("line_size", [64, 128, 256])
    def test_consecutive_lines_spread_across_sets(self, line_size):
        # Regression: the set index was computed with a hard-coded >>7,
        # so at 256-byte lines consecutive lines only ever hit every
        # other set and half the table's capacity was unreachable.
        cfg = DelegateCacheConfig(entries=8, consumer_assoc=4)
        table = ConsumerTable(cfg, rng=stream(3, "ct"), line_size=line_size)
        addrs = [i * line_size for i in range(8)]  # 8 consecutive lines
        for addr in addrs:
            table.insert(addr, 1)
        assert all(addr in table for addr in addrs)
        assert len(table) == 8

    def test_set_index_uses_line_size_shift(self):
        cfg = DelegateCacheConfig(entries=8, consumer_assoc=4)  # 2 sets
        table = ConsumerTable(cfg, rng=stream(3, "ct"), line_size=256)
        # Same line number parity -> same set; insert 5 lines that all
        # collide under the correct shift and check replacement kicks in.
        stride = table.num_sets * 256
        addrs = [i * stride for i in range(5)]
        for addr in addrs:
            table.insert(addr, 1)
        assert len([a for a in addrs if a in table]) == 4
        assert addrs[4] in table
