"""Exhaustive model checking of the protocol (the paper's §2.5).

Positive results: the base protocol, delegation, and delegation+updates
all satisfy the safety invariants ("single writer exists", directory
consistency, value coherence, delegation well-formedness) over their
entire reachable state spaces, with no non-quiescent dead ends — the same
claims the paper establishes with Murphi.

Negative result: removing the fabric's per-channel FIFO guarantee lets a
stale speculative UPDATE overtake a later INV and resurrect an invalidated
copy — the checker finds that counterexample, demonstrating the protocol's
ordering assumption is load-bearing.
"""

import pytest

from repro.common.errors import DeadlockError, InvariantViolation
from repro.mc import ALL_INVARIANTS, ModelChecker, ProtocolModel


def check(model, max_states=4_000_000, canonical=True):
    mc = ModelChecker(model.initial_states(), model.rules(), ALL_INVARIANTS,
                      quiescent=model.quiescent, max_states=max_states,
                      track_traces=False,
                      canonicalize=model.canonical if canonical else None)
    return mc.run()


class TestBaseProtocol:
    def test_base_protocol_verifies(self):
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                              enable_delegation=False)
        result = check(model)
        assert result.states_explored > 100

    def test_base_two_writers_verifies(self):
        model = ProtocolModel(num_nodes=3, writers=(1, 2), readers=(2,),
                              enable_delegation=False)
        check(model)

    def test_base_exercises_interventions(self):
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                              enable_delegation=False)
        result = check(model)
        assert any(label.startswith("int_s") for label in result.rule_counts)
        assert any(label.startswith("evict") for label in result.rule_counts)


class TestDelegationProtocol:
    def test_delegation_without_updates_verifies(self):
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                              enable_updates=False)
        result = check(model)
        assert "delegate_accept_1" in result.rule_counts
        assert any(label.startswith("undele") for label in result.rule_counts)

    def test_full_mechanism_verifies(self):
        """Delegation + speculative updates + evictions, exhaustively."""
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,))
        result = check(model)
        assert "intervene_1" in result.rule_counts
        assert any(label.startswith("update_") for label in result.rule_counts)
        assert result.states_explored > 1000

    @pytest.mark.slow
    def test_two_consumers_verify(self):
        model = ProtocolModel(num_nodes=4, writers=(1,), readers=(2, 3))
        result = check(model)
        assert result.states_explored > 1000

    def test_recall_races_explored(self):
        """Home-initiated undelegation and its NACK(gone/busy) races."""
        model = ProtocolModel(num_nodes=3, writers=(1, 2), readers=(2,))
        result = check(model)
        assert "getx_recall" in result.rule_counts
        labels = set(result.rule_counts)
        assert labels & {"undele_req_1", "undele_req_gone", "undele_req_busy"}

    @pytest.mark.slow
    def test_deferred_undelegation_explored(self):
        """The update-ack gate the checker originally motivated."""
        model = ProtocolModel(num_nodes=4, writers=(1, 3), readers=(2,))
        result = check(model)
        assert any("update_ack" in label for label in result.rule_counts)


class TestOrderingAssumption:
    def test_unordered_channels_break_the_protocol(self):
        """Without per-channel FIFO, a stale UPDATE can overtake an INV
        from the same producer and resurrect an invalidated copy."""
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                              ordered_channels=False)
        with pytest.raises((InvariantViolation, DeadlockError)):
            check(model)


class TestCounterexampleTraces:
    def test_trace_available_with_tracking(self):
        """A deliberately broken invariant produces a replayable trace."""
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,))

        def no_delegation_ever(state):
            return state[5] is None  # fails as soon as DELEGATE lands

        mc = ModelChecker(model.initial_states(), model.rules(),
                          [no_delegation_ever], quiescent=model.quiescent,
                          canonicalize=model.canonical)
        with pytest.raises(InvariantViolation) as err:
            mc.run()
        assert "delegate_accept_1" in err.value.trace


class TestValueSymmetry:
    def test_canonicalization_reduces_states(self):
        model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                              enable_delegation=False,
                              allow_evictions=False)
        plain = check(model, canonical=False)
        reduced = check(model)
        assert reduced.states_explored <= plain.states_explored

    def test_canonical_idempotent(self):
        model = ProtocolModel(num_nodes=3)
        state = model.initial_states()[0]
        once = model.canonical(state)
        assert model.canonical(once) == once

    def test_canonical_merges_value_renamings(self):
        model = ProtocolModel(num_nodes=3)
        base = model.initial_states()[0]
        # Two states identical except all values shifted.
        s1 = (1, (("S", 1), ("I", 0), ("I", 0)), base[2], base[3],
              ("S", frozenset({0}), None, 1, None), None, base[6], ())
        s2 = (3, (("S", 3), ("I", 0), ("I", 0)), base[2], base[3],
              ("S", frozenset({0}), None, 3, None), None, base[6], ())
        assert model.canonical(s1) == model.canonical(s2)
