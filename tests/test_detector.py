"""The producer-consumer sharing detector (paper §2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ProtocolConfig, Stats
from repro.common.stats import PC_DETECTED
from repro.protocol import DetectorEntry, ProducerConsumerDetector
from repro.protocol.detector import consumer_bucket


@pytest.fixture
def det():
    stats = Stats()
    detector = ProducerConsumerDetector(
        ProtocolConfig(enable_rac=True, enable_delegation=True), stats)
    return detector, stats


def pc_rounds(detector, entry, writer, reader, rounds):
    """Drive write -> read cycles; returns True when marking happened."""
    marked = False
    for _ in range(rounds):
        marked |= detector.observe_write(entry, writer, distinct_readers=1)
        detector.observe_read(entry, reader, already_sharer=False)
    return marked


class TestDetection:
    def test_pattern_marks_after_saturation(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        # W R W R W R W: write_repeat reaches 3 at the 4th write.
        assert pc_rounds(detector, entry, writer=1, reader=2, rounds=4)
        assert entry.marked_pc

    def test_not_marked_too_early(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        assert not pc_rounds(detector, entry, writer=1, reader=2, rounds=3)

    def test_writes_without_reads_never_mark(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        for _ in range(20):
            assert not detector.observe_write(entry, 1, distinct_readers=0)
        assert not entry.marked_pc

    def test_alternating_writers_reset(self, det):
        """False sharing / migratory data: the pattern never stabilises."""
        detector, _ = det
        entry = DetectorEntry(addr=0)
        for _ in range(20):
            detector.observe_write(entry, 1, distinct_readers=1)
            detector.observe_read(entry, 3, already_sharer=False)
            detector.observe_write(entry, 2, distinct_readers=1)
            detector.observe_read(entry, 3, already_sharer=False)
        assert not entry.marked_pc
        assert entry.write_repeat <= 1

    def test_different_writer_unmarks(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        pc_rounds(detector, entry, writer=1, reader=2, rounds=5)
        assert entry.marked_pc
        detector.observe_write(entry, 9, distinct_readers=1)
        assert not entry.marked_pc
        assert entry.write_repeat == 0

    def test_reader_same_as_writer_not_counted(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        for _ in range(10):
            detector.observe_write(entry, 1, distinct_readers=0)
            detector.observe_read(entry, 1, already_sharer=False)
        assert not entry.marked_pc

    def test_already_sharer_not_counted(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        for _ in range(10):
            detector.observe_write(entry, 1, distinct_readers=1)
            detector.observe_read(entry, 2, already_sharer=True)
        assert not entry.marked_pc

    def test_reader_count_saturates_at_2_bits(self, det):
        detector, _ = det
        entry = DetectorEntry(addr=0)
        detector.observe_write(entry, 1, distinct_readers=0)
        for reader in range(2, 10):
            detector.observe_read(entry, reader, already_sharer=False)
        assert entry.reader_count == 3

    def test_marked_stat_counted_once(self, det):
        detector, stats = det
        entry = DetectorEntry(addr=0)
        pc_rounds(detector, entry, writer=1, reader=2, rounds=8)
        assert stats.get(PC_DETECTED) == 1

    def test_none_entry_ignored(self, det):
        detector, _ = det
        detector.observe_read(None, 1, already_sharer=False)
        assert not detector.observe_write(None, 1, distinct_readers=1)


class TestHistogram:
    def test_bucket_labels(self):
        assert consumer_bucket(1) == "1"
        assert consumer_bucket(4) == "4"
        assert consumer_bucket(5) == "4+"
        assert consumer_bucket(15) == "4+"

    def test_histogram_collected_on_repeat_write(self, det):
        detector, stats = det
        entry = DetectorEntry(addr=0)
        detector.observe_write(entry, 1, distinct_readers=3)
        detector.observe_read(entry, 2, already_sharer=False)
        detector.observe_write(entry, 1, distinct_readers=3)
        assert stats.get("detector.consumers.3") == 1


class TestProperties:
    @given(st.lists(st.tuples(st.sampled_from(["r", "w"]),
                              st.integers(0, 3)),
                    min_size=1, max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_counters_stay_in_hardware_range(self, ops):
        """The detector's fields must always fit their bit widths."""
        detector = ProducerConsumerDetector(
            ProtocolConfig(enable_rac=True, enable_delegation=True), Stats())
        entry = DetectorEntry(addr=0)
        for kind, node in ops:
            if kind == "r":
                detector.observe_read(entry, node, already_sharer=False)
            else:
                detector.observe_write(entry, node, distinct_readers=1)
            assert 0 <= entry.reader_count <= 3
            assert 0 <= entry.write_repeat <= 3
            assert -1 <= entry.last_writer <= 15

    @given(st.integers(2, 12), st.integers(4, 10))
    @settings(max_examples=30, deadline=None)
    def test_single_writer_pattern_always_detected(self, reader, rounds):
        detector = ProducerConsumerDetector(
            ProtocolConfig(enable_rac=True, enable_delegation=True), Stats())
        entry = DetectorEntry(addr=0)
        assert pc_rounds(detector, entry, writer=1, reader=reader,
                         rounds=rounds)
