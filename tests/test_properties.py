"""Property-based protocol fuzzing.

Hypothesis generates random multi-CPU workloads (reads, writes, compute,
barriers over a small set of shared lines) and runs them through the full
simulator with online coherence checking.  Any stale read, lost write,
livelock or protocol dead state fails the test — this is the highest-yield
test in the suite for protocol races.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import baseline, delegation_only, small
from repro.sim import Barrier, Compute, Read, System, Write

NUM_CPUS = 4
LINES = [0x100000 + i * 0x100000 for i in range(3)]

# One CPU's behaviour within an iteration: which line (if any) it writes,
# which lines it reads, and how much it computes.
cpu_phase = st.fixed_dictionaries({
    "write": st.one_of(st.none(), st.integers(0, len(LINES) - 1)),
    "reads": st.lists(st.integers(0, len(LINES) - 1), max_size=3),
    "compute": st.integers(0, 400),
})

workload_strategy = st.lists(  # iterations
    st.lists(cpu_phase, min_size=NUM_CPUS, max_size=NUM_CPUS),
    min_size=1, max_size=5,
)

home_strategy = st.lists(st.integers(0, NUM_CPUS - 1), min_size=len(LINES),
                         max_size=len(LINES))


def build_ops(iterations):
    ops = [[] for _ in range(NUM_CPUS)]
    bid = 0
    for phases in iterations:
        for cpu, phase in enumerate(phases):
            if phase["compute"]:
                ops[cpu].append(Compute(phase["compute"]))
            if phase["write"] is not None:
                ops[cpu].append(Write(LINES[phase["write"]]))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
        for cpu, phase in enumerate(phases):
            for line in phase["reads"]:
                ops[cpu].append(Read(LINES[line]))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
    return ops


def run_fuzz(config, iterations, homes):
    system = System(config, check_coherence=True)
    placements = [(line, 128, home) for line, home in zip(LINES, homes)]
    result = system.run(build_ops(iterations), placements=placements)
    assert result.cycles > 0
    return result


class TestFuzzBaseline:
    @given(workload_strategy, home_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_workloads_coherent(self, iterations, homes):
        run_fuzz(baseline(num_nodes=NUM_CPUS), iterations, homes)


class TestFuzzDelegation:
    @given(workload_strategy, home_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_workloads_coherent(self, iterations, homes):
        run_fuzz(delegation_only(num_nodes=NUM_CPUS), iterations, homes)


class TestFuzzUpdates:
    @given(workload_strategy, home_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_workloads_coherent(self, iterations, homes):
        run_fuzz(small(num_nodes=NUM_CPUS), iterations, homes)

    @given(workload_strategy, home_strategy,
           st.sampled_from([0, 5, 50, 500]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_intervention_delay_coherent(self, iterations, homes, delay):
        cfg = small(num_nodes=NUM_CPUS).with_protocol(
            intervention_delay=delay)
        run_fuzz(cfg, iterations, homes)


class TestCrossConfigEquivalence:
    @given(workload_strategy, home_strategy)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mechanisms_never_lose_work(self, iterations, homes):
        """All configurations execute the same ops (results differ only in
        timing/traffic, never in completed work)."""
        res_base = run_fuzz(baseline(num_nodes=NUM_CPUS), iterations, homes)
        res_enh = run_fuzz(small(num_nodes=NUM_CPUS), iterations, homes)
        assert res_base.ops_executed == res_enh.ops_executed
