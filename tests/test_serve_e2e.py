"""End-to-end acceptance: a live repro.serve instance over real HTTP.

The ISSUE's acceptance criterion, verbatim: boot ``repro serve`` on an
ephemeral port, POST the same sweep from two concurrent clients, observe
exactly one execution (dedupe), both clients receive identical results,
SSE progress events arrive, ``/metrics`` reports a non-zero cache
hit-rate, and LRU eviction triggers when the cache budget is exceeded.

The server runs with inline workers (``workers=0``) in a background
thread; the real process fleet is exercised by ``tools/serve_smoke.py``
in the CI serve-smoke job.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import JobService, ServeAPIError, ServeClient, ServiceConfig
from repro.serve.api import serve

SWEEP = {"kind": "sweep", "apps": ["ocean"], "systems": ["base", "rac32k"],
         "nodes": 4, "scale": 0.05}


class ServerHandle:
    """One live service on an ephemeral port, driven from a thread."""

    def __init__(self, config):
        self.config = config
        self.port = None
        self.service = None
        self._ready = threading.Event()
        self._loop = None
        self._task = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._task = asyncio.current_task()
        self.service = JobService(self.config)

        def ready(port):
            self.port = port
            self._ready.set()

        try:
            await serve(self.service, ready=ready)
        except asyncio.CancelledError:
            pass

    def start(self):
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("service did not come up within 10s")
        return self

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(10)
        assert not self._thread.is_alive(), "service thread failed to exit"

    def client(self, client_id="test"):
        return ServeClient("http://127.0.0.1:%d" % self.port,
                           client_id=client_id, timeout=30.0)


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(ServiceConfig(
        port=0, workers=0, cache_dir=str(tmp_path / "cache"),
        cache_budget=None)).start()
    yield handle
    handle.stop()


@pytest.fixture
def tiny_cache_server(tmp_path):
    # Roughly two result payloads: the four-system sweep must evict.
    handle = ServerHandle(ServiceConfig(
        port=0, workers=0, cache_dir=str(tmp_path / "cache"),
        cache_budget=3500)).start()
    yield handle
    handle.stop()


class TestAcceptance:
    def test_concurrent_clients_dedupe_sse_and_hit_rate(self, server):
        """The headline acceptance scenario, start to finish."""

        def submit_and_follow(client_id):
            client = server.client(client_id)
            job = client.post_job(SWEEP)
            return client.follow(job["id"], timeout=60.0)

        with ThreadPoolExecutor(max_workers=2) as pool:
            alice = pool.submit(submit_and_follow, "alice")
            bob = pool.submit(submit_and_follow, "bob")
            alice, bob = alice.result(60), bob.result(60)

        # Both clients finished, over SSE, with live progress events.
        assert alice["state"] == "done" and bob["state"] == "done"
        for final in (alice, bob):
            kinds = {event for event, _ in final["sse_events"]}
            assert "job" in kinds          # terminal state arrived via SSE

        # Exactly one execution per distinct unit; the twin either shared
        # the in-flight run or hit the cache — never re-executed.
        metrics = server.client().metrics()
        assert metrics["units"]["total"] == 2 * len(SWEEP["systems"])
        assert metrics["units"]["executed"] == len(SWEEP["systems"])
        assert metrics["units"]["shared_inflight"] \
            + metrics["units"]["cached"] == len(SWEEP["systems"])

        # Identical results: same content keys, same payloads.
        client = server.client()
        alice_keys = [u["key"] for u in alice["units"]]
        assert alice_keys == [u["key"] for u in bob["units"]]
        for key in alice_keys:
            payload = client.result(key)
            assert payload["cycles"] > 0

        # A repeat POST is served from the cache: non-zero hit-rate.
        repeat = client.post_job(SWEEP)
        final = client.wait(repeat["id"], timeout=30.0)
        assert all(u["cached"] for u in final["units"])
        metrics = client.metrics()
        assert metrics["cache"]["hit_rate"] > 0
        assert metrics["cache"]["hits"] >= len(SWEEP["systems"])
        assert metrics["jobs"]["completed"] == 3
        assert metrics["latency_ms"]["job"]["p95"] > 0

    def test_lru_eviction_triggers_over_budget(self, tiny_cache_server):
        client = tiny_cache_server.client()
        spec = dict(SWEEP, systems=["base", "rac32k", "dele32_rac32k",
                                    "dele1k_rac32k"])
        job = client.post_job(spec)
        final = client.wait(job["id"], timeout=60.0)
        assert final["state"] == "done"
        metrics = client.metrics()
        assert metrics["cache"]["evictions"] >= 1
        size = tiny_cache_server.service.cache.size_bytes()
        assert size <= 3500


class TestEndpoints:
    def test_health_jobs_listing_and_dashboard(self, server):
        client = server.client()
        assert client.healthz() == {"ok": True}
        job = client.post_job({"kind": "sim", "app": "ocean", "nodes": 4,
                               "scale": 0.05})
        final = client.wait(job["id"], timeout=30.0)
        assert final["state"] == "done"
        assert final["units"][0]["result"].startswith("/results/")
        listed = client.list_jobs()
        assert [j["id"] for j in listed] == [job["id"]]
        html = client.dashboard()
        assert "<html" in html.lower()
        assert "/events" in html            # the live SSE feed is wired up

    def test_traced_sim_serves_perfetto_trace(self, server):
        client = server.client()
        job = client.post_job({"kind": "sim", "app": "ocean", "nodes": 4,
                               "scale": 0.05, "trace": True})
        final = client.wait(job["id"], timeout=30.0)
        assert final["state"] == "done"
        key = final["units"][0]["key"]
        trace = client.trace(key)
        assert trace["traceEvents"]

    def test_plain_result_has_no_trace(self, server):
        client = server.client()
        job = client.post_job({"kind": "sim", "app": "ocean", "nodes": 4,
                               "scale": 0.05})
        final = client.wait(job["id"], timeout=30.0)
        with pytest.raises(ServeAPIError) as err:
            client.trace(final["units"][0]["key"])
        assert err.value.status == 404

    def test_delete_requests_cancellation(self, server):
        client = server.client()
        job = client.post_job(SWEEP)
        cancelled = client.delete_job(job["id"])
        assert cancelled["id"] == job["id"]
        final = client.wait(job["id"], timeout=30.0)
        assert final["state"] in ("cancelled", "done")

    def test_error_paths(self, server):
        client = server.client()
        with pytest.raises(ServeAPIError) as err:
            client.post_job({"kind": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            client.get_job("j999")
        assert err.value.status == 404
        with pytest.raises(ServeAPIError) as err:
            client.result("deadbeef")
        assert err.value.status == 404
