"""The guarded-action spec IR (repro.spec.lang) and the registry."""

import dataclasses

import pytest

from repro.spec import (Msg, ProtocolSpec, SpecError, T, all_specs,
                        get_spec, load_spec_tree)
from repro.spec.lang import guard_allows, guards_overlap

DOMAINS = {"dir": ("U", "S", "E"), "cpu": ("idle", "R", "W")}


def tiny_spec(**overrides):
    base = dict(
        name="tiny", description="test spec",
        messages=(Msg("PING", mc=("PING",), role="request"),
                  Msg("PONG", mc=("PONG",), role="reply",
                      reply_to=("PING",))),
        dir_states=("U", "S", "E"), cache_states=("I", "S"),
        domains=DOMAINS,
        transitions=(
            T("home", "PING", when=(("dir", ("U",)),), emit=("PONG",),
              goes=(("dir", "S"),), label="ping_u"),
            T("home", "PING", when=(("dir", ("S", "E")),), label="ping_rest"),
            T("node", "PONG", label="pong"),
            T("node", "!cpu_read", emit=("PING",), label="read"),
        ))
    base.update(overrides)
    return ProtocolSpec(**base)


class TestValidation:
    def test_tiny_spec_validates(self):
        tiny_spec().validate()

    def test_duplicate_message_rejected(self):
        spec = tiny_spec(messages=(Msg("PING"), Msg("PING")))
        with pytest.raises(SpecError, match="duplicate message"):
            spec.validate()

    def test_duplicate_mc_token_rejected(self):
        spec = tiny_spec(messages=(Msg("PING", mc=("X",)),
                                   Msg("PONG", mc=("X",))))
        with pytest.raises(SpecError, match="claimed by both"):
            spec.validate()

    def test_unmodeled_message_requires_note(self):
        # With a model, mc=() needs a justifying note (the in-spec
        # replacement for an allowlist entry)...
        spec = tiny_spec(
            messages=(Msg("PING", mc=("PING",), role="request"),
                      Msg("PONG", role="reply", reply_to=("PING",))),
            transitions=(T("home", "PING", label="ping"),
                         T("node", "PONG", label="pong")),
            mc_model="hand")
        with pytest.raises(SpecError, match="no justifying note"):
            spec.validate()
        # ... and the note satisfies the bar.
        dataclasses.replace(spec, messages=(
            spec.messages[0],
            dataclasses.replace(spec.messages[1], note="sim-only ack"),
        )).validate()

    def test_unknown_guard_variable_rejected(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", when=(("nope", ("x",)),), label="bad"),))
        with pytest.raises(SpecError, match="no declared domain"):
            spec.validate()

    def test_guard_value_outside_domain_rejected(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", when=(("dir", ("Z",)),), label="bad"),))
        with pytest.raises(SpecError, match="outside"):
            spec.validate()

    def test_emit_of_undeclared_message_rejected(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", emit=("ZZZ",), label="bad"),))
        with pytest.raises(SpecError, match="undeclared message ZZZ"):
            spec.validate()

    def test_unknown_tag_rejected(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", tags=("wat",), label="bad"),))
        with pytest.raises(SpecError, match="unknown tag"):
            spec.validate()

    def test_annotations_require_why(self):
        for kwargs in ({"hoist": "rule_x"}, {"replay": "_f"},
                       {"only": "sim"}, {"tags": ("latent",)}):
            spec = tiny_spec(transitions=(
                T("home", "PING", label="bad", **kwargs),))
            with pytest.raises(SpecError, match="require a 'why'"):
                spec.validate()

    def test_via_must_be_an_mc_token_of_the_trigger(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", via="NOPE", label="bad"),))
        with pytest.raises(SpecError, match="via token"):
            spec.validate()

    def test_install_of_undeclared_state_rejected(self):
        spec = tiny_spec(transitions=(
            T("home", "PING", goes=(("dir", "Z"),), label="bad"),))
        with pytest.raises(SpecError, match="undeclared dir state"):
            spec.validate()


class TestGuards:
    def test_empty_guard_is_catch_all(self):
        assert guard_allows((), {"dir": "U"})
        assert guard_allows((), {})

    def test_mentioned_variable_missing_from_env_fails(self):
        assert not guard_allows((("dir", ("U",)),), {})

    def test_conjunction(self):
        when = (("dir", ("U", "S")), ("cpu", ("idle",)))
        assert guard_allows(when, {"dir": "S", "cpu": "idle"})
        assert not guard_allows(when, {"dir": "E", "cpu": "idle"})
        assert not guard_allows(when, {"dir": "S", "cpu": "W"})

    def test_overlap_detection(self):
        a = T("home", "PING", when=(("dir", ("U", "S")),), label="a")
        b = T("home", "PING", when=(("dir", ("S", "E")),), label="b")
        c = T("home", "PING", when=(("dir", ("E",)),), label="c")
        assert guards_overlap(a, b, DOMAINS)       # share dir=S
        assert not guards_overlap(a, c, DOMAINS)   # disjoint
        # A catch-all overlaps everything.
        assert guards_overlap(T("home", "PING", label="any"), a, DOMAINS)


class TestLookups:
    def test_handled_excludes_entries(self):
        spec = tiny_spec()
        assert spec.handled() == frozenset({"PING", "PONG"})
        assert [t.label for t in spec.entry_transitions()] == ["read"]

    def test_sim_name_of_resolves_tokens(self):
        spec = get_spec("adaptive")
        assert spec.sim_name_of("NACKI") == "NACK"
        assert spec.sim_name_of("SH_WB") == "SHARED_WB"
        assert spec.sim_name_of("NOT_A_TOKEN") is None

    def test_mc_token_map_matches_lint_map(self):
        from repro.lint.conformance import sim_to_mc_map
        assert get_spec("adaptive").mc_token_map() == sim_to_mc_map()


class TestRegistry:
    def test_all_four_specs_load_and_validate(self):
        specs = all_specs()
        assert sorted(specs) == ["adaptive", "dragon", "mesi", "wi"]
        assert specs["adaptive"].mc_model == "hand"
        assert specs["mesi"].mc_model == "generated"
        assert specs["wi"].mc_model == ""
        assert specs["dragon"].mc_model == ""

    def test_unknown_spec_name_rejected(self):
        with pytest.raises(SpecError, match="no spec for protocol"):
            get_spec("moesi")

    def test_load_spec_tree_from_installed_sources(self):
        from repro.lint import default_root
        specs = load_spec_tree(default_root())
        assert sorted(specs) == ["adaptive", "dragon", "mesi", "wi"]

    def test_legacy_tree_without_specs_yields_empty(self, tmp_path):
        assert load_spec_tree(tmp_path) == {}
