"""The serve HTTP layer: router, request parsing, SSE framing."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HTTPError,
    HTTPServer,
    Request,
    Router,
    SSEResponse,
    json_response,
    sse_encode,
)


class TestRouter:
    def router(self):
        router = Router()
        router.add("GET", "/jobs", lambda request: "list")
        router.add("POST", "/jobs", lambda request: "create")
        router.add("GET", "/jobs/<id>", lambda request, id: "job:" + id)
        router.add("GET", "/jobs/<id>/events",
                   lambda request, id: "events:" + id)
        return router

    def test_literal_match(self):
        handler, params = self.router().resolve("GET", "/jobs")
        assert handler(None) == "list"
        assert params == {}

    def test_method_dispatch_on_same_path(self):
        handler, _ = self.router().resolve("POST", "/jobs")
        assert handler(None) == "create"

    def test_capture_segments(self):
        handler, params = self.router().resolve("GET", "/jobs/j42/events")
        assert params == {"id": "j42"}
        assert handler(None, **params) == "events:j42"

    def test_unknown_path_is_404(self):
        with pytest.raises(HTTPError) as err:
            self.router().resolve("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self):
        with pytest.raises(HTTPError) as err:
            self.router().resolve("DELETE", "/jobs")
        assert err.value.status == 405

    def test_url_decoding_in_captures(self):
        _, params = self.router().resolve("GET", "/jobs/a%20b")
        assert params == {"id": "a b"}


class TestRequest:
    def test_json_round_trip(self):
        request = Request("POST", "/jobs", {}, {},
                          json.dumps({"a": 1}).encode())
        assert request.json() == {"a": 1}

    def test_bad_json_is_400(self):
        request = Request("POST", "/jobs", {}, {}, b"{nope")
        with pytest.raises(HTTPError) as err:
            request.json()
        assert err.value.status == 400

    def test_empty_body_is_400(self):
        with pytest.raises(HTTPError):
            Request("POST", "/jobs", {}, {}, b"").json()

    def test_client_header_defaults_to_anonymous(self):
        assert Request("GET", "/", {}, {}, b"").client == "anonymous"
        assert Request("GET", "/", {}, {"x-client": "ci"}, b"").client \
            == "ci"


class TestSSEEncoding:
    def test_frame_layout(self):
        frame = sse_encode("unit", {"key": "abc"}).decode()
        assert frame == 'event: unit\ndata: {"key": "abc"}\n\n'


def _roundtrip(payload, path="/echo", method="POST"):
    """Boot a real server, run one raw-socket request, return the text."""

    async def scenario():
        router = Router()

        def echo(request):
            return json_response({
                "method": request.method,
                "path": request.path,
                "query": request.query,
                "client": request.client,
                "body": request.body.decode("utf-8"),
            })

        async def stream(request):
            async def source():
                for index in range(3):
                    yield "tick", {"n": index}
            return SSEResponse(source())

        router.add("POST", "/echo", echo)
        router.add("GET", "/stream", stream)
        server = HTTPServer(router, port=0)
        port = await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            ("%s %s HTTP/1.1\r\nHost: x\r\nX-Client: t\r\n"
             "Content-Length: %d\r\n\r\n" % (method, path, len(payload))
             ).encode() + payload)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await server.close()
        return raw.decode("utf-8")

    return asyncio.run(scenario())


class TestLiveServer:
    def test_json_request_response(self):
        text = _roundtrip(b'{"x": 1}', path="/echo?a=1&b=2")
        head, _, body = text.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.1 200 OK")
        assert "application/json" in head
        doc = json.loads(body)
        assert doc["method"] == "POST"
        assert doc["path"] == "/echo"
        assert doc["query"] == {"a": "1", "b": "2"}
        assert doc["client"] == "t"
        assert json.loads(doc["body"]) == {"x": 1}

    def test_404_is_json_error(self):
        text = _roundtrip(b"", path="/missing")
        head, _, body = text.partition("\r\n\r\n")
        assert "404" in head.split("\r\n")[0]
        assert "error" in json.loads(body)

    def test_sse_stream_end_to_end(self):
        text = _roundtrip(b"", path="/stream", method="GET")
        head, _, body = text.partition("\r\n\r\n")
        assert "text/event-stream" in head
        frames = [f for f in body.split("\n\n") if f]
        assert len(frames) == 3
        assert frames[0] == 'event: tick\ndata: {"n": 0}'
