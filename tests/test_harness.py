"""Experiment harness: run_app, run_matrix, and experiment definitions.

Experiments run at small scale here (quick, directional); full-scale
numbers are produced by the benchmark suite and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.common import baseline, small
from repro.harness import experiments, run_app, run_matrix

SCALE = 0.25


class TestRunner:
    def test_run_app_returns_metrics(self):
        run = run_app("ocean", baseline(), scale=SCALE)
        assert run.app == "ocean"
        assert run.metrics.cycles > 0
        assert run.metrics.remote_misses > 0

    def test_run_matrix_shape(self):
        configs = {"base": baseline(), "small": small()}
        results = run_matrix(["ocean"], configs, scale=SCALE)
        assert set(results) == {("ocean", "base"), ("ocean", "small")}

    def test_same_seed_reproducible(self):
        a = run_app("lu", baseline(), scale=SCALE)
        b = run_app("lu", baseline(), scale=SCALE)
        assert a.metrics == b.metrics

    def test_num_cpus_override(self):
        run = run_app("ocean", baseline(num_nodes=8), scale=SCALE)
        assert run.metrics.cycles > 0


class TestExperiments:
    def test_table3_structure(self):
        # CG needs enough iterations for its intermittent PC phases to
        # register in the detector histogram.
        out = experiments.table3(scale=0.6, apps=("ocean", "cg"))
        assert set(out["measured"]) == {"ocean", "cg"}
        assert "Table 3" in out["text"]
        # Ocean is overwhelmingly single-consumer; CG overwhelmingly 4+.
        assert out["measured"]["ocean"]["1"] > 80
        assert out["measured"]["cg"]["4+"] > 80

    def test_figure7_structure(self):
        out = experiments.figure7(scale=SCALE, apps=("em3d",))
        assert out["systems"][0] == "base"
        assert out["speedup"]["em3d"]["base"] == pytest.approx(1.0)
        assert out["speedup"]["em3d"]["dele32_rac32k"] > 1.0

    def test_headline_structure(self):
        out = experiments.headline(scale=SCALE, apps=("em3d", "lu"))
        speedup, traffic_cut, miss_cut = out["measured"]["small"]
        assert speedup > 1.0
        assert 0.0 < miss_cut < 1.0

    def test_delegation_only_near_baseline(self):
        out = experiments.delegation_only(scale=SCALE, apps=("ocean",))
        # Paper: delegation alone lands within ~1% of baseline for most
        # apps; allow generous slack at small scale.
        assert 0.9 < out["measured"]["ocean"] < 1.15

    def test_figure8_structure(self):
        out = experiments.figure8(scale=SCALE, apps=("em3d",))
        row = out["measured"]["em3d"]
        assert row["deledc_32K_RAC"] > row["equal_area_1.04M"]

    def test_figure9_normalised_to_first_delay(self):
        out = experiments.figure9(scale=SCALE, apps=("lu",),
                                  delays=(5, 50, 50_000),
                                  include_infinite=False)
        points = out["measured"]["lu"]
        assert points[0][1] == pytest.approx(1.0)
        labels = [p[0] for p in points]
        assert labels == [5, 50, 50_000]

    def test_figure9_infinite_delay_hurts(self):
        out = experiments.figure9(scale=SCALE, apps=("em3d",),
                                  delays=(50,), include_infinite=True)
        points = dict(out["measured"]["em3d"])
        assert points["inf"] > points[50]

    def test_figure10_speedup_grows_with_latency(self):
        out = experiments.figure10(scale=SCALE, hops_ns=(25, 200))
        points = out["measured"]
        assert points[1]["base_cycles"] > points[0]["base_cycles"]
        assert points[1]["speedup"] >= points[0]["speedup"] * 0.98

    def test_figure11_mg_gains_from_bigger_delegate_cache(self):
        out = experiments.figure11(scale=0.5, entries=(32, 1024))
        points = out["measured"]
        assert points[-1]["speedup"] > points[0]["speedup"]

    @pytest.mark.slow
    def test_figure12_appbt_gains_from_bigger_rac(self):
        out = experiments.figure12(scale=0.5, rac_kb=(32, 1024))
        points = out["measured"]
        assert points[-2]["speedup"] > points[0]["speedup"]
