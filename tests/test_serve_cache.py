"""The hardened shared ResultCache: locks, LRU eviction, process races.

The multi-process stress tests use the real ``spawn`` context — the same
isolation the worker fleet runs under — racing ``put``/``get`` on the
same key.  The invariants: a reader sees either a miss or one complete,
valid payload (never a torn mix), nobody deadlocks, and a stale lock
left by a crashed evictor is reclaimed instead of wedging the cache.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.common import baseline
from repro.harness.sweep import (
    CacheLock,
    ResultCache,
    SweepEngine,
    SweepJob,
    job_key,
)

SCALE = 0.1


def make_job(seed=1):
    return SweepJob(app="ocean", config=baseline(num_nodes=4), seed=seed,
                    scale=SCALE)


def payload(tag, pad=0):
    return {"cycles": tag, "stats": {"who": tag, "pad": "x" * pad}}


class TestCacheLock:
    def test_exclusion(self, tmp_path):
        path = str(tmp_path / "lock")
        with CacheLock(path):
            racer = CacheLock(path, timeout=0.2, stale_after=60.0)
            with pytest.raises(TimeoutError):
                racer.acquire()
        # Released: immediately acquirable again.
        with CacheLock(path, timeout=0.2):
            pass

    def test_stale_lock_is_reclaimed(self, tmp_path):
        path = str(tmp_path / "lock")
        with open(path, "w") as fileobj:
            fileobj.write("999999\n")
        old = time.time() - 3600
        os.utime(path, (old, old))   # a holder that died an hour ago
        started = time.monotonic()
        with CacheLock(path, stale_after=5.0, timeout=5.0):
            pass
        assert time.monotonic() - started < 2.0

    def test_fresh_foreign_lock_is_respected(self, tmp_path):
        path = str(tmp_path / "lock")
        with open(path, "w") as fileobj:
            fileobj.write("999999\n")
        with pytest.raises(TimeoutError):
            CacheLock(path, stale_after=60.0, timeout=0.2).acquire()


class TestCounters:
    def test_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = job_key(make_job())
        assert cache.get(key) is None
        cache.put(key, make_job(), payload(1), elapsed=0.1)
        assert cache.get(key) == payload(1)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestLRUEviction:
    def keys(self, count):
        return [job_key(make_job(seed)) for seed in range(count)]

    def test_budget_evicts_oldest(self, tmp_path):
        cache = ResultCache(str(tmp_path), budget_bytes=6000)
        keys = self.keys(4)
        for index, key in enumerate(keys):
            cache.put(key, make_job(index), payload(index, pad=1500),
                      elapsed=0.0)
            time.sleep(0.02)        # distinct mtimes for LRU ordering
        assert cache.size_bytes() <= 6000
        assert cache.get(keys[0]) is None          # oldest went first
        assert cache.get(keys[-1]) is not None     # newest survives
        assert cache.evictions >= 1

    def test_hit_bumps_recency(self, tmp_path):
        cache = ResultCache(str(tmp_path), budget_bytes=6500)
        first, second, third = self.keys(3)
        cache.put(first, make_job(0), payload(0, pad=1500), elapsed=0.0)
        time.sleep(0.02)
        cache.put(second, make_job(1), payload(1, pad=1500), elapsed=0.0)
        time.sleep(0.02)
        assert cache.get(first) is not None        # bump: first is now MRU
        time.sleep(0.02)
        cache.put(third, make_job(2), payload(2, pad=2500), elapsed=0.0)
        assert cache.get(second) is None           # LRU fell out
        assert cache.get(first) is not None
        assert cache.get(third) is not None

    def test_just_written_key_never_self_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path), budget_bytes=10)
        key = job_key(make_job())
        cache.put(key, make_job(), payload(7, pad=4000), elapsed=0.0)
        assert cache.get(key) is not None

    def test_engine_passes_budget_through(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path),
                             cache_budget=123)
        assert engine.cache.budget_bytes == 123


class TestJobSecondsIncludesHits:
    def test_cache_hits_land_in_job_seconds(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        engine.run_many([make_job()])
        key = job_key(make_job())
        assert key in engine.last_report.job_seconds
        engine.run_many([make_job()])
        report = engine.last_report
        assert report.cached == 1
        # The satellite fix: hits populate times too (as replay time).
        assert key in report.job_seconds
        assert report.job_seconds[key] >= 0.0


# ---------------------------------------------------------------------------
# Multi-process races (the spawn context, as the worker fleet uses).
# ---------------------------------------------------------------------------


def _writer_proc(root, key, tag, iterations, budget):
    cache = ResultCache(root, budget_bytes=budget)
    job = make_job()
    for index in range(iterations):
        cache.put(key, job, payload(tag, pad=200 + index % 7), elapsed=0.0)


def _reader_proc(root, key, tags, iterations, out_queue):
    cache = ResultCache(root)
    bad = 0
    for _ in range(iterations):
        doc = cache.get(key)
        if doc is None:
            continue
        if doc.get("cycles") not in tags or "stats" not in doc:
            bad += 1
    out_queue.put(bad)


def _evictor_proc(root, budget, iterations):
    cache = ResultCache(root, budget_bytes=budget)
    job = make_job()
    for seed in range(iterations):
        cache.put(job_key(make_job(seed + 1000)), job,
                  payload(seed, pad=300), elapsed=0.0)


class TestConcurrentAccess:
    TIMEOUT = 60

    def _join_all(self, procs):
        deadline = time.monotonic() + self.TIMEOUT
        for proc in procs:
            proc.join(max(0.1, deadline - time.monotonic()))
        stuck = [p for p in procs if p.is_alive()]
        for proc in stuck:
            proc.terminate()
        assert not stuck, "cache access deadlocked: %s" % stuck
        assert all(p.exitcode == 0 for p in procs), \
            [p.exitcode for p in procs]

    def test_racing_put_get_never_corrupts(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        root = str(tmp_path)
        key = job_key(make_job())
        out_queue = context.Queue()
        procs = [
            context.Process(target=_writer_proc,
                            args=(root, key, 111, 60, None)),
            context.Process(target=_writer_proc,
                            args=(root, key, 222, 60, None)),
            context.Process(target=_reader_proc,
                            args=(root, key, (111, 222), 120, out_queue)),
        ]
        for proc in procs:
            proc.start()
        self._join_all(procs)
        assert out_queue.get(timeout=5) == 0    # no torn/corrupt reads
        final = ResultCache(root).get(key)
        assert final is not None and final["cycles"] in (111, 222)

    def test_racing_eviction_with_stale_lock(self, tmp_path):
        """Two budgeted writers race eviction while a pre-seeded stale
        lock sits in the root: both must finish (reclaiming, not
        deadlocking) and leave the cache within budget."""
        context = multiprocessing.get_context("spawn")
        root = str(tmp_path)
        lock_path = os.path.join(root, ".evict.lock")
        os.makedirs(root, exist_ok=True)
        with open(lock_path, "w") as fileobj:
            fileobj.write("999999\n")
        old = time.time() - 3600
        os.utime(lock_path, (old, old))
        budget = 4000
        procs = [
            context.Process(target=_evictor_proc, args=(root, budget, 25)),
            context.Process(target=_evictor_proc, args=(root, budget, 25)),
        ]
        for proc in procs:
            proc.start()
        self._join_all(procs)
        cache = ResultCache(root, budget_bytes=budget)
        # Within budget modulo one in-flight entry, and entries readable.
        entries = cache._entries()
        assert entries, "eviction removed everything"
        for _, _, path in entries:
            with open(path) as fileobj:
                json.load(fileobj)   # every surviving entry parses
