"""Base write-invalidate protocol scenarios on a small system.

These drive hand-built op traces through the full simulator (fabric, hubs,
processors) and assert on the externally visible effects: miss
classifications, message counts, state transitions, and race resolutions.
Online coherence checking is active in every test.
"""

import pytest

from repro.cache import LineState
from repro.directory import DirState
from repro.sim import Barrier, Compute, Read, System, Write

from conftest import run_ops

LINE = 0x100000  # homed at page 0x100 -> node (0x100 % num_nodes)


def home_of(config, addr=LINE):
    system = System(config)
    return system.address_map.home_of(addr)


class TestReadPaths:
    def test_local_read_unowned_is_local_miss(self, base4):
        # CPU 0 reads a line homed at node 0.
        res = run_ops(base4, [[Read(LINE)]], placements=[(LINE, 128, 0)])
        assert res.stats.get("miss.local", 0) == 1
        assert res.stats.get("miss.remote_2hop", 0) == 0

    def test_remote_read_unowned_is_2hop(self, base4):
        res = run_ops(base4, [[Read(LINE)]], placements=[(LINE, 128, 3)])
        assert res.stats.get("miss.remote_2hop") == 1

    def test_read_to_dirty_remote_line_is_3hop(self, base4):
        # CPU 1 writes (owner), then CPU 2 reads: home must intervene.
        ops = [
            [Barrier(0), Barrier(1)],
            [Write(LINE), Barrier(0), Barrier(1)],
            [Barrier(0), Read(LINE), Barrier(1)],
        ]
        res = run_ops(base4, ops, placements=[(LINE, 128, 0)])
        assert res.stats.get("miss.remote_3hop") == 1
        assert res.stats.get("msg.sent.INTERVENTION") == 1
        assert res.stats.get("msg.sent.SHARED_RESP") == 1
        assert res.stats.get("msg.sent.SHARED_WB") == 1

    def test_read_gets_exclusive_grant_on_unowned(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 3)
        res = system.run([[Read(LINE)]])
        assert res.cycles > 0
        assert system.hubs[0].hierarchy.state_of(LINE) is LineState.EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 3)
        ops = [
            [Read(LINE), Barrier(0), Barrier(1)],
            [Barrier(0), Read(LINE), Barrier(1)],
        ]
        res = system.run(ops)
        assert res.cycles > 0
        assert system.hubs[0].hierarchy.state_of(LINE) is LineState.SHARED
        assert system.hubs[1].hierarchy.state_of(LINE) is LineState.SHARED


class TestWritePaths:
    def test_cold_write_remote_is_2hop(self, base4):
        res = run_ops(base4, [[Write(LINE)]], placements=[(LINE, 128, 3)])
        assert res.stats.get("miss.remote_2hop") == 1

    def test_write_invalidates_sharers(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [
            [Read(LINE), Barrier(0), Barrier(1)],
            [Read(LINE), Barrier(0), Barrier(1)],
            [Barrier(0), Write(LINE), Barrier(1)],
        ]
        res = system.run(ops)
        assert res.stats.get("msg.sent.INV") >= 1
        assert system.hubs[0].hierarchy.state_of(LINE) is LineState.INVALID
        assert system.hubs[1].hierarchy.state_of(LINE) is LineState.INVALID
        assert system.hubs[2].hierarchy.state_of(LINE) is LineState.MODIFIED

    def test_upgrade_uses_ack_x_without_data(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 0)
        # CPU 1 reads then (after CPU 2 also reads) upgrades.
        ops = [
            [Barrier(0), Barrier(1)],
            [Read(LINE), Barrier(0), Write(LINE), Barrier(1)],
            [Read(LINE), Barrier(0), Barrier(1)],
        ]
        res = system.run(ops)
        assert res.stats.get("msg.sent.ACK_X") == 1

    def test_ownership_transfer_between_writers(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [
            [Barrier(0), Barrier(1)],
            [Write(LINE), Barrier(0), Barrier(1)],
            [Barrier(0), Write(LINE), Barrier(1)],
        ]
        res = system.run(ops)
        assert res.stats.get("msg.sent.EXCL_RESP") == 1
        assert res.stats.get("msg.sent.XFER_OWNER") == 1
        entry = system.hubs[0].home_memory.entry(LINE)
        assert entry.state is DirState.EXCL
        assert entry.owner == 2

    def test_write_then_read_same_cpu_all_hits(self, base4):
        res = run_ops(base4, [[Write(LINE), Read(LINE), Read(LINE)]],
                      placements=[(LINE, 128, 0)])
        assert res.stats.get("hit.l1", 0) >= 2


class TestWritebacks:
    def force_eviction_ops(self, config):
        """Enough distinct lines mapping to one L2 set to force eviction."""
        l2 = config.l2
        stride = l2.num_sets * 128
        return [Write(LINE + i * stride) for i in range(l2.assoc + 1)]

    def test_dirty_eviction_writes_back(self, base4):
        ops = self.force_eviction_ops(base4)
        res = run_ops(base4, [ops], placements=[(LINE, 128, 3)])
        assert res.stats.get("msg.sent.WRITEBACK", 0) >= 1
        assert res.stats.get("msg.sent.WB_ACK", 0) >= 1

    def test_reread_after_eviction_fetches_written_value(self, base4):
        # The coherence checker validates the value transparently.
        ops = self.force_eviction_ops(base4) + [Read(LINE)]
        res = run_ops(base4, [ops], placements=[(LINE, 128, 3)])
        assert res.cycles > 0

    def test_clean_exclusive_eviction_notifies_home(self, base4):
        l2 = base4.l2
        stride = l2.num_sets * 128
        ops = [Read(LINE + i * stride) for i in range(l2.assoc + 1)]
        res = run_ops(base4, [ops], placements=[(LINE, 128, 3)])
        assert res.stats.get("msg.sent.EVICT_CLEAN", 0) >= 1


class TestRaces:
    def test_concurrent_readers_of_dirty_line_nack_retry(self, base4):
        """The reload flurry: concurrent GETS to a BUSY home NACKs."""
        system = System(base4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [
            [Barrier(0), Barrier(1)],
            [Write(LINE), Barrier(0), Barrier(1)],
            [Barrier(0), Read(LINE), Barrier(1)],
            [Barrier(0), Read(LINE), Barrier(1)],
        ]
        res = system.run(ops)
        # At least one of the two concurrent readers hits the BUSY window.
        assert res.stats.get("protocol.nack", 0) >= 1
        assert system.hubs[2].hierarchy.state_of(LINE).readable
        assert system.hubs[3].hierarchy.state_of(LINE).readable

    def test_write_write_race_serialises(self, base4):
        system = System(base4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [
            [],
            [Write(LINE)],
            [Write(LINE)],
        ]
        system.run(ops)
        states = [system.hubs[n].hierarchy.state_of(LINE) for n in (1, 2)]
        assert sorted(s.value for s in states) == ["I", "M"]

    def test_many_writers_many_readers_coherent(self, base4):
        """Stress mix; the online checker enforces correctness."""
        ops = []
        for cpu in range(4):
            stream = []
            for it in range(6):
                if cpu % 2 == 0:
                    stream.append(Write(LINE))
                else:
                    stream.append(Read(LINE))
                stream.append(Compute(37 * (cpu + 1)))
                stream.append(Barrier(it))
            ops.append(stream)
        res = run_ops(base4, ops, placements=[(LINE, 128, 2)])
        assert res.cycles > 0


class TestBarriers:
    def test_barrier_synchronises(self, base4):
        system = System(base4)
        ops = [
            [Compute(1000), Barrier(0)],
            [Compute(10), Barrier(0)],
        ]
        res = system.run(ops)
        # Both must finish after the slow CPU reaches the barrier.
        assert min(res.cpu_finish_times) >= 1000

    def test_mismatched_barriers_detected(self, base4):
        from repro.common.errors import SimulationError
        system = System(base4)
        ops = [
            [Barrier(0)],
            [Barrier(1)],
        ]
        with pytest.raises(SimulationError):
            system.run(ops)
