"""The spec-compiled model checker (repro.spec.mcgen).

The MESI spec compiles into an executable ``repro.mc`` model; this file
pins the exhaustive-check result, proves the compiled model still has
teeth (a seeded wrong effect trips the safety invariants), and exercises
the compiler's own guard rails: emission checking, exactly-one dispatch,
``unreachable`` tags, and the generated-only entry requirement.
"""

import dataclasses

import pytest

from repro.mc import ALL_INVARIANTS, ModelChecker
from repro.mc.engine import InvariantViolation
from repro.spec import get_spec
from repro.spec.mcgen import SpecExecutionError, SpecModel


def check(model, max_states=500_000):
    checker = ModelChecker(model.initial_states(), model.rules(),
                           ALL_INVARIANTS, quiescent=model.quiescent,
                           max_states=max_states, track_traces=True,
                           canonicalize=model.canonical)
    return checker.run()


def mesi_model(spec=None, **kwargs):
    return SpecModel(spec if spec is not None else get_spec("mesi"),
                     **kwargs)


def replace_transition(spec, label, **changes):
    assert any(t.label == label for t in spec.transitions), label
    ts = tuple(dataclasses.replace(t, **changes) if t.label == label else t
               for t in spec.transitions)
    return dataclasses.replace(spec, transitions=ts)


class TestExhaustiveCheck:
    def test_generated_mesi_model_passes(self):
        result = check(mesi_model())
        # Pinned so a spec or compiler change that shrinks or grows the
        # reachable space is visible, not silent.
        assert result.states_explored == 254
        assert result.transitions == 527
        assert result.max_depth == 22

    def test_unordered_channels_also_pass(self):
        # MESI has no payload-racing reorder hazard: unlike the adaptive
        # protocol, dropping FIFO must not surface a counterexample.
        result = check(mesi_model(ordered_channels=False))
        assert result.states_explored >= 254


class TestModelHasTeeth:
    def test_seeded_wrong_effect_trips_invariants(self):
        # Serve a GETX from the shared state with the unowned-grant
        # effect: sharers keep stale copies with no invalidations, which
        # the single-writer/value invariants must catch.
        spec = replace_transition(get_spec("mesi"), "getx_shared",
                                  effect="getx_unowned",
                                  emit=("DATA_EXCL",))
        with pytest.raises(InvariantViolation):
            check(mesi_model(spec))


class TestCompilerGuardRails:
    def test_non_generated_spec_is_rejected(self):
        with pytest.raises(SpecExecutionError, match="only 'generated'"):
            SpecModel(get_spec("adaptive"))

    def test_undeclared_emission_is_caught_at_runtime(self):
        # The unowned-GETS effect sends DATA_EXCL; stripping it from the
        # declared emit set makes the very first read miss a violation.
        spec = replace_transition(get_spec("mesi"), "gets_unowned",
                                  emit=())
        with pytest.raises(SpecExecutionError, match="outside its "
                           "declared emit set"):
            check(mesi_model(spec))

    def test_ambiguous_dispatch_is_caught_at_runtime(self):
        # Widening gets_shared to dir in {S, E} makes two transitions
        # claim a GETS arriving at an exclusive line.
        spec = replace_transition(
            get_spec("mesi"), "gets_shared",
            when=(("busy", ("none",)), ("dir", ("S", "E"))))
        with pytest.raises(SpecExecutionError, match="transitions match"):
            check(mesi_model(spec))

    def test_unreachable_tag_firing_is_a_violation(self):
        spec = replace_transition(get_spec("mesi"), "gets_unowned",
                                  tags=("unreachable",))
        with pytest.raises(SpecExecutionError, match="spec-unreachable"):
            check(mesi_model(spec))

    def test_missing_entry_rule_is_rejected(self):
        spec = get_spec("mesi")
        ts = tuple(t for t in spec.transitions
                   if t.mc_rule != "rule_evict")
        spec = dataclasses.replace(spec, transitions=ts)
        with pytest.raises(SpecExecutionError,
                           match="no entry transition for rule_evict"):
            SpecModel(spec)


class TestVerifyCli:
    def test_verify_mesi_passes(self, capsys):
        from repro.cli import main
        assert main(["verify", "--protocol", "mesi"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PASS: 254 states")
