"""End-to-end application runs under full coherence checking.

Every paper application runs (scaled down) on the baseline and enhanced
systems; beyond "it runs clean", these assert each app's defining
behaviour from §3.2 — the signature the calibration targets.
"""

import pytest

from repro.common import baseline, large, small
from repro.harness import run_app
from repro.workloads import application_names

SCALE = 0.5


@pytest.fixture(scope="module")
def runs():
    """Run all apps on base/small/large once; reuse across tests."""
    out = {}
    for app in application_names():
        out[app] = {
            "base": run_app(app, baseline(), scale=SCALE).metrics,
            "small": run_app(app, small(), scale=SCALE).metrics,
            "large": run_app(app, large(), scale=SCALE).metrics,
        }
    return out


class TestAllAppsRunClean:
    @pytest.mark.parametrize("app", application_names())
    def test_runs_with_coherence_checking(self, runs, app):
        assert runs[app]["base"].cycles > 0
        assert runs[app]["small"].cycles > 0
        assert runs[app]["large"].cycles > 0


class TestMechanismEffects:
    @pytest.mark.parametrize("app", application_names())
    def test_enhanced_never_slower_than_base_by_much(self, runs, app):
        """The mechanisms may be a wash but must not badly hurt."""
        assert runs[app]["small"].cycles <= runs[app]["base"].cycles * 1.05

    @pytest.mark.parametrize("app", ["em3d", "lu", "mg", "barnes"])
    def test_communication_heavy_apps_speed_up(self, runs, app):
        assert runs[app]["base"].cycles > runs[app]["large"].cycles

    @pytest.mark.parametrize("app", ["em3d", "lu", "ocean"])
    def test_remote_misses_reduced(self, runs, app):
        assert (runs[app]["large"].remote_misses
                < runs[app]["base"].remote_misses)

    def test_updates_flow_in_enhanced_configs(self, runs):
        total = sum(runs[app]["large"].updates_sent
                    for app in application_names())
        assert total > 0

    def test_baseline_sends_no_updates(self, runs):
        for app in application_names():
            assert runs[app]["base"].updates_sent == 0


class TestAppSignatures:
    def test_cg_gains_least(self, runs):
        """CG: false sharing + compute-bound -> smallest speedup."""
        speedups = {app: runs[app]["base"].cycles / runs[app]["large"].cycles
                    for app in application_names()}
        assert speedups["cg"] <= min(speedups["em3d"], speedups["lu"])

    @pytest.mark.slow
    def test_mg_is_delegate_cache_limited(self):
        """MG: 1K-entry tables recover more than the small config.  The
        capacity pressure only exists at full problem size."""
        base = run_app("mg", baseline()).metrics
        small_m = run_app("mg", small()).metrics
        large_m = run_app("mg", large()).metrics
        assert base.cycles / large_m.cycles > base.cycles / small_m.cycles

    @pytest.mark.slow
    def test_appbt_is_rac_limited(self):
        base = run_app("appbt", baseline()).metrics
        small_m = run_app("appbt", small()).metrics
        large_m = run_app("appbt", large()).metrics
        assert base.cycles / large_m.cycles > base.cycles / small_m.cycles

    def test_em3d_nack_traffic_reduced(self):
        """The reload flurry's NACKs largely disappear with updates (full
        scale: the flurry needs all 16 consumers hammering hot lines)."""
        base = run_app("em3d", baseline()).metrics
        large_m = run_app("em3d", large()).metrics
        assert base.nacks > 0
        assert large_m.nacks < base.nacks

    def test_ocean_single_consumer_dominates(self):
        run = run_app("ocean", baseline(), scale=SCALE)
        assert run.consumer_hist["1"] > 80

    def test_appbt_many_consumers_dominates(self):
        run = run_app("appbt", baseline(), scale=SCALE)
        assert run.consumer_hist["4+"] > 70

    def test_delegations_occur_for_remote_homed_apps(self, runs):
        for app in ("barnes", "mg"):
            assert runs[app]["large"].delegations > 0

    def test_no_delegation_when_home_is_producer(self, runs):
        """Ocean/LU home boundary data at the producer: home-self updates
        fire without any delegation."""
        for app in ("ocean", "lu"):
            assert runs[app]["large"].delegations == 0
            assert runs[app]["large"].updates_sent > 0
