"""The scaling study: storm scenarios, the scale harness, large-machine
oracle runs, and the workload region layout that makes them possible.

The fast lane exercises the harness/report plumbing and the oracles at
64 nodes; the slow lane replays the headline 512/1024-node storms per
directory format with full coherence + quiescence checking.
"""

import json

import pytest

from repro.fuzz.runner import run_case
from repro.fuzz.scenarios import (
    FuzzScenario,
    scenario_from_dict,
    scenario_to_dict,
    storm_workload_kwargs,
)
from repro.harness.scale import run_scale, scale_engine
from repro.workloads import regions


class TestRegionLayout:
    def test_small_machines_keep_the_constants(self):
        """Every machine small enough for the historical constants gets
        them byte-identically (existing traces must not move)."""
        for cpus in (2, 16, 63):
            assert regions.layout(cpus) == (
                regions.SHARED, regions.HOT, regions.FALSE_SHARE,
                regions.PRIVATE)

    @pytest.mark.parametrize("cpus", [64, 65, 256, 1024])
    def test_large_machines_get_disjoint_regions(self, cpus):
        """Regression: with 64+ CPUs the per-CPU ``SHARED + cpu`` region
        numbers used to collide with HOT/FALSE_SHARE (and eventually
        PRIVATE + cpu) — logically distinct lines aliased to the same
        addresses."""
        shared, hot, false_share, private = regions.layout(cpus)
        shared_regions = set(range(shared, shared + cpus))
        private_regions = set(range(private, private + cpus))
        assert hot not in shared_regions
        assert false_share not in shared_regions
        assert not shared_regions & private_regions
        assert {hot, false_share}.isdisjoint(private_regions)

    def test_region_bases_stay_disjoint_windows(self):
        shared, hot, _fs, private = regions.layout(1024)
        spans = sorted((regions.region_base(r), r)
                       for r in (shared, shared + 1023, hot, private,
                                 private + 1023))
        for (lo, _), (hi, _) in zip(spans, spans[1:]):
            assert hi - lo >= regions.REGION_BYTES


class TestStormScenario:
    def test_deterministic(self):
        a = FuzzScenario.storm(3, num_nodes=64, directory_format="coarse:8")
        b = FuzzScenario.storm(3, num_nodes=64, directory_format="coarse:8")
        assert a == b

    def test_axes_only_change_the_knob(self):
        """Cells of the scale report differ only in the knob under study:
        same seed + node count -> the same workload whatever the format
        or protocol."""
        full = FuzzScenario.storm(3, num_nodes=64)
        lim = FuzzScenario.storm(3, num_nodes=64, directory_format="limited:2",
                                 protocol="wi")
        assert full.workloads == lim.workloads
        assert full.config.num_nodes == lim.config.num_nodes
        assert lim.config.directory_format == "limited:2"
        assert lim.config.protocol_name == "wi"

    def test_caps_grow_with_node_count(self):
        small = FuzzScenario.storm(0, num_nodes=64)
        big = FuzzScenario.storm(0, num_nodes=1024)
        assert big.max_events > small.max_events
        assert big.max_events >= 1024 * 40_000

    def test_consumer_slice_capped(self):
        assert storm_workload_kwargs(1024)["consumers"] == 32
        assert storm_workload_kwargs(16)["consumers"] == 2

    def test_round_trips_through_artifact_encoding(self):
        scenario = FuzzScenario.storm(7, num_nodes=256,
                                      directory_format="limited:4")
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_from_seed_pins_nodes_and_format(self):
        rolled = FuzzScenario.from_seed(5)
        pinned = FuzzScenario.from_seed(5, num_nodes=256,
                                        directory_format="coarse:16")
        assert pinned.config.num_nodes == 256
        assert pinned.config.directory_format == "coarse:16"
        assert pinned.workloads == rolled.workloads
        assert pinned.chaos == rolled.chaos
        assert pinned.max_events >= 256 * 40_000


class TestScaleHarness:
    def test_report_shape_and_breakdown(self):
        report = run_scale(nodes=(16,), formats=("full", "limited:2"),
                           engine=scale_engine(jobs=1))
        rows = report.rows()
        assert len(rows) == 2
        full_row = next(r for r in rows if r["format"] == "full")
        lim_row = next(r for r in rows if r["format"] == "limited:2")
        # The format's area/traffic trade-off is visible in every row.
        assert lim_row["dir_bits_per_entry"] < full_row["dir_bits_per_entry"]
        assert lim_row["invalidations"] >= full_row["invalidations"]
        for row in rows:
            assert row["cycles"] > 0
            assert row["traffic_bytes"] > 0
        text = report.render_text()
        assert "[16 nodes]" in text
        assert "limited:2" in text
        doc = json.loads(json.dumps(report.to_json()))
        assert len(doc["rows"]) == 2

    def test_bad_axes_fail_fast(self):
        from repro.common import ConfigError

        with pytest.raises(ConfigError):
            run_scale(nodes=(16,), formats=("coarse:x",))
        with pytest.raises(Exception):
            run_scale(nodes=(16,), protocols=("nonesuch",))

    def test_cells_cached_across_runs(self, tmp_path):
        engine = scale_engine(jobs=1, cache=True, cache_dir=str(tmp_path))
        run_scale(nodes=(16,), formats=("full",), engine=engine)
        assert engine.last_report.executed == 1
        engine2 = scale_engine(jobs=1, cache=True, cache_dir=str(tmp_path))
        run_scale(nodes=(16,), formats=("full",), engine=engine2)
        assert engine2.last_report.cached == 1
        assert engine2.last_report.executed == 0


class TestScaleCLI:
    def test_scale_command_with_json(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "scale.json"
        assert main(["scale", "--nodes", "16", "--formats", "full,limited:2",
                     "--no-cache", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "[16 nodes]" in out
        assert "scale: 2 cells" in out
        doc = json.loads(out_path.read_text())
        assert doc["benchmarks"][0]["group"] == "scale"
        assert len(doc["scale"]["rows"]) == 2
        # bench_gate reruns from these params verbatim.
        params = doc["benchmarks"][0]["params"]
        assert params["nodes"] == "16"
        assert params["formats"] == "full,limited:2"


def storm_oracles_clean(num_nodes, directory_format, protocol="adaptive",
                        seed=0):
    """Run one storm case with every oracle armed; return the result."""
    scenario = FuzzScenario.storm(seed, num_nodes=num_nodes,
                                  directory_format=directory_format,
                                  protocol=protocol)
    result = run_case(scenario)
    assert result.ok, "%s@%d: %s %s" % (directory_format, num_nodes,
                                        result.oracle, result.message)
    return result


class TestStormOraclesFast:
    """64-node oracle-checked storms per format: the fast-lane slice of
    the scaled-up audit (coherence, single-writer, quiescence)."""

    @pytest.mark.parametrize("fmt", ["full", "coarse:8", "limited:2"])
    def test_storm_64_nodes(self, fmt):
        storm_oracles_clean(64, fmt)

    def test_update_fanout_amplifies_with_compression(self):
        full = storm_oracles_clean(64, "full")
        lim = storm_oracles_clean(64, "limited:2")
        assert (lim.stats.get("update.sent", 0)
                > full.stats.get("update.sent", 0))


@pytest.mark.slow
class TestStormOraclesAtScale:
    """The headline acceptance runs: 512/1024-node storms complete with
    all fuzz oracles clean for every directory format."""

    @pytest.mark.parametrize("fmt", ["full", "coarse:8", "coarse:16",
                                     "limited:2", "limited:4"])
    def test_storm_512_nodes(self, fmt):
        storm_oracles_clean(512, fmt)

    @pytest.mark.parametrize("fmt", ["full", "coarse:8", "coarse:16",
                                     "limited:2", "limited:4"])
    def test_storm_1024_nodes(self, fmt):
        storm_oracles_clean(1024, fmt)

    @pytest.mark.parametrize("protocol", ["wi", "mesi", "dragon"])
    def test_storm_512_nodes_other_protocols(self, protocol):
        storm_oracles_clean(512, "coarse:16", protocol=protocol)
