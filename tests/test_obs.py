"""Tests for the observability subsystem (repro.obs).

Covers the ISSUE-mandated guarantees: histogram bucket math, tracer
determinism (same seed + config => byte-identical JSONL), Perfetto export
schema sanity (valid JSON, monotone timestamps per track), sampling
controls, and the disabled-tracing overhead guard (<5% cycle delta on a
bench_micro-sized run — in fact zero, since tracing must never perturb
the simulation).
"""

import json

import pytest

from repro.common import small
from repro.harness import run_app
from repro.obs import (
    Histogram,
    TraceConfig,
    Tracer,
    exponential_bounds,
    jsonl_text,
    to_perfetto,
)

APP = "em3d"
SCALE = 0.1


@pytest.fixture(scope="module")
def traced_run():
    """One traced em3d run on the full producer-consumer system."""
    tracer = Tracer()
    run = run_app(APP, small(), scale=SCALE, trace=tracer)
    return run, tracer


class TestHistogram:
    def test_exponential_bounds(self):
        assert exponential_bounds(50, 2, 4) == (50, 100, 200, 400)
        with pytest.raises(ValueError):
            exponential_bounds(0, 2, 4)

    def test_bucket_math(self):
        hist = Histogram((10, 20, 40))
        # Inclusive upper bounds; above the last bound -> overflow bucket.
        for value, bucket in ((0, 0), (10, 0), (11, 1), (20, 1), (21, 2),
                              (40, 2), (41, 3), (10_000, 3)):
            assert hist.bucket_of(value) == bucket, value

    def test_record_and_summary(self):
        hist = Histogram((10, 20, 40))
        for value in (5, 10, 15, 100):
            hist.record(value)
        assert hist.counts == [2, 1, 0, 1]
        assert hist.count == 4
        assert hist.total == 130
        assert hist.min == 5 and hist.max == 100
        assert hist.mean == pytest.approx(32.5)
        d = hist.to_dict()
        assert d["counts"] == [2, 1, 0, 1]
        assert d["bounds"] == [10, 20, 40]

    def test_percentile(self):
        hist = Histogram((10, 20, 40))
        assert hist.percentile(0.5) is None  # empty
        for value in (1, 2, 3, 15, 100):
            hist.record(value)
        assert hist.percentile(0.5) == 10    # 3 of 5 in first bucket
        assert hist.percentile(0.8) == 20
        assert hist.percentile(1.0) == 100   # overflow -> recorded max

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((10, 10, 20))
        with pytest.raises(ValueError):
            Histogram((20, 10))


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_every=0)
        with pytest.raises(ValueError):
            TraceConfig(addr_ranges=((0x100, 0x100),))

    def test_filters(self):
        tracer = Tracer(TraceConfig(nodes=(1, 2),
                                    addr_ranges=((0x1000, 0x2000),)))
        assert tracer._in_filters(1, 0x1800)
        assert not tracer._in_filters(0, 0x1800)   # node filtered
        assert not tracer._in_filters(1, 0x2000)   # range is half-open


class TestTracedRun:
    def test_obs_lands_in_extras(self, traced_run):
        run, _ = traced_run
        assert run.obs is not None
        assert set(run.obs) == {"miss_latency", "retries",
                                "intervention_occupancy", "counters"}

    def test_metrics_match_stats(self, traced_run):
        """Histograms must agree with the simulator's own counters."""
        run, _ = traced_run
        latency = run.obs["miss_latency"]
        assert latency["local"]["count"] == run.stats.get("miss.local", 0)
        assert latency["2hop"]["count"] == run.stats["miss.remote_2hop"]
        assert latency["3hop"]["count"] == run.stats["miss.remote_3hop"]
        counters = run.obs["counters"]
        assert counters["event.dele.accepted"] == run.stats["dele.accepted"]
        assert (counters["event.intervention.fired"]
                == run.stats["update.intervention"])

    def test_paper_mechanism_spans_present(self, traced_run):
        """The acceptance criterion: delegation spans + update events."""
        _, tracer = traced_run
        kinds = {span.kind for span in tracer.spans}
        assert "delegation" in kinds
        assert "miss.read" in kinds and "miss.write" in kinds
        names = {event.name for event in tracer.events}
        assert "update.push" in names
        assert "update.recv" in names
        assert "intervention.fired" in names

    def test_spans_are_well_formed(self, traced_run):
        _, tracer = traced_run
        for span in tracer.spans:
            assert span.end is None or span.end >= span.start
            for attempt in span.attempts:
                assert span.start <= attempt["ts"]
            if span.kind.startswith("miss."):
                assert span.outcome in ("local", "2hop", "3hop",
                                        "unfinished")

    def test_intervention_occupancy_recorded(self, traced_run):
        run, _ = traced_run
        occupancy = run.obs["intervention_occupancy"]
        assert occupancy["count"] > 0
        # Fired interventions sat armed for exactly intervention_delay.
        assert occupancy["max"] >= small().protocol.intervention_delay


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self):
        dumps = []
        for _ in range(2):
            tracer = Tracer()
            run_app(APP, small(), scale=SCALE, trace=tracer)
            dumps.append(jsonl_text(tracer))
        assert dumps[0] == dumps[1]
        assert dumps[0]  # non-empty

    def test_jsonl_lines_are_valid_json(self, traced_run):
        _, tracer = traced_run
        lines = jsonl_text(tracer).splitlines()
        assert len(lines) == len(tracer.spans) + len(tracer.events)
        for line in lines[:50]:
            record = json.loads(line)
            assert record["type"] in ("span", "event")


class TestPerfettoExport:
    def test_schema_sanity(self, traced_run):
        _, tracer = traced_run
        doc = json.loads(json.dumps(to_perfetto(tracer)))  # round-trips
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] != "M":
                assert event["ts"] >= 0

    def test_ts_monotone_per_track(self, traced_run):
        _, tracer = traced_run
        last = {}
        for event in to_perfetto(tracer)["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event.get("tid", 0))
            assert event["ts"] >= last.get(key, 0)
            last[key] = event["ts"]

    def test_track_metadata_present(self, traced_run):
        _, tracer = traced_run
        events = to_perfetto(tracer)["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert any(name.startswith("node ") for name in names)


class TestSampling:
    def test_one_in_n_reduces_spans(self):
        full = Tracer()
        run_app(APP, small(), scale=SCALE, trace=full)
        sampled = Tracer(TraceConfig(sample_every=4))
        run_app(APP, small(), scale=SCALE, trace=sampled)
        full_misses = [s for s in full.spans if s.kind.startswith("miss.")]
        kept = [s for s in sampled.spans if s.kind.startswith("miss.")]
        assert 0 < len(kept) < len(full_misses)
        # Metrics stay full-fidelity regardless of span sampling.
        assert (sampled.metrics.summary()["miss_latency"]
                == full.metrics.summary()["miss_latency"])

    def test_node_filter(self):
        tracer = Tracer(TraceConfig(nodes=(0,)))
        run_app(APP, small(), scale=SCALE, trace=tracer)
        assert tracer.spans
        assert {span.node for span in tracer.spans} == {0}
        assert {event.node for event in tracer.events} <= {0}


class TestOverheadGuard:
    def test_disabled_tracing_does_not_perturb_simulation(self):
        """bench_micro-sized guard: the no-op fast path must leave the
        simulated timeline untouched (<5% cycle delta; actually 0)."""
        plain = run_app(APP, small(), scale=SCALE)
        traced = run_app(APP, small(), scale=SCALE, trace=Tracer())
        assert plain.trace is None and plain.obs is None
        delta = abs(traced.metrics.cycles - plain.metrics.cycles)
        assert delta <= 0.05 * plain.metrics.cycles
        # Stronger: tracing is purely observational.
        assert traced.metrics.cycles == plain.metrics.cycles
        assert traced.stats == plain.stats


class TestCliTrace:
    def test_perfetto_out(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "trace.json"
        assert main(["trace", APP, "pc", "--scale", "0.05",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        text = capsys.readouterr().out
        assert "spans recorded" in text

    def test_jsonl_out_with_sampling(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "trace.jsonl"
        assert main(["trace", APP, "pc", "--scale", "0.05",
                     "--sample-every", "8", "--nodes", "0,1",
                     "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["node"] in (0, 1) for line in lines)
