"""Mutation probes for the spec analyses (SPC) and the spec-driven
conformance checks (CON).

Two mutation styles:

* the SPC checks operate on a :class:`ProtocolSpec` alone, so those
  probes seed defects with ``dataclasses.replace`` on the installed
  specs — no tree copying needed;
* the conformance checks diff a spec against the AST-extracted graphs,
  so those probes copy the sources (the ``test_lint_mutation`` idiom),
  mutate one side, and run the full ``run_lint`` pipeline.

Plus the golden SARIF snapshot: a clean ``repro spec`` run over the real
tree must produce a byte-stable SARIF document (rule inventory included),
so CI artifact diffs show exactly when the check surface changes.
"""

import dataclasses
import json
import shutil
from pathlib import Path

import pytest

from repro.spec import Msg, T, get_spec
from repro.spec.analyze import run_spec_checks

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
GOLDEN = Path(__file__).resolve().parent / "golden"


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "repro"
    shutil.copytree(SRC, root,
                    ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    return root


def mutate(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text, "mutation anchor %r not found in %s" % (old, rel)
    path.write_text(text.replace(old, new))


def finding_map(root):
    from repro.lint import run_lint
    report = run_lint(root=root, use_allowlist=False)
    return {f.key: f.severity for f in report.findings}


def spc_keys(spec):
    return {f.key for f in run_spec_checks(spec)}


def replace_transition(spec, label, **changes):
    ts = tuple(dataclasses.replace(t, **changes) if t.label == label else t
               for t in spec.transitions)
    assert any(t.label == label for t in spec.transitions), label
    return dataclasses.replace(spec, transitions=ts)


def drop_transition(spec, label):
    ts = tuple(t for t in spec.transitions if t.label != label)
    assert len(ts) < len(spec.transitions), label
    return dataclasses.replace(spec, transitions=ts)


class TestSpecChecksClean:
    @pytest.mark.parametrize("name", ["adaptive", "wi", "mesi", "dragon"])
    def test_installed_specs_are_clean(self, name):
        assert spc_keys(get_spec(name)) == set()


class TestSpcMutations:
    def test_spc001_overlapping_guards(self):
        # Widen gets_shared to dir in {S, E}: it now competes with the
        # dir=E transitions in the GETS trigger group.
        spec = replace_transition(
            get_spec("mesi"), "gets_shared",
            when=(("busy", ("none",)), ("dir", ("S", "E"))))
        keys = spc_keys(spec)
        assert "SPC001:GETS:gets_intervene+gets_shared" in keys

    def test_spc002_non_exhaustive_guards(self):
        # Drop the unowned-GETS handler: busy=none & dir=U now matches
        # nothing, so the message would be dropped on the floor.
        keys = spc_keys(drop_transition(get_spec("mesi"), "gets_unowned"))
        assert any(k.startswith("SPC002:GETS:busy=none&dir=U")
                   for k in keys), keys

    def test_spc003_never_installed_state(self):
        spec = get_spec("mesi")
        spec = dataclasses.replace(
            spec, dir_states=spec.dir_states + ("ZOMBIE",))
        assert "SPC003:dir:ZOMBIE" in spc_keys(spec)

    def test_spc004_orphan_message(self):
        spec = get_spec("mesi")
        spec = dataclasses.replace(
            spec, messages=spec.messages + (
                Msg("PONG", note="orphan probe"),))
        keys = spc_keys(spec)
        assert "SPC004:PONG:never-emitted" in keys
        assert "SPC004:PONG:never-handled" in keys

    def test_spc005_emission_cycle_without_nack(self):
        # A GETS handler that re-emits GETS with no 'bounded' tag is the
        # spec-level livelock shape (mirrors DLK001).
        spec = get_spec("mesi")
        spec = dataclasses.replace(
            spec, transitions=spec.transitions + (
                T("home", "GETS", (("busy", ("wb",)),), emit=("GETS",),
                  label="fwd_probe"),))
        assert "SPC005:cycle:GETS" in spc_keys(spec)

    def test_spc005_bounded_tag_excuses_self_loop(self):
        spec = get_spec("mesi")
        spec = dataclasses.replace(
            spec, transitions=spec.transitions + (
                T("home", "GETS", (("busy", ("wb",)),), emit=("GETS",),
                  tags=("bounded",), why="one-shot forward probe",
                  label="fwd_probe"),))
        assert not any(k.startswith("SPC005") for k in spc_keys(spec))

    def test_spc006_unpaired_request(self):
        # Strip INV_ACK's reply_to: the INV request now has no declared
        # reply, so a requester waiting on it would hang.
        spec = get_spec("mesi")
        msgs = tuple(dataclasses.replace(m, reply_to=())
                     if m.name == "INV_ACK" else m for m in spec.messages)
        keys = spc_keys(dataclasses.replace(spec, messages=msgs))
        assert "SPC006:INV:unpaired-request" in keys

    def test_spc006_reply_to_non_request(self):
        spec = get_spec("mesi")
        msgs = tuple(dataclasses.replace(m, reply_to=("INV_ACK",))
                     if m.name == "ACK_X" else m for m in spec.messages)
        keys = spc_keys(dataclasses.replace(spec, messages=msgs))
        assert "SPC006:ACK_X:reply-to-non-request" in keys


class TestConformanceMutations:
    def test_dropped_spec_transition_flags_both_sides(self, tree):
        # Remove the adaptive spec's unowned-GETS edge: the sim and the
        # model both still serve it, so both sides now emit DATA_EXCL
        # with no licensing spec transition.
        mutate(tree, "spec/protocols/adaptive.py",
               '    T("home", "GETS", (("at", ("home",)), ("busy", '
               '("none",)),\n'
               '                       ("dir", ("U",))),\n'
               '      emit=("DATA_EXCL",), goes=(("dir", "E"),), '
               'label="gets_unowned"),\n',
               '')
        found = finding_map(tree)
        assert "CON003:GETS->DATA_EXCL" in found
        assert "CON004:GETS->DATA_EXCL" in found

    def test_phantom_spec_emission_flags_both_sides(self, tree):
        # Claim SHARED_WB handling can emit INV: neither the sim nor the
        # model has such an edge, so the spec's requirement is unmet.
        mutate(tree, "spec/protocols/adaptive.py",
               'goes=(("dir", "S"),), label="sh_wb_apply"',
               'emit=("INV",), goes=(("dir", "S"),), label="sh_wb_apply"')
        found = finding_map(tree)
        assert "CON005:SHARED_WB->INV" in found
        assert "CON006:SHARED_WB->INV" in found

    def test_bogus_replay_function_is_flagged(self, tree):
        mutate(tree, "spec/protocols/adaptive.py",
               'replay="_resolve_wb_race"', 'replay="_no_such_func"')
        found = finding_map(tree)
        assert "CON005:replay:_no_such_func" in found

    def test_renamed_model_rule_is_flagged(self, tree):
        # The spec hoists update emissions into rule_intervention_fire;
        # renaming the rule breaks both the hoist closure and the entry
        # attribution.
        mutate(tree, "mc/model.py", "def rule_intervention_fire(",
               "def rule_intervention_gone(")
        found = finding_map(tree)
        assert "CON006:!rule_intervention_fire" in found

    def test_spc007_dropped_arena_handler(self, tree):
        # MESI's hub stops registering INV: its spec still handles it.
        mutate(tree, "protocol/arena.py",
               "            MsgType.INV: self._on_inv,\n", "")
        found = finding_map(tree)
        assert "SPC007:mesi:INV:missing-handler" in found

    def test_legacy_tree_falls_back_to_heuristic(self, tree):
        from repro.lint import run_lint
        shutil.rmtree(tree / "spec")
        report = run_lint(root=tree, use_allowlist=False)
        assert report.stats["conformance"]["source"] == "heuristic"
        keys = {f.key for f in report.findings}
        # The name-map heuristic resurfaces the legacy abstraction gaps
        # that the specs normally justify structurally.
        assert "CON001:WB_ACK" in keys
        assert "CON003:DATA_SHARED->WRITEBACK" in keys


class TestGoldenSarif:
    def test_clean_spec_run_matches_golden_sarif(self, capsys, tmp_path):
        from repro.cli import main
        out_path = tmp_path / "spec.sarif"
        assert main(["spec", "--sarif", str(out_path)]) == 0
        capsys.readouterr()
        produced = json.loads(out_path.read_text())
        golden = json.loads((GOLDEN / "spec_clean.sarif").read_text())
        assert produced == golden

    def test_golden_sarif_carries_the_spc_rule_inventory(self):
        doc = json.loads((GOLDEN / "spec_clean.sarif").read_text())
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        for rule_id in ("SPC001", "SPC002", "SPC003", "SPC004", "SPC005",
                        "SPC006", "SPC007", "CON005", "CON006"):
            assert rule_id in rules
        assert doc["runs"][0]["results"] == []
