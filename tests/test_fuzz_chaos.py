"""The network-layer fault injector: config validation, protocol-legality
invariants (pairwise FIFO, safe duplication/bounce sets), determinism, and
end-to-end integration with the fabric.
"""

import pytest

from repro.common import Stats, baseline, small
from repro.common.errors import ConfigError
from repro.network import Message, MsgType
from repro.network.chaos import (
    ChaosConfig,
    ChaosPolicy,
    chaos_from_dict,
    chaos_to_dict,
)
from repro.sim import System
from repro.workloads import synthetic

LINE = 0x100000


def policy(stats=None, **knobs):
    return ChaosPolicy(ChaosConfig(**knobs), stats=stats)


def gets(src=1, dst=0, requester=None):
    return Message(MsgType.GETS, src=src, dst=dst, addr=LINE,
                   payload={"requester": src if requester is None
                            else requester})


class TestChaosConfig:
    def test_default_is_disabled(self):
        assert not ChaosConfig().enabled

    @pytest.mark.parametrize("knobs", [
        {"delay_jitter": 1},
        {"reorder_prob": 0.1, "reorder_window": 10},
        {"duplicate_prob": 0.1},
        {"force_nack_prob": 0.1},
    ])
    def test_any_knob_enables(self, knobs):
        assert ChaosConfig(**knobs).enabled

    @pytest.mark.parametrize("knobs", [
        {"delay_jitter": -1},
        {"reorder_window": -1},
        {"force_nack_budget": -1},
        {"reorder_prob": 1.5, "reorder_window": 10},
        {"duplicate_prob": -0.1},
        {"force_nack_prob": 0.95},  # capped below 1.0: progress guarantee
        {"reorder_prob": 0.5},      # reordering needs a window
    ])
    def test_validation(self, knobs):
        with pytest.raises(ConfigError):
            ChaosConfig(**knobs)

    def test_dict_roundtrip(self):
        cfg = ChaosConfig(seed=5, delay_jitter=20, reorder_prob=0.3,
                          reorder_window=50, duplicate_prob=0.5,
                          force_nack_prob=0.2, force_nack_budget=16)
        assert chaos_from_dict(chaos_to_dict(cfg)) == cfg
        assert chaos_to_dict(None) is None
        assert chaos_from_dict(None) is None

    def test_resolve(self):
        assert ChaosPolicy.resolve(None) is None
        assert ChaosPolicy.resolve(ChaosConfig()) is None  # all-zero
        resolved = ChaosPolicy.resolve(ChaosConfig(delay_jitter=5))
        assert isinstance(resolved, ChaosPolicy)
        assert ChaosPolicy.resolve(resolved) is resolved


class TestPairwiseFifo:
    def test_same_channel_arrivals_never_decrease(self):
        pol = policy(seed=1, delay_jitter=200, reorder_prob=0.5,
                     reorder_window=400)
        booked = []
        for i in range(500):
            booked.append(pol.arrival(gets(src=1, dst=0), arrival=100 + i))
        assert booked == sorted(booked)

    def test_channels_are_independent(self):
        pol = policy(seed=1, delay_jitter=0)
        high = pol.arrival(gets(src=1, dst=0), arrival=1000)
        assert high == 1000
        # A different channel is not dragged up to that floor.
        assert pol.arrival(gets(src=2, dst=0), arrival=5) == 5

    def test_duplicate_raises_channel_floor(self):
        pol = policy(seed=1, duplicate_prob=1.0)
        msg = Message(MsgType.WB_ACK, src=0, dst=1, addr=LINE)
        dup_at = pol.duplicate_arrival(msg, arrival=100)
        assert dup_at > 100
        # Later traffic on the channel cannot overtake the duplicate.
        assert pol.arrival(gets(src=0, dst=1), arrival=50) >= dup_at


class TestDuplication:
    def fire(self, pol, msg, tries=200):
        return [t for t in (pol.duplicate_arrival(msg, arrival=100)
                            for _ in range(tries)) if t is not None]

    def test_safe_set_duplicated(self):
        pol = policy(seed=2, duplicate_prob=1.0)
        for mtype in (MsgType.WB_ACK, MsgType.HOME_CHANGED):
            assert pol.duplicate_arrival(
                Message(mtype, src=0, dst=1, addr=LINE), 100) is not None

    def test_ackless_update_duplicated_acked_never(self):
        pol = policy(seed=2, duplicate_prob=1.0)
        ackless = Message(MsgType.UPDATE, src=0, dst=1, addr=LINE,
                          payload={"hops": 2})
        acked = Message(MsgType.UPDATE, src=0, dst=1, addr=LINE,
                        payload={"hops": 2, "ack": True})
        assert pol.duplicate_arrival(ackless, 100) is not None
        assert self.fire(pol, acked) == []

    @pytest.mark.parametrize("mtype", [MsgType.NACK, MsgType.INV_ACK,
                                       MsgType.DATA_EXCL, MsgType.GETX,
                                       MsgType.UPDATE_ACK, MsgType.UNDELE])
    def test_unsafe_types_never_duplicated(self, mtype):
        pol = policy(seed=2, duplicate_prob=1.0)
        msg = Message(mtype, src=0, dst=1, addr=LINE,
                      payload={"requester": 0, "for": "miss"})
        assert self.fire(pol, msg) == []


class TestForcedNacks:
    def test_gets_bounced_to_requester(self):
        pol = policy(seed=3, force_nack_prob=0.9)
        nacks = [pol.forced_nack(gets(src=2, dst=0, requester=2))
                 for _ in range(50)]
        nacks = [n for n in nacks if n is not None]
        assert nacks
        for nack in nacks:
            assert nack.mtype is MsgType.NACK
            assert nack.src == 0 and nack.dst == 2  # as if the home bounced
            assert nack.payload["for"] == "miss"
            assert nack.payload["chaos"]

    def test_intervention_and_recall_bounced_to_sender(self):
        pol = policy(seed=3, force_nack_prob=0.9, force_nack_budget=10_000)
        for mtype, purpose in ((MsgType.INTERVENTION, "intervention"),
                               (MsgType.UNDELE_REQ, "recall")):
            msg = Message(mtype, src=0, dst=1, addr=LINE,
                          payload={"requester": 2})
            nacks = [n for n in (pol.forced_nack(msg) for _ in range(50))
                     if n is not None]
            assert nacks
            for nack in nacks:
                assert nack.dst == 0  # back to the home that sent it
                assert nack.payload["for"] == purpose
                # "busy" means retry-later; never "gone"/"no_copy", which
                # would make the home wait for a writeback forever.
                assert nack.payload["reason"] == "busy"

    @pytest.mark.parametrize("mtype", [MsgType.DATA_SHARED, MsgType.INV,
                                       MsgType.NACK, MsgType.WRITEBACK,
                                       MsgType.UPDATE])
    def test_replies_never_bounced(self, mtype):
        pol = policy(seed=3, force_nack_prob=0.9)
        msg = Message(mtype, src=0, dst=1, addr=LINE,
                      payload={"requester": 0, "for": "miss"})
        assert all(pol.forced_nack(msg) is None for _ in range(100))

    def test_budget_exhausts(self):
        pol = policy(seed=3, force_nack_prob=0.9, force_nack_budget=5)
        fired = [n for n in (pol.forced_nack(gets()) for _ in range(500))
                 if n is not None]
        assert len(fired) == 5

    def test_stats_counters(self):
        stats = Stats()
        pol = policy(stats=stats, seed=4, delay_jitter=50,
                     duplicate_prob=1.0, force_nack_prob=0.9)
        for i in range(50):
            pol.arrival(gets(), arrival=i * 10)
            pol.duplicate_arrival(
                Message(MsgType.WB_ACK, src=0, dst=1, addr=LINE), i * 10)
            pol.forced_nack(gets())
        assert stats.get("chaos.delayed") > 0
        assert stats.get("chaos.duplicated") == 50
        assert stats.get("chaos.forced_nack") > 0


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def run(seed):
            pol = policy(seed=seed, delay_jitter=100, reorder_prob=0.3,
                         reorder_window=50, duplicate_prob=0.5,
                         force_nack_prob=0.5)
            out = []
            for i in range(100):
                out.append(pol.arrival(gets(), arrival=i * 7))
                nack = pol.forced_nack(gets())
                out.append(None if nack is None else nack.payload["for"])
            return out

        assert run(11) == run(11)
        assert run(11) != run(12)


def run_chaotic(chaos, seed=5):
    cfg = small(num_nodes=4, seed=seed)
    build = synthetic(num_cpus=4, seed=seed, iterations=4,
                      lines_per_producer=2, consumers=2).build()
    system = System(cfg, check_coherence=True, chaos=chaos)
    system.run(build.per_cpu_ops, placements=build.placements,
               max_cycles=5_000_000)
    return system


class TestFabricIntegration:
    def test_run_completes_under_heavy_chaos(self):
        chaos = ChaosConfig(seed=9, delay_jitter=200, reorder_prob=0.5,
                            reorder_window=400, duplicate_prob=0.5,
                            force_nack_prob=0.5)
        system = run_chaotic(chaos)
        assert system.stats.get("chaos.delayed") > 0
        assert system.stats.get("chaos.duplicated") > 0

    def test_chaos_changes_schedule_not_results(self):
        quiet = run_chaotic(None)
        noisy = run_chaotic(ChaosConfig(seed=9, delay_jitter=200))
        assert noisy.events.now != quiet.events.now  # schedule perturbed
        # Same committed memory image either way: chaos is latency, not
        # semantics.  Compare every line the workload wrote at the homes.
        for hub_q, hub_n in zip(quiet.hubs, noisy.hubs):
            assert (sorted(hub_q.home_memory.known_lines())
                    == sorted(hub_n.home_memory.known_lines()))

    def test_local_messages_untouched(self):
        stats = Stats()
        pol = ChaosPolicy(ChaosConfig(seed=1, delay_jitter=10_000),
                          stats=stats)
        cfg = baseline(num_nodes=4)
        system = System(cfg, check_coherence=False, chaos=pol)
        assert system.fabric.chaos is pol
        system.fabric.send(Message(MsgType.WB_ACK, src=1, dst=1, addr=LINE))
        system.events.run()
        assert stats.get("chaos.delayed") == 0  # src == dst: fast path

    def test_disabled_config_resolves_to_no_policy(self):
        system = System(baseline(num_nodes=4), check_coherence=False,
                        chaos=ChaosConfig())
        assert system.fabric.chaos is None
