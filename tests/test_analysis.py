"""Analysis layer: metrics extraction, comparisons, renderers, §5 model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    LatencyModel,
    RunMetrics,
    arithmetic_mean,
    consumer_histogram,
    geometric_mean,
    headline,
    metrics_from_result,
    normalized_messages,
    normalized_remote_misses,
    paper_vs_measured,
    render_series,
    render_table,
    speedup,
    speedup_bound,
)
from repro.common import ConfigError
from repro.sim import RunResult


def metrics(cycles=1000, m2=10, m3=5, msgs=100, **kw):
    defaults = dict(cycles=cycles, local_misses=3, remote_2hop=m2,
                    remote_3hop=m3, messages=msgs, bytes=msgs * 40,
                    nacks=0, updates_sent=10, updates_consumed=8,
                    updates_wasted=2, delegations=1, undelegations=1,
                    rac_update_hits=8)
    defaults.update(kw)
    return RunMetrics(**defaults)


def result(stats, cycles=1000):
    return RunResult(cycles=cycles, stats=stats, cpu_finish_times=[cycles],
                     ops_executed=1, events_processed=1)


class TestRunMetrics:
    def test_remote_misses_sum(self):
        assert metrics(m2=10, m3=5).remote_misses == 15

    def test_total_misses(self):
        assert metrics(m2=10, m3=5).total_misses == 18

    def test_update_accuracy(self):
        assert metrics().update_accuracy == pytest.approx(0.8)

    def test_update_accuracy_no_updates(self):
        assert metrics(updates_sent=0).update_accuracy == 0.0

    def test_metrics_from_result(self):
        stats = {"miss.local": 2, "miss.remote_2hop": 3,
                 "miss.remote_3hop": 4, "msg.sent.GETS": 5,
                 "msg.sent.INV": 6, "msg.bytes": 440,
                 "update.sent": 7, "update.consumed": 6,
                 "dele.delegate": 1, "dele.undelegate.flush": 1,
                 "dele.undelegate.recall": 2}
        m = metrics_from_result(result(stats))
        assert m.local_misses == 2
        assert m.remote_misses == 7
        assert m.messages == 11
        assert m.undelegations == 3

    def test_consumer_histogram_percentages(self):
        stats = {"detector.consumers.1": 30, "detector.consumers.4+": 70}
        hist = consumer_histogram(result(stats))
        assert hist["1"] == pytest.approx(30.0)
        assert hist["4+"] == pytest.approx(70.0)
        assert hist["2"] == 0.0

    def test_consumer_histogram_empty(self):
        hist = consumer_histogram(result({}))
        assert all(v == 0.0 for v in hist.values())


class TestCompare:
    def test_speedup(self):
        assert speedup(metrics(cycles=2000), metrics(cycles=1000)) == 2.0

    def test_normalized_messages(self):
        assert normalized_messages(metrics(msgs=100),
                                   metrics(msgs=80)) == pytest.approx(0.8)

    def test_normalized_remote_misses(self):
        base = metrics(m2=10, m3=10)
        enh = metrics(m2=5, m3=5)
        assert normalized_remote_misses(base, enh) == pytest.approx(0.5)

    def test_zero_base_traffic_degenerates_to_one(self):
        assert normalized_messages(metrics(msgs=0), metrics(msgs=0)) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2

    def test_means_reject_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_headline_triple(self):
        base = {"a": metrics(cycles=1000, msgs=100, m2=10, m3=10),
                "b": metrics(cycles=2000, msgs=200, m2=20, m3=20)}
        enh = {"a": metrics(cycles=800, msgs=90, m2=5, m3=5),
               "b": metrics(cycles=1600, msgs=180, m2=10, m3=10)}
        sp, traffic_cut, miss_cut = headline(base, enh)
        assert sp == pytest.approx(1.25)
        assert traffic_cut == pytest.approx(0.10)
        assert miss_cut == pytest.approx(0.50)

    def test_headline_mismatched_apps_rejected(self):
        with pytest.raises(ValueError):
            headline({"a": metrics()}, {"b": metrics()})

    @given(st.lists(st.floats(0.5, 3.0), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_geomean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["app", "speedup"], [["em3d", 1.379]],
                            title="T")
        assert "em3d" in text
        assert "1.379" in text
        assert text.splitlines()[0] == "T"

    def test_render_series(self):
        text = render_series("F", "delay", {"app": [(5, 1.0), (50, 1.02)]})
        assert "app" in text
        assert "1.0200" in text

    def test_paper_vs_measured_deltas(self):
        text = paper_vs_measured([("speedup", 1.21, 1.25)], "headline")
        assert "+0.040" in text


class TestAnalyticalModel:
    def test_speedup_bound(self):
        assert speedup_bound(0.5) == pytest.approx(2.0)
        assert speedup_bound(0.0) == pytest.approx(1.0)

    def test_bound_rejects_bad_accuracy(self):
        with pytest.raises(ConfigError):
            speedup_bound(1.0)
        with pytest.raises(ConfigError):
            speedup_bound(-0.1)

    def test_predicted_speedup_below_bound(self):
        model = LatencyModel(compute_per_miss=500, remote_latency=400)
        for accuracy in (0.2, 0.5, 0.9):
            assert (model.predicted_speedup(accuracy)
                    < speedup_bound(accuracy))

    def test_speedup_grows_with_latency(self):
        """The paper's Figure 10 trend: more latency, more benefit."""
        model = LatencyModel(compute_per_miss=500, remote_latency=100)
        series = model.speedup_vs_latency(0.6, [100, 200, 400, 800])
        speedups = [s for _lat, s in series]
        assert speedups == sorted(speedups)

    def test_converges_to_bound(self):
        model = LatencyModel(compute_per_miss=500, remote_latency=1)
        series = model.speedup_vs_latency(0.5, [10 ** 7])
        assert series[0][1] == pytest.approx(speedup_bound(0.5), rel=0.01)

    def test_zero_accuracy_no_speedup(self):
        model = LatencyModel(compute_per_miss=500, remote_latency=400)
        assert model.predicted_speedup(0.0) == pytest.approx(1.0)

    @given(st.floats(0.0, 0.99), st.floats(1.0, 10000.0))
    @settings(max_examples=50, deadline=None)
    def test_predicted_speedup_at_least_one(self, accuracy, latency):
        model = LatencyModel(compute_per_miss=100, remote_latency=latency,
                             local_latency=0.0)
        sp = model.predicted_speedup(accuracy)
        assert sp >= 1.0 - 1e-9
        assert sp <= speedup_bound(min(accuracy, 0.989)) + 1e-6 or \
            math.isclose(sp, speedup_bound(accuracy), rel_tol=1e-6)
