"""Private L1/L2 hierarchy: hits, misses, fills, coherence actions."""

import pytest

from repro.cache import LineState, PrivateCacheHierarchy
from repro.common import SystemConfig
from repro.common.errors import ProtocolError


@pytest.fixture
def hier():
    return PrivateCacheHierarchy(SystemConfig())


class TestReads:
    def test_cold_read_misses(self, hier):
        assert not hier.read(0).hit

    def test_read_after_fill_hits(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        result = hier.read(0)
        assert result.hit
        assert result.value == 7

    def test_l1_hit_latency(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        assert hier.read(0).latency == SystemConfig().l1.latency

    def test_l2_hit_after_l1_eviction(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        hier.l1.invalidate(0)
        result = hier.read(0)
        assert result.hit
        assert result.latency == SystemConfig().l2.latency
        # L1 refilled from L2.
        assert hier.l1.probe(0) is not None


class TestWrites:
    def test_write_to_shared_misses(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        assert not hier.write(0, 9).hit

    def test_write_to_exclusive_hits_and_dirties(self, hier):
        hier.fill(0, LineState.EXCLUSIVE, 7)
        result = hier.write(0, 9)
        assert result.hit
        assert hier.state_of(0) is LineState.MODIFIED
        assert hier.value_of(0) == 9

    def test_write_to_modified_hits(self, hier):
        hier.fill(0, LineState.MODIFIED, 7)
        assert hier.write(0, 9).hit

    def test_cold_write_misses(self, hier):
        assert not hier.write(0, 9).hit


class TestCoherenceActions:
    def test_downgrade_keeps_shared_copy(self, hier):
        hier.fill(0, LineState.MODIFIED, 7)
        hier.write(0, 9)
        value = hier.downgrade(0)
        assert value == 9
        assert hier.state_of(0) is LineState.SHARED
        assert hier.read(0).hit

    def test_downgrade_nonresident_raises(self, hier):
        with pytest.raises(ProtocolError):
            hier.downgrade(0)

    def test_invalidate_removes_both_levels(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        had, _value = hier.invalidate(0)
        assert had
        assert hier.state_of(0) is LineState.INVALID
        assert hier.l1.probe(0) is None

    def test_invalidate_missing(self, hier):
        had, _ = hier.invalidate(0)
        assert not had

    def test_grant_exclusive_upgrades_shared(self, hier):
        hier.fill(0, LineState.SHARED, 7)
        hier.grant_exclusive(0)
        assert hier.state_of(0) is LineState.EXCLUSIVE
        assert hier.write(0, 8).hit

    def test_grant_exclusive_nonresident_raises(self, hier):
        with pytest.raises(ProtocolError):
            hier.grant_exclusive(0)

    def test_fill_invalid_state_rejected(self, hier):
        with pytest.raises(ProtocolError):
            hier.fill(0, LineState.INVALID, 0)

    def test_evict_returns_notice(self, hier):
        hier.fill(0, LineState.MODIFIED, 7)
        notice = hier.evict(0)
        assert notice.addr == 0
        assert notice.state is LineState.MODIFIED
        assert hier.state_of(0) is LineState.INVALID

    def test_evict_missing_returns_none(self, hier):
        assert hier.evict(0) is None


class TestInclusion:
    def test_l2_eviction_purges_l1(self):
        # Tiny L2 (2 lines, direct-ish) to force an eviction.
        cfg = SystemConfig()
        from dataclasses import replace
        from repro.common import CacheConfig
        tiny = replace(cfg, l2=CacheConfig(256, 2, latency=10))
        hier = PrivateCacheHierarchy(tiny)
        hier.fill(0, LineState.SHARED, 1)
        hier.fill(128, LineState.SHARED, 2)
        notice = hier.fill(256, LineState.SHARED, 3)
        assert notice is not None
        assert hier.l1.probe(notice.addr) is None
        assert hier.l2.probe(notice.addr) is None

    def test_clean_shared_victim_reported(self):
        from dataclasses import replace
        from repro.common import CacheConfig
        cfg = replace(SystemConfig(), l2=CacheConfig(256, 2, latency=10))
        hier = PrivateCacheHierarchy(cfg)
        hier.fill(0, LineState.SHARED, 1)
        hier.fill(128, LineState.SHARED, 2)
        notice = hier.fill(256, LineState.SHARED, 3)
        assert notice.state is LineState.SHARED
