"""Configuration layer: Table 1 defaults, presets, validation."""

import pytest

from repro.common import (
    EVALUATED_SYSTEMS,
    CacheConfig,
    ConfigError,
    DelegateCacheConfig,
    NetworkConfig,
    ProtocolConfig,
    SystemConfig,
    baseline,
    delegation_only,
    enhanced,
    large,
    rac_only,
    small,
)

KB = 1024
MB = 1024 * 1024


class TestTable1Defaults:
    """The defaults must match the paper's Table 1."""

    def test_sixteen_nodes(self):
        assert SystemConfig().num_nodes == 16

    def test_l1_32kb_2way(self):
        cfg = SystemConfig()
        assert cfg.l1.size_bytes == 32 * KB
        assert cfg.l1.assoc == 2

    def test_l2_2mb_4way_128b_lines(self):
        cfg = SystemConfig()
        assert cfg.l2.size_bytes == 2 * MB
        assert cfg.l2.assoc == 4
        assert cfg.l2.line_size == 128
        assert cfg.l2.latency == 10

    def test_dram_200_cycles(self):
        assert SystemConfig().dram_latency == 200

    def test_hop_latency_100_cycles(self):
        assert SystemConfig().network.hop_latency == 100

    def test_directory_cache_8k_entries(self):
        assert SystemConfig().directory_cache_entries == 8192

    def test_intervention_delay_50_cycles(self):
        assert SystemConfig().protocol.intervention_delay == 50

    def test_router_radix_8(self):
        assert SystemConfig().network.router_radix == 8

    def test_min_packet_32_bytes(self):
        assert SystemConfig().network.header_bytes == 32


class TestPresets:
    def test_baseline_has_no_mechanisms(self):
        cfg = baseline()
        assert not cfg.protocol.enable_rac
        assert not cfg.protocol.enable_delegation
        assert not cfg.protocol.enable_updates

    def test_rac_only(self):
        cfg = rac_only()
        assert cfg.protocol.enable_rac
        assert not cfg.protocol.enable_delegation
        assert cfg.rac.size_bytes == 32 * KB

    def test_small_is_32_entry_32k(self):
        cfg = small()
        assert cfg.delegate.entries == 32
        assert cfg.rac.size_bytes == 32 * KB
        assert cfg.protocol.enable_updates

    def test_large_is_1k_entry_1m(self):
        cfg = large()
        assert cfg.delegate.entries == 1024
        assert cfg.rac.size_bytes == 1 * MB

    def test_delegation_only_disables_updates(self):
        cfg = delegation_only()
        assert cfg.protocol.enable_delegation
        assert not cfg.protocol.enable_updates

    def test_six_evaluated_systems(self):
        assert len(EVALUATED_SYSTEMS) == 6
        assert list(EVALUATED_SYSTEMS)[0] == "base"

    def test_evaluated_systems_instantiable(self):
        for name, factory in EVALUATED_SYSTEMS.items():
            cfg = factory()
            assert isinstance(cfg, SystemConfig), name

    def test_enhanced_custom_sizes(self):
        cfg = enhanced(delegate_entries=128, rac_bytes=256 * KB)
        assert cfg.delegate.entries == 128
        assert cfg.rac.size_bytes == 256 * KB


class TestValidation:
    def test_updates_require_delegation(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(enable_updates=True, enable_delegation=False)

    def test_delegation_requires_rac(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(enable_delegation=True, enable_rac=False)

    def test_negative_intervention_delay(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(intervention_delay=-1)

    def test_cache_size_must_fill_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, assoc=4)

    def test_non_power_of_two_cache_size_allowed(self):
        cfg = CacheConfig(size_bytes=1090560, assoc=4)  # Figure 8's 1.04 MB
        assert cfg.num_lines == 1090560 // 128

    def test_line_size_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, assoc=1, line_size=96)

    def test_zero_assoc_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, assoc=0)

    def test_bad_replacement_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, assoc=2, replacement="fifo")

    def test_too_many_nodes_rejected(self):
        # The node cap is MAX_NODES now, not the paper's 16 (the last-writer
        # field widens with the machine; see last_writer_bits).
        from repro.common.params import MAX_NODES

        with pytest.raises(ConfigError):
            SystemConfig(num_nodes=MAX_NODES + 1)

    def test_large_machines_accepted(self):
        for nodes in (17, 512, 1024):
            assert SystemConfig(num_nodes=nodes).num_nodes == nodes

    def test_last_writer_bits_derived(self):
        # Paper §2.2: 4 bits at 16 nodes; wider machines grow the field.
        assert SystemConfig(num_nodes=16).last_writer_bits == 4
        assert SystemConfig(num_nodes=4).last_writer_bits == 4
        assert SystemConfig(num_nodes=17).last_writer_bits == 5
        assert SystemConfig(num_nodes=512).last_writer_bits == 9
        assert SystemConfig(num_nodes=1024).last_writer_bits == 10

    def test_bad_directory_format_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            SystemConfig(directory_format="coarse:x")
        with pytest.raises(ConfigError):
            SystemConfig(directory_format="bogus")

    def test_delegate_entries_power_of_two(self):
        with pytest.raises(ConfigError):
            DelegateCacheConfig(entries=33)

    def test_network_bad_fraction(self):
        with pytest.raises(ConfigError):
            NetworkConfig(intra_leaf_fraction=0.0)

    def test_mismatched_line_size_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(l1=CacheConfig(32 * KB, 2, line_size=64))


class TestDerived:
    def test_write_repeat_threshold_2bit(self):
        assert ProtocolConfig().write_repeat_threshold == 3

    def test_line_of_alignment(self):
        cfg = SystemConfig()
        assert cfg.line_of(0) == 0
        assert cfg.line_of(127) == 0
        assert cfg.line_of(128) == 128
        assert cfg.line_of(1000) == 896

    def test_with_protocol_override(self):
        cfg = small().with_protocol(intervention_delay=500)
        assert cfg.protocol.intervention_delay == 500
        assert cfg.protocol.enable_updates  # other fields preserved

    def test_cache_geometry(self):
        cfg = CacheConfig(size_bytes=32 * KB, assoc=4, line_size=128)
        assert cfg.num_lines == 256
        assert cfg.num_sets == 64
