"""Directory layer: entries, home memory, directory cache, placement."""

import pytest

from repro.common import ConfigError
from repro.directory import (
    PAGE_SIZE,
    AddressMap,
    DirectoryCache,
    DirectoryEntry,
    DirState,
    HomeMemory,
)


class TestDirectoryEntry:
    def test_default_unowned(self):
        entry = DirectoryEntry(addr=0)
        assert entry.state is DirState.UNOWNED
        assert entry.sharers == set()
        assert entry.owner is None

    def test_snapshot_is_independent_copy(self):
        entry = DirectoryEntry(addr=0, state=DirState.SHARED,
                               sharers={1, 2}, value=7)
        snap = entry.snapshot()
        entry.sharers.add(3)
        assert snap["sharers"] == {1, 2}

    def test_restore_round_trip(self):
        entry = DirectoryEntry(addr=0, state=DirState.EXCL, owner=3,
                               sharers={1}, value=9)
        snap = entry.snapshot()
        other = DirectoryEntry(addr=0)
        other.restore(snap)
        assert other.state is DirState.EXCL
        assert other.owner == 3
        assert other.sharers == {1}
        assert other.value == 9

    def test_restore_clears_busy_and_delegate(self):
        entry = DirectoryEntry(addr=0, delegate=5, busy=object())
        entry.restore({"state": DirState.UNOWNED, "sharers": set(),
                       "owner": None, "value": 0})
        assert entry.delegate is None
        assert entry.busy is None


class TestHomeMemory:
    def test_entry_created_on_demand(self):
        memory = HomeMemory(0)
        entry = memory.entry(0x1000)
        assert entry.addr == 0x1000
        assert len(memory) == 1

    def test_entry_is_stable(self):
        memory = HomeMemory(0)
        assert memory.entry(0) is memory.entry(0)


class TestDirectoryCache:
    def make(self, capacity=4):
        return DirectoryCache(capacity, record_factory=lambda addr: [addr])

    def test_lookup_creates(self):
        cache = self.make()
        record = cache.lookup(0x80)
        assert record == [0x80]
        assert 0x80 in cache

    def test_lookup_no_create(self):
        cache = self.make()
        assert cache.lookup(0x80, create=False) is None
        assert 0x80 not in cache

    def test_lru_eviction_loses_record(self):
        cache = self.make(capacity=2)
        first = cache.lookup(0)
        cache.lookup(128)
        cache.lookup(256)  # evicts 0
        assert 0 not in cache
        assert cache.evictions == 1
        # Re-lookup creates a *fresh* record (detector bits were lost).
        assert cache.lookup(0) is not first

    def test_lookup_refreshes_lru(self):
        cache = self.make(capacity=2)
        cache.lookup(0)
        cache.lookup(128)
        cache.lookup(0)      # refresh
        cache.lookup(256)    # should evict 128, not 0
        assert 0 in cache
        assert 128 not in cache

    def test_drop(self):
        cache = self.make()
        cache.lookup(0)
        assert cache.drop(0) is not None
        assert 0 not in cache

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryCache(0, record_factory=list)


class TestAddressMap:
    def test_default_round_robin_by_page(self):
        amap = AddressMap(4)
        assert amap.home_of(0) == 0
        assert amap.home_of(PAGE_SIZE) == 1
        assert amap.home_of(4 * PAGE_SIZE) == 0

    def test_placed_page_wins(self):
        amap = AddressMap(4)
        amap.place_page(0, 3)
        assert amap.home_of(0) == 3
        assert amap.home_of(PAGE_SIZE - 1) == 3

    def test_place_range_covers_pages(self):
        amap = AddressMap(4)
        amap.place_range(0, 2 * PAGE_SIZE + 1, 2)
        assert amap.home_of(0) == 2
        assert amap.home_of(PAGE_SIZE) == 2
        assert amap.home_of(2 * PAGE_SIZE) == 2
        assert amap.home_of(3 * PAGE_SIZE) == 3  # untouched

    def test_bad_home_rejected(self):
        amap = AddressMap(4)
        with pytest.raises(ConfigError):
            amap.place_page(0, 4)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap(4, page_size=1000)
