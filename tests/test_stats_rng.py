"""Stats counters and seeded RNG streams."""

from repro.common import Stats
from repro.common.rng import derive_seed, stream
from repro.common.stats import remote_misses, total_messages


class TestStats:
    def test_counters_start_at_zero(self):
        assert Stats().get("anything") == 0

    def test_inc_and_get(self):
        s = Stats()
        s.inc("x")
        s.inc("x", 4)
        assert s.get("x") == 5

    def test_prefixed(self):
        s = Stats()
        s.inc("msg.sent.GETS", 2)
        s.inc("msg.sent.INV", 3)
        s.inc("miss.local")
        assert s.prefixed("msg.sent.") == {"msg.sent.GETS": 2,
                                           "msg.sent.INV": 3}

    def test_total(self):
        s = Stats()
        s.inc("msg.sent.GETS", 2)
        s.inc("msg.sent.INV", 3)
        assert s.total("msg.sent.") == 5

    def test_merge(self):
        a, b = Stats(), Stats()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_as_dict_sorted(self):
        s = Stats()
        s.inc("b")
        s.inc("a")
        assert list(s.as_dict()) == ["a", "b"]

    def test_remote_misses_helper(self):
        s = Stats()
        s.inc("miss.remote_2hop", 3)
        s.inc("miss.remote_3hop", 4)
        assert remote_misses(s) == 7

    def test_total_messages_helper(self):
        s = Stats()
        s.inc("msg.sent.GETS", 2)
        s.inc("msg.sent.UPDATE", 5)
        assert total_messages(s) == 7


class TestRng:
    def test_same_name_same_stream(self):
        assert stream(1, "a").random() == stream(1, "a").random()

    def test_different_names_differ(self):
        assert stream(1, "a").random() != stream(1, "b").random()

    def test_different_seeds_differ(self):
        assert stream(1, "a").random() != stream(2, "a").random()

    def test_derive_seed_is_32bit(self):
        for seed in (0, 1, 123456789):
            assert 0 <= derive_seed(seed, "stream") < 2 ** 32

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")
