"""The explicit-state model-checking engine, on toy models."""

import pytest

from repro.common.errors import DeadlockError, InvariantViolation
from repro.mc import ModelChecker, StateSpaceExceeded


def counter_rules(limit):
    """A toy model: an integer that can be incremented up to ``limit``."""
    def increment(state):
        if state < limit:
            yield ("inc", state + 1)
    return [increment]


class TestExploration:
    def test_explores_reachable_states(self):
        mc = ModelChecker([0], counter_rules(5), [], quiescent=lambda s: True)
        res = mc.run()
        assert res.states_explored == 6
        assert res.transitions == 5
        assert res.max_depth == 5

    def test_multiple_initial_states(self):
        mc = ModelChecker([0, 3], counter_rules(5), [])
        res = mc.run()
        assert res.states_explored == 6

    def test_cycles_terminate(self):
        def spin(state):
            yield ("spin", (state + 1) % 4)
        mc = ModelChecker([0], [spin], [])
        res = mc.run()
        assert res.states_explored == 4

    def test_rule_counts(self):
        mc = ModelChecker([0], counter_rules(3), [])
        res = mc.run()
        assert res.rule_counts == {"inc": 3}

    def test_state_cap_enforced(self):
        mc = ModelChecker([0], counter_rules(100), [], max_states=10)
        with pytest.raises(StateSpaceExceeded):
            mc.run()


class TestInvariants:
    def test_violation_raised_with_trace(self):
        def below_four(state):
            return state < 4
        mc = ModelChecker([0], counter_rules(10), [below_four])
        with pytest.raises(InvariantViolation) as err:
            mc.run()
        assert err.value.state == 4
        assert err.value.trace == ["inc"] * 4
        assert err.value.invariant_name == "below_four"

    def test_initial_state_checked(self):
        mc = ModelChecker([9], counter_rules(10), [lambda s: s < 5])
        with pytest.raises(InvariantViolation) as err:
            mc.run()
        assert err.value.trace == []

    def test_no_traces_mode_still_detects(self):
        mc = ModelChecker([0], counter_rules(10), [lambda s: s < 4],
                          track_traces=False)
        with pytest.raises(InvariantViolation) as err:
            mc.run()
        assert err.value.trace == []  # traces unavailable but detected


class TestDeadlock:
    def test_dead_end_reported(self):
        mc = ModelChecker([0], counter_rules(3), [],
                          quiescent=lambda s: False)
        with pytest.raises(DeadlockError) as err:
            mc.run()
        assert err.value.state == 3

    def test_quiescent_dead_end_ok(self):
        mc = ModelChecker([0], counter_rules(3), [],
                          quiescent=lambda s: s == 3)
        res = mc.run()
        assert res.states_explored == 4


class TestCanonicalization:
    def test_symmetry_collapses_states(self):
        """States (a, b) equivalent up to swapping explore once per class."""
        def rules(state):
            a, b = state
            if a < 2:
                yield ("a", (a + 1, b))
            if b < 2:
                yield ("b", (a, b + 1))

        plain = ModelChecker([(0, 0)], [rules], []).run()
        canon = ModelChecker([(0, 0)], [rules], [],
                             canonicalize=lambda s: tuple(sorted(s))).run()
        assert canon.states_explored < plain.states_explored

    def test_invariants_see_real_states(self):
        """Canonicalisation must not hide violations in real states."""
        seen = []

        def rules(state):
            if state < 3:
                yield ("inc", state + 1)

        def record(state):
            seen.append(state)
            return True

        ModelChecker([0], [rules], [record],
                     canonicalize=lambda s: 0).run()
        assert seen == [0]  # every successor collapses to class 0
