"""Migratory sharing: the pattern the detector must refuse (refs [10,32])."""

import pytest

from repro.common import ConfigError, baseline, small
from repro.sim import Read, System, Write
from repro.workloads.migratory import MigratoryWorkload, migratory


class TestGenerator:
    def test_builds(self):
        build = migratory(lines=4, iterations=5, num_cpus=4).build()
        assert len(build.per_cpu_ops) == 4
        assert build.total_ops > 0

    def test_every_line_written_by_every_cpu(self):
        build = migratory(lines=2, iterations=8, num_cpus=4).build()
        writers = {}
        for cpu, ops in enumerate(build.per_cpu_ops):
            for op in ops:
                if isinstance(op, Write):
                    writers.setdefault(op.addr, set()).add(cpu)
        assert all(w == {0, 1, 2, 3} for w in writers.values())

    def test_read_precedes_write(self):
        """Migratory access is read-modify-write."""
        build = migratory(lines=1, iterations=4, num_cpus=4).build()
        for ops in build.per_cpu_ops:
            mem = [op for op in ops if isinstance(op, (Read, Write))]
            for read, write in zip(mem[::2], mem[1::2]):
                assert isinstance(read, Read)
                assert isinstance(write, Write)
                assert read.addr == write.addr

    def test_needs_two_cpus(self):
        with pytest.raises(ConfigError):
            migratory(num_cpus=1)

    def test_deterministic(self):
        a = migratory(num_cpus=4, seed=5).build()
        b = migratory(num_cpus=4, seed=5).build()
        assert a.per_cpu_ops == b.per_cpu_ops


class TestDetectorRefusesMigratory:
    def run(self, config):
        build = migratory(lines=6, iterations=8, num_cpus=4).build()
        system = System(config)
        return system.run(build.per_cpu_ops, placements=build.placements)

    def test_no_lines_marked_producer_consumer(self):
        result = self.run(small(num_nodes=4))
        assert result.stats.get("detector.marked", 0) == 0

    def test_no_delegations_no_updates(self):
        result = self.run(small(num_nodes=4))
        assert result.stats.get("dele.delegate", 0) == 0
        assert result.stats.get("update.sent", 0) == 0

    def test_mechanisms_do_not_hurt_migratory_apps(self):
        """With nothing detected, the enhanced system must track the
        baseline closely — no delegation ping-pong tax."""
        base = self.run(baseline(num_nodes=4))
        enh = self.run(small(num_nodes=4))
        assert abs(enh.cycles - base.cycles) / base.cycles < 0.02

    def test_runs_coherently(self):
        result = self.run(small(num_nodes=4))  # online checker active
        assert result.cycles > 0
