"""Sharing-vector formats: full, coarse and limited-pointer directories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigError, baseline, small
from repro.directory.formats import DirectoryFormat
from repro.sim import Barrier, Compute, Read, System, Write

LINE = 0x100000


class TestParsing:
    def test_full(self):
        fmt = DirectoryFormat.parse("full")
        assert fmt.kind == "full"

    def test_coarse(self):
        fmt = DirectoryFormat.parse("coarse:4")
        assert (fmt.kind, fmt.param) == ("coarse", 4)

    def test_limited(self):
        fmt = DirectoryFormat.parse("limited:2")
        assert (fmt.kind, fmt.param) == ("limited", 2)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryFormat.parse("sparse:3")

    def test_missing_param_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryFormat.parse("coarse")

    def test_tiny_params_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryFormat("coarse", 1)
        with pytest.raises(ConfigError):
            DirectoryFormat("limited", 0)

    @pytest.mark.parametrize("spec", [
        "coarse:x",        # non-integer parameter (was a bare ValueError)
        "limited:2.5",     # float parameter
        "coarse:",         # empty parameter
        "limited",         # missing parameter
        "full:4",          # full takes no parameter
        "coarse:-2",       # negative parameter
        "",                # empty spec
        ":4",              # missing kind
    ])
    def test_malformed_specs_raise_config_error(self, spec):
        """Every malformed spec is a ConfigError naming the spec — never a
        bare ValueError out of int()."""
        with pytest.raises(ConfigError):
            DirectoryFormat.parse(spec)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryFormat.parse(4)
        with pytest.raises(ConfigError):
            DirectoryFormat.parse(None)

    def test_error_message_names_the_spec(self):
        with pytest.raises(ConfigError, match="coarse:x"):
            DirectoryFormat.parse("coarse:x")


class TestSemantics:
    def test_full_is_exact(self):
        fmt = DirectoryFormat("full")
        assert fmt.observed_sharers({1, 5}, 16) == {1, 5}

    def test_coarse_covers_groups(self):
        fmt = DirectoryFormat("coarse", 4)
        assert fmt.observed_sharers({1}, 16) == {0, 1, 2, 3}
        assert fmt.observed_sharers({1, 9}, 16) == {0, 1, 2, 3, 8, 9, 10, 11}

    def test_coarse_respects_node_count(self):
        fmt = DirectoryFormat("coarse", 4)
        assert fmt.observed_sharers({1}, 3) == {0, 1, 2}

    def test_limited_exact_until_overflow(self):
        fmt = DirectoryFormat("limited", 2)
        assert fmt.observed_sharers({3, 7}, 16) == {3, 7}

    def test_limited_broadcast_on_overflow(self):
        fmt = DirectoryFormat("limited", 2)
        assert fmt.observed_sharers({3, 7, 9}, 16) == set(range(16))

    def test_empty_set_stays_empty(self):
        for fmt in (DirectoryFormat("full"), DirectoryFormat("coarse", 4),
                    DirectoryFormat("limited", 2)):
            assert fmt.observed_sharers(set(), 16) == set()

    def test_invalidation_targets_exclude_writer(self):
        fmt = DirectoryFormat("coarse", 4)
        targets = fmt.invalidation_targets({1}, exclude=0, num_nodes=16)
        assert 0 not in targets
        assert targets == {1, 2, 3}

    @given(st.sets(st.integers(0, 15), max_size=8),
           st.sampled_from(["full", "coarse:2", "coarse:4", "limited:1",
                            "limited:4"]))
    @settings(max_examples=80, deadline=None)
    def test_always_a_superset(self, sharers, spec):
        """Compression may only over-approximate — never drop a sharer."""
        fmt = DirectoryFormat.parse(spec)
        observed = fmt.observed_sharers(sharers, 16)
        assert sharers.issubset(observed)


class TestStorageCost:
    def test_full_bits(self):
        assert DirectoryFormat("full").bits_per_entry(16) == 16

    def test_coarse_bits(self):
        assert DirectoryFormat("coarse", 4).bits_per_entry(16) == 4

    def test_limited_bits(self):
        # 2 pointers x 4 bits + broadcast bit.
        assert DirectoryFormat("limited", 2).bits_per_entry(16) == 9


class TestProtocolIntegration:
    def run_pc(self, config):
        ops = [[] for _ in range(4)]
        bid = 0
        for _ in range(6):
            ops[1].append(Write(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
            ops[2].append(Compute(200))
            ops[2].append(Read(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
        system = System(config)
        system.address_map.place_range(LINE, 128, 0)
        return system.run(ops)

    def test_coarse_vector_sends_more_invs(self):
        from dataclasses import replace
        exact = self.run_pc(baseline(num_nodes=4))
        coarse = self.run_pc(replace(baseline(num_nodes=4),
                                     directory_format="coarse:2"))
        assert (coarse.stats.get("msg.sent.INV", 0)
                >= exact.stats.get("msg.sent.INV", 0))

    def test_compressed_formats_stay_coherent(self):
        """Online checking passes under every format."""
        from dataclasses import replace
        for spec in ("coarse:2", "limited:1"):
            cfg = replace(small(num_nodes=4), directory_format=spec)
            result = self.run_pc(cfg)
            assert result.cycles > 0

    def test_preserved_consumer_set_stays_exact(self):
        """Regression: the ownerID-trick consumer set keeps the *exact*
        sharers, not the format-expanded invalidation targets.

        With limited:1 three readers overflow the vector to broadcast; the
        buggy code stored that broadcast set back into ``entry.sharers``,
        so it stayed broadcast forever (and every later update/INV round
        fanned out to the whole machine)."""
        from dataclasses import replace
        cfg = replace(baseline(num_nodes=8), directory_format="limited:1")
        ops = [[] for _ in range(8)]
        for reader in (1, 2, 3):
            ops[reader].append(Read(LINE))
        for s in ops:
            s.append(Barrier(0))
        ops[4].append(Write(LINE))
        for s in ops:
            s.append(Barrier(1))
        system = System(cfg)
        system.address_map.place_range(LINE, 128, 0)
        system.run(ops)
        entry = system.hubs[0].home_memory.entry(LINE)
        # Exact previous readers, not broadcast (everyone minus writer).
        assert entry.sharers == {1, 2, 3}

    def test_no_compounding_across_write_rounds(self):
        """A second write round acts on the fresh reader set only: the
        over-approximation from round one must not leak into round two."""
        from dataclasses import replace
        cfg = replace(baseline(num_nodes=8), directory_format="limited:2")
        ops = [[] for _ in range(8)]
        for reader in (1, 2, 3):
            ops[reader].append(Read(LINE))
        for s in ops:
            s.append(Barrier(0))
        ops[4].append(Write(LINE))
        for s in ops:
            s.append(Barrier(1))
        ops[5].append(Read(LINE))  # {4, 5} fits the two pointers exactly
        for s in ops:
            s.append(Barrier(2))
        ops[6].append(Write(LINE))
        for s in ops:
            s.append(Barrier(3))
        system = System(cfg)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(ops)
        entry = system.hubs[0].home_memory.entry(LINE)
        # Exact round-two copy holders: the downgraded round-one writer
        # plus the fresh reader — NOT the broadcast set from round one.
        assert entry.sharers == {4, 5}
        # Round two's invalidation went to the real copy holders, not to
        # all eight nodes again (round one already cost <= 7 broadcast
        # INVs; compounding would have doubled that).
        assert res.stats.get("msg.sent.INV", 0) <= 7 + 2

    def test_update_push_widens_with_format(self):
        """Speculative updates act on the observed vector: compressed
        formats push to more consumers than the exact set."""
        from dataclasses import replace
        full = self.run_pc(small(num_nodes=8))
        coarse = self.run_pc(replace(small(num_nodes=8),
                                     directory_format="coarse:4"))
        assert (coarse.stats.get("update.sent", 0)
                >= full.stats.get("update.sent", 0))
        assert coarse.cycles > 0
