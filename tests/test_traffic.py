"""Traffic decomposition analysis."""

import pytest

from repro.analysis.traffic import (
    CLASSES,
    TRAFFIC_CLASSES,
    breakdown,
    compare_breakdowns,
)
from repro.common import baseline, large
from repro.harness import run_app
from repro.network.message import MsgType


class TestClassification:
    def test_every_message_type_classified(self):
        """A new MsgType without a traffic class must fail loudly."""
        for mtype in MsgType:
            assert mtype.label in CLASSES, mtype

    def test_classes_are_known(self):
        assert set(CLASSES.values()) == set(TRAFFIC_CLASSES)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            breakdown({"msg.sent.MYSTERY": 1})


class TestBreakdown:
    def test_counts_and_bytes(self):
        stats = {"msg.sent.GETS": 10, "msg.sent.DATA_SHARED": 10,
                 "msg.sent.INV": 4, "msg.sent.UPDATE": 2,
                 "other.counter": 99}
        b = breakdown(stats)
        assert b.messages["demand"] == 20
        assert b.messages["coherence"] == 4
        assert b.messages["speculation"] == 2
        assert b.total_messages == 26
        # GETS 32B x10 + DATA 160B x10 = 1920 demand bytes.
        assert b.bytes["demand"] == 1920

    def test_share(self):
        b = breakdown({"msg.sent.GETS": 3, "msg.sent.NACK": 1})
        assert b.share("demand") == pytest.approx(0.75)
        assert b.share("flow_control") == pytest.approx(0.25)

    def test_empty_stats(self):
        b = breakdown({})
        assert b.total_messages == 0
        assert b.share("demand") == 0.0

    def test_compare(self):
        base = breakdown({"msg.sent.GETS": 10})
        enh = breakdown({"msg.sent.GETS": 6, "msg.sent.UPDATE": 3})
        delta = compare_breakdowns(base, enh)
        assert delta["demand"] == -4
        assert delta["speculation"] == 3


class TestOnRealRuns:
    def test_mechanisms_trade_demand_for_speculation(self):
        base = breakdown(run_app("em3d", baseline(), scale=0.4).stats)
        enh = breakdown(run_app("em3d", large(), scale=0.4).stats)
        delta = compare_breakdowns(base, enh)
        assert delta["demand"] < 0          # reads eliminated
        assert delta["speculation"] > 0     # updates added
        assert enh.total_messages < base.total_messages

    def test_baseline_has_no_speculation(self):
        base = breakdown(run_app("ocean", baseline(), scale=0.3).stats)
        assert base.messages["speculation"] == 0
        assert base.messages["delegation"] == 0
