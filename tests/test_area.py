"""The paper's §3.3.1 hardware-area arithmetic."""

import pytest

from repro.analysis.area import (
    AreaBudget,
    area_of,
    consumer_entry_bits,
    equal_area_l2_bytes,
    producer_entry_bits,
)
from repro.common import baseline, large, rac_only, small


class TestEntrySizes:
    def test_producer_entry_is_10_bytes(self):
        assert producer_entry_bits() == 80  # Figure 3: 10 bytes

    def test_consumer_entry_is_6_bytes(self):
        assert consumer_entry_bits() == 48  # Figure 3: 6 bytes


class TestPaperNumbers:
    def test_32_entry_producer_table_is_320_bytes(self):
        budget = area_of(small())
        assert budget.producer_table_bytes == 320  # the paper's number

    def test_detector_extension_is_8kb(self):
        """8 bits x 8192 directory-cache entries = 8 KB (paper §3.3.1)."""
        budget = area_of(small())
        assert budget.detector_bytes == 8 * 1024

    def test_small_config_is_roughly_40kb(self):
        """'roughly 40KB of SRAM per node' for 32 entries + 32 KB RAC."""
        budget = area_of(small())
        assert 40 <= budget.total_kb <= 42

    def test_large_config_dominated_by_rac(self):
        budget = area_of(large())
        assert budget.rac_bytes == 1024 * 1024
        assert budget.rac_bytes > 0.9 * budget.total_bytes


class TestDisabledMechanisms:
    def test_baseline_has_zero_area(self):
        assert area_of(baseline()).total_bytes == 0

    def test_rac_only_counts_just_the_rac(self):
        budget = area_of(rac_only())
        assert budget.rac_bytes == 32 * 1024
        assert budget.delegate_cache_bytes == 0
        assert budget.detector_bytes == 0


class TestEqualArea:
    def test_figure8_l2_size(self):
        """1 MB + ~40 KB of extensions ~= the paper's '1.04MB' L2."""
        size = equal_area_l2_bytes(1024 * 1024, small())
        assert 1.03 * 1024 * 1024 < size < 1.05 * 1024 * 1024
        assert size % (128 * 4) == 0  # whole sets

    def test_budget_properties(self):
        budget = AreaBudget(320, 192, 8192, 32768)
        assert budget.delegate_cache_bytes == 512
        assert budget.total_bytes == 512 + 8192 + 32768
        assert budget.total_kb == pytest.approx(40.5)
