"""Property-based tests for the producer-consumer detector (paper §2.2).

Seeded stdlib ``random`` drives thousands of randomized observation
sequences against an independently written reference model of the §2.2
regular expression, plus targeted invariants:

* a writer change always resets ``write_repeat`` and un-marks the line;
* reads alone saturate ``reader_count`` but can never mark a line;
* migratory sharing (alternating writers) is never marked PC, no matter
  how many reads interleave.
"""

import random

import pytest

from repro.common import Stats, baseline
from repro.protocol.detector import (
    DetectorEntry,
    ProducerConsumerDetector,
    consumer_bucket,
)

NODES = range(6)


def make_detector():
    cfg = baseline(num_nodes=8).protocol
    return ProducerConsumerDetector(cfg, Stats()), cfg


class ReferenceModel:
    """The §2.2 pattern ``...(Wi)(R∀j≠i)+(Wi)...`` restated from the paper,
    not from the implementation: a repeat write by the same node after at
    least one foreign read advances the saturating counter; any other
    writer restarts detection."""

    def __init__(self, reader_bits, repeat_threshold):
        self.reader_max = (1 << reader_bits) - 1
        self.repeat_max = repeat_threshold
        self.last_writer = -1
        self.readers = 0
        self.repeat = 0
        self.marked = False

    def read(self, reader, already_sharer):
        if reader == self.last_writer or already_sharer:
            return
        self.readers = min(self.readers + 1, self.reader_max)

    def write(self, writer):
        newly = False
        if writer == self.last_writer:
            if self.readers >= 1:
                self.repeat = min(self.repeat + 1, self.repeat_max)
                if self.repeat >= self.repeat_max and not self.marked:
                    self.marked = True
                    newly = True
        else:
            self.repeat = 0
            self.marked = False
        self.last_writer = writer
        self.readers = 0
        return newly


def assert_same(entry, model):
    assert entry.last_writer == model.last_writer
    assert entry.reader_count == model.readers
    assert entry.write_repeat == model.repeat
    assert entry.marked_pc == model.marked


@pytest.mark.parametrize("seed", range(8))
def test_matches_reference_model(seed):
    rng = random.Random(seed)
    det, cfg = make_detector()
    entry = det.new_entry(0)
    model = ReferenceModel(cfg.reader_count_bits, cfg.write_repeat_threshold)
    for _ in range(2000):
        node = rng.choice(NODES)
        if rng.random() < 0.5:
            sharer = rng.random() < 0.3
            det.observe_read(entry, node, already_sharer=sharer)
            model.read(node, sharer)
        else:
            got = det.observe_write(entry, node,
                                    distinct_readers=rng.randrange(6))
            assert got == model.write(node)
        assert_same(entry, model)


@pytest.mark.parametrize("seed", range(4))
def test_writer_change_resets_pattern(seed):
    """Whatever the prior state, a write from a different node leaves the
    entry unmarked with a zeroed repeat counter."""
    rng = random.Random(100 + seed)
    det, _cfg = make_detector()
    entry = det.new_entry(0)
    for _ in range(1000):
        node = rng.choice(NODES)
        if rng.random() < 0.5:
            det.observe_read(entry, node, already_sharer=False)
        else:
            prior_writer = entry.last_writer
            det.observe_write(entry, node, distinct_readers=1)
            if node != prior_writer:
                assert entry.write_repeat == 0
                assert not entry.marked_pc
            assert entry.last_writer == node
            assert entry.reader_count == 0


@pytest.mark.parametrize("seed", range(4))
def test_migratory_lines_never_marked(seed):
    """Alternating writers — migratory data — must never be optimised,
    however many foreign reads saturate the reader counter in between."""
    rng = random.Random(200 + seed)
    det, _cfg = make_detector()
    entry = det.new_entry(0)
    writers = [1, 2]
    for i in range(500):
        for _ in range(rng.randrange(8)):  # 0..7 interleaved reads
            det.observe_read(entry, rng.choice(NODES), already_sharer=False)
        assert not det.observe_write(entry, writers[i % 2],
                                     distinct_readers=rng.randrange(4))
        assert not entry.marked_pc
        assert entry.write_repeat == 0


def test_reads_saturate_but_never_mark():
    det, cfg = make_detector()
    entry = det.new_entry(0)
    det.observe_write(entry, 1, distinct_readers=0)
    for reader in list(NODES) * 50:
        det.observe_read(entry, reader, already_sharer=False)
    assert entry.reader_count == (1 << cfg.reader_count_bits) - 1
    assert not entry.marked_pc
    assert entry.write_repeat == 0


def test_repeat_write_without_reads_is_neutral():
    """Same writer, no intervening foreign read: the §2.2 expression does
    not advance, but it does not reset either."""
    det, cfg = make_detector()
    entry = det.new_entry(0)
    det.observe_write(entry, 1, distinct_readers=0)
    det.observe_read(entry, 2, already_sharer=False)
    det.observe_write(entry, 1, distinct_readers=1)
    assert entry.write_repeat == 1
    det.observe_write(entry, 1, distinct_readers=0)  # burst write, no reads
    assert entry.write_repeat == 1  # unchanged, not reset
    assert not entry.marked_pc


def test_pc_marking_after_threshold_repeats():
    det, cfg = make_detector()
    entry = det.new_entry(0)
    det.observe_write(entry, 1, distinct_readers=0)
    newly = False
    for _ in range(cfg.write_repeat_threshold):
        det.observe_read(entry, 2, already_sharer=False)
        newly = det.observe_write(entry, 1, distinct_readers=1)
    assert entry.marked_pc
    assert newly  # the saturating write reports the mark exactly once
    det.observe_read(entry, 2, already_sharer=False)
    assert not det.observe_write(entry, 1, distinct_readers=1)  # only once


def test_none_entry_is_ignored():
    det, _cfg = make_detector()
    det.observe_read(None, 1, already_sharer=False)
    assert det.observe_write(None, 1, distinct_readers=0) is False


def test_consumer_bucket_labels():
    assert [consumer_bucket(n) for n in (1, 2, 3, 4, 5, 9)] == \
        ["1", "2", "3", "4", "4+", "4+"]
