"""The online coherence / SC checker itself."""

import pytest

from repro.common import baseline
from repro.common.errors import CoherenceViolation
from repro.sim import System
from repro.sim.coherence_check import CoherenceChecker


@pytest.fixture
def checker(base4):
    return CoherenceChecker(System(base4, check_coherence=False))


class TestReadLegality:
    def test_initial_zero_is_legal(self, checker):
        checker.record_read(0, 0x100, 0, t_start=10, t_complete=20)

    def test_nonzero_from_unwritten_line_illegal(self, checker):
        with pytest.raises(CoherenceViolation):
            checker.record_read(0, 0x100, 5, t_start=10, t_complete=20)

    def test_latest_write_before_start_legal(self, checker):
        checker.record_write(1, 0x100, 7, t_start=0, t_complete=5)
        checker.record_read(0, 0x100, 7, t_start=10, t_complete=20)

    def test_stale_value_illegal(self, checker):
        checker.record_write(1, 0x100, 7, t_start=0, t_complete=5)
        checker.record_write(1, 0x100, 8, t_start=6, t_complete=9)
        with pytest.raises(CoherenceViolation):
            checker.record_read(0, 0x100, 7, t_start=10, t_complete=20)

    def test_overlapping_write_either_value_legal(self, checker):
        checker.record_write(1, 0x100, 7, t_start=0, t_complete=5)
        checker.record_write(1, 0x100, 8, t_start=12, t_complete=15)
        # Read window [10, 20] overlaps write completing at 15.
        checker.record_read(0, 0x100, 7, t_start=10, t_complete=20)
        checker.record_read(0, 0x100, 8, t_start=10, t_complete=20)

    def test_future_write_value_illegal(self, checker):
        checker.record_write(1, 0x100, 7, t_start=0, t_complete=5)
        checker.record_write(1, 0x100, 8, t_start=30, t_complete=35)
        with pytest.raises(CoherenceViolation):
            checker.record_read(0, 0x100, 8, t_start=10, t_complete=20)

    def test_lines_are_independent(self, checker):
        checker.record_write(1, 0x100, 7, t_start=0, t_complete=5)
        checker.record_read(0, 0x200, 0, t_start=10, t_complete=20)

    def test_counters(self, checker):
        checker.record_write(1, 0x100, 7, 0, 5)
        checker.record_read(0, 0x100, 7, 10, 20)
        assert checker.writes_checked == 1
        assert checker.reads_checked == 1

    def test_version_numbers_unique(self, checker):
        versions = {checker.next_version() for _ in range(100)}
        assert len(versions) == 100


class TestSingleWriterInvariant:
    def test_concurrent_writable_copies_detected(self, base4):
        """Hand-corrupt a second hub's cache to trip the invariant."""
        from repro.cache import LineState
        system = System(base4, check_coherence=True)
        system.hubs[2].hierarchy.fill(0x100000, LineState.MODIFIED, 1)
        with pytest.raises(CoherenceViolation):
            system.checker.record_write(1, 0x100000, 5, 0, 10)

    def test_single_writer_ok(self, base4):
        system = System(base4, check_coherence=True)
        system.checker.record_write(1, 0x100000, 5, 0, 10)  # no copies


class TestEndToEnd:
    def test_full_runs_pass_under_checking(self, base4):
        """Integration sanity: a mixed workload runs with checking on."""
        from repro.sim import Barrier, Compute, Read, Write
        LINE = 0x100000
        ops = []
        for cpu in range(4):
            stream = []
            for it in range(8):
                if cpu == it % 4:
                    stream.append(Write(LINE))
                stream.append(Barrier(2 * it))
                stream.append(Compute(50))
                stream.append(Read(LINE))
                stream.append(Barrier(2 * it + 1))
            ops.append(stream)
        res = System(base4).run(ops, placements=[(LINE, 128, 1)])
        assert res.cycles > 0
