"""Determinism guarantees of the sim-core hot-path rewrite.

The pooled/slotted message, pre-bound dispatch and batched event queue
must be *invisible*: a fixed seed produces the same stats dict, the same
trace bytes, the same ``Msg#`` numbering and the same fuzz digests as the
pre-rewrite simulator.  The golden file ``tests/golden/
perf_rewrite_golden.json`` was captured from the tree immediately before
the rewrite; these tests replay against it.
"""

import hashlib
import json
import os
import pytest

from repro.common import EventQueue, params
from repro.fuzz.engine import replay_artifact
from repro.fuzz.runner import run_case
from repro.fuzz.scenarios import FuzzScenario
from repro.harness import run_app
from repro.network.message import (EMPTY_PAYLOAD, Message, MsgType,
                                   reset_msg_ids)
from repro.obs import TraceConfig, Tracer, export_jsonl

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def golden():
    with open(os.path.join(GOLDEN_DIR, "perf_rewrite_golden.json")) as fileobj:
        return json.load(fileobj)


class TestGoldenRuns:
    """Fixed-seed stats dicts and cycle counts match the pre-rewrite tree."""

    def test_fast_golden_run(self, golden):
        rec = golden["runs"][0]
        cfg = params.EVALUATED_SYSTEMS[rec["system"]]()
        run = run_app(rec["app"], cfg, seed=rec["seed"], scale=rec["scale"])
        assert run.metrics.cycles == rec["cycles"]
        assert run.stats == rec["stats"]

    @pytest.mark.slow
    @pytest.mark.parametrize("index", [1, 2])
    def test_remaining_golden_runs(self, golden, index):
        rec = golden["runs"][index]
        cfg = params.EVALUATED_SYSTEMS[rec["system"]]()
        run = run_app(rec["app"], cfg, seed=rec["seed"], scale=rec["scale"])
        assert run.metrics.cycles == rec["cycles"]
        assert run.stats == rec["stats"]

    def test_trace_jsonl_digest(self, golden, tmp_path):
        rec = golden["trace"]
        cfg = params.EVALUATED_SYSTEMS[rec["system"]]()
        tracer = Tracer(TraceConfig(capture_messages=rec["capture_messages"]))
        run_app(rec["app"], cfg, seed=rec["seed"], scale=rec["scale"],
                trace=tracer)
        path = tmp_path / "trace.jsonl"
        export_jsonl(tracer, str(path))
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        assert digest == rec["jsonl_sha256"]


class TestGoldenFuzz:
    """Fuzz case digests (which embed stats, cycles, event counts and any
    ``Msg#``-bearing failure text) are byte-for-byte stable."""

    def test_case_digests(self, golden):
        for rec in golden["fuzz"]:
            scenario = FuzzScenario.from_seed(rec["seed"], scale=rec["scale"])
            result = run_case(scenario)
            assert result.ok == rec["ok"]
            assert result.digest == rec["digest"], (
                "fuzz seed %d digest drifted" % rec["seed"])

    def test_committed_artifact_replays(self):
        path = os.path.join(GOLDEN_DIR, "fuzz_artifact_seed3.json")
        report = replay_artifact(path)
        assert report.reproduced, (
            "expected %s, got %s" % (report.expected_digest,
                                     report.actual_digest))


class TestMsgIdSequencing:
    """Pooling must not perturb the msg_id sequence or repr text."""

    def test_reset_restarts_at_zero(self):
        reset_msg_ids()
        msg = Message(MsgType.GETS, 0, 1, 0x80)
        assert msg.msg_id == 0
        assert repr(msg) == "Msg#0(GETS 0->1 0x80)"

    def test_pooled_reuse_draws_fresh_ids(self):
        reset_msg_ids()
        first = Message(MsgType.GETS, 0, 1, 0x80)
        first_id = first.msg_id
        first.release()
        second = Message(MsgType.NACK, 1, 0, 0x100)
        # The pool may hand back the same object, but identity is the only
        # thing shared: id and fields are always freshly assigned.
        assert second.msg_id == first_id + 1
        assert second.mtype is MsgType.NACK

    def test_explicit_msg_id_does_not_consume_counter(self):
        reset_msg_ids()
        probe = Message(MsgType.GETS, 0, 0, 0, msg_id=-1)
        assert probe.msg_id == -1
        assert Message(MsgType.GETS, 0, 1, 0).msg_id == 0


class TestPayloadAliasing:
    """Header-only messages share one immutable empty payload; no message
    can observe another's payload mutations."""

    def test_default_payload_is_shared_empty(self):
        a = Message(MsgType.NACK, 0, 1, 0)
        b = Message(MsgType.INV, 1, 0, 0)
        assert a.payload is EMPTY_PAYLOAD
        assert b.payload is EMPTY_PAYLOAD
        assert dict(a.payload) == {}
        assert a.payload.get("requester") is None

    def test_empty_payload_rejects_mutation(self):
        msg = Message(MsgType.NACK, 0, 1, 0)
        with pytest.raises(TypeError):
            msg.payload["x"] = 1

    def test_release_drops_payload(self):
        payload = {"requester": 3}
        msg = Message(MsgType.GETS, 0, 1, 0, payload=payload)
        msg.release()
        fresh = Message(MsgType.GETS, 0, 1, 0)
        assert fresh.payload is EMPTY_PAYLOAD
        assert fresh.payload is not payload

    def test_distinct_payloads_never_alias(self):
        a = Message(MsgType.GETS, 0, 1, 0, payload={"requester": 0})
        b = Message(MsgType.GETS, 2, 1, 0, payload={"requester": 2})
        a.payload["tag"] = "a"
        assert "tag" not in b.payload


class TestBatchedQueueOrdering:
    """schedule_many preserves the same-cycle seq tie-break semantics."""

    def test_batch_matches_serial_order(self):
        serial = EventQueue()
        fired_serial = []
        for tag in ("a", "b", "c"):
            serial.schedule(5, fired_serial.append, tag)
        serial.schedule(0, fired_serial.append, "early")
        serial.run()

        batched = EventQueue()
        fired_batched = []
        batched.schedule_many([
            (5, fired_batched.append, ("a",)),
            (5, fired_batched.append, ("b",)),
            (5, fired_batched.append, ("c",)),
            (0, fired_batched.append, ("early",)),
        ])
        batched.run()
        assert fired_batched == fired_serial == ["early", "a", "b", "c"]

    def test_batch_interleaves_with_singles_by_seq(self):
        ev = EventQueue()
        fired = []
        ev.schedule(3, fired.append, 1)
        ev.schedule_many([(3, fired.append, (2,)), (3, fired.append, (3,))])
        ev.schedule(3, fired.append, 4)
        ev.run()
        assert fired == [1, 2, 3, 4]

    def test_batch_validates_negative_delay(self):
        ev = EventQueue()
        with pytest.raises(ValueError):
            ev.schedule_many([(1, lambda: None, ()), (-1, lambda: None, ())])
        # The valid prefix was accepted; seq stayed consistent.
        ev.schedule(0, lambda: None)
        assert ev.pending == 2

    def test_push_at_matches_schedule_at_ordering(self):
        ev = EventQueue()
        fired = []
        ev.schedule_at(7, fired.append, "checked")
        ev.push_at(7, fired.append, "unchecked")
        ev.run()
        assert fired == ["checked", "unchecked"]
