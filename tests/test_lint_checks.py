"""The check registry, allowlist semantics, and report renderers —
exercised on small synthetic graphs so each rule's trigger condition is
pinned down independently of the real protocol."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.lint import run_lint
from repro.lint.checks import (check_conformance, check_coverage,
                               check_deadlock, check_reachability)
from repro.lint.extract import Emission, FuncInfo, Graph, Item, MsgDecl
from repro.lint.findings import Allowlist, Finding, LintReport, Severity
from repro.lint.report import render_json, render_sarif, render_text


def make_graph(side, messages=(), handlers=None, funcs=None,
               entry_points=()):
    graph = Graph(side)
    for name in messages:
        graph.messages[name] = MsgDecl(name=name, file="f.py", line=1)
    graph.handlers = dict(handlers or {})
    graph.funcs = dict(funcs or {})
    graph.entry_points = list(entry_points)
    return graph


def func(name, emits=(), calls=(), retry_guard=False):
    items = [Item(kind="emit",
                  emission=Emission(mtype=m, dst="", func=name,
                                    file="f.py", line=1))
             for m in emits]
    items += [Item(kind="call", callee=c) for c in calls]
    return FuncInfo(name=name, file="f.py", line=1, items=items,
                    has_retry_guard=retry_guard)


def keys(findings):
    return {f.key for f in findings}


class TestCoverage:
    def test_emitted_but_unhandled(self):
        sim = make_graph("sim", ["GETS", "NACK"],
                         handlers={"GETS": ["h"]},
                         funcs={"h": func("h", emits=["NACK"])})
        mc = make_graph("mc")
        found = keys(check_coverage(sim, mc))
        assert "COV001:sim:NACK" in found

    def test_dead_message(self):
        sim = make_graph("sim", ["GETS"], handlers={"GETS": ["h"]},
                         funcs={"h": func("h")})
        mc = make_graph("mc")
        found = keys(check_coverage(sim, mc))
        assert "COV002:sim:GETS" in found

    def test_member_without_dispatch_entry(self):
        sim = make_graph("sim", ["GETS", "GETX"],
                         handlers={"GETS": ["h"]},
                         funcs={"h": func("h", emits=["GETX"])})
        mc = make_graph("mc")
        found = keys(check_coverage(sim, mc))
        assert "COV003:GETX" in found
        assert "COV003:GETS" not in found


class TestConformance:
    def _pair(self, sim_emits, mc_emits):
        sim = make_graph("sim", ["GETS", "DATA_SHARED", "INV"],
                         handlers={"GETS": ["h"]},
                         funcs={"h": func("h", emits=sim_emits)})
        mc = make_graph("mc", handlers={"GETS": ["_on_gets"]},
                        funcs={"_on_gets": func("_on_gets",
                                                emits=mc_emits)})
        for token in ["GETS"] + list(mc_emits):
            mc.messages[token] = MsgDecl(name=token, file="m.py", line=1)
        return sim, mc

    def test_agreeing_transitions_are_silent(self):
        sim, mc = self._pair(["DATA_SHARED"], ["DATA_S"])
        found = keys(check_conformance(sim, mc))
        assert not any(k.startswith(("CON003", "CON004")) for k in found)

    def test_sim_transition_missing_from_model(self):
        sim, mc = self._pair(["DATA_SHARED"], [])
        assert "CON003:GETS->DATA_SHARED" in keys(
            check_conformance(sim, mc))

    def test_model_transition_missing_from_sim(self):
        sim, mc = self._pair(["DATA_SHARED"], ["DATA_S", "INV"])
        assert "CON004:GETS->INV" in keys(check_conformance(sim, mc))

    def test_unmapped_sim_message(self):
        sim = make_graph("sim", ["PING"])
        found = {f.key: f for f in check_conformance(sim,
                                                     make_graph("mc"))}
        assert found["CON001:PING"].severity is Severity.ERROR

    def test_unmapped_mc_token(self):
        mc = make_graph("mc", ["ZZZ"], handlers={"ZZZ": ["_on_zzz"]})
        assert "CON002:ZZZ" in keys(check_conformance(make_graph("sim"),
                                                      mc))


class TestDeadlock:
    def test_self_loop_flagged(self):
        sim = make_graph("sim", ["GETS"], handlers={"GETS": ["h"]},
                         funcs={"h": func("h", emits=["GETS"])})
        assert "DLK001:cycle:GETS" in keys(check_deadlock(sim))

    def test_cycle_without_nack_flagged(self):
        sim = make_graph(
            "sim", ["INV", "INV_ACK"],
            handlers={"INV": ["a"], "INV_ACK": ["b"]},
            funcs={"a": func("a", emits=["INV_ACK"]),
                   "b": func("b", emits=["INV"])})
        assert "DLK001:cycle:INV>INV_ACK" in keys(check_deadlock(sim))

    def test_cycle_through_nack_exempt(self):
        sim = make_graph(
            "sim", ["GETS", "NACK"],
            handlers={"GETS": ["a"], "NACK": ["b"]},
            funcs={"a": func("a", emits=["NACK"]),
                   "b": func("b", emits=["GETS"], retry_guard=True)})
        assert not any(k.startswith("DLK001")
                       for k in keys(check_deadlock(sim)))

    def test_unbounded_retry_flagged_bounded_not(self):
        sim = make_graph(
            "sim", ["GETS", "GETX", "NACK"],
            handlers={"NACK": ["retry"]},
            funcs={"retry": func("retry", calls=["good", "bad"]),
                   "good": func("good", emits=["GETS"], retry_guard=True),
                   "bad": func("bad", emits=["GETX"])})
        found = keys(check_deadlock(sim))
        assert "DLK002:NACK->GETX@bad" in found
        assert "DLK002:NACK->GETS@good" not in found


class TestReachability:
    def _usage(self, stores, reads):
        from repro.lint.extract import StateUsage
        usage = StateUsage(enum="DirState", file="d.py")
        usage.add_member("X", 1)
        usage.members["X"]["stores"] = [("d.py", 2)] * stores
        usage.members["X"]["reads"] = [("d.py", 3)] * reads
        return {"DirState": usage}

    def test_never_entered_is_an_error(self):
        found = {f.key: f
                 for f in check_reachability(self._usage(0, 2))}
        assert found["RCH001:DirState.X"].severity is Severity.ERROR

    def test_never_examined_is_a_warning(self):
        found = {f.key: f
                 for f in check_reachability(self._usage(2, 0))}
        assert found["RCH002:DirState.X"].severity is Severity.WARNING

    def test_live_member_is_silent(self):
        assert not list(check_reachability(self._usage(1, 1)))


class TestAllowlist:
    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "allow.txt"
        path.write_text("COV001:sim:GETS\n")
        with pytest.raises(ConfigError):
            Allowlist.load(path)

    def test_malformed_key_rejected(self, tmp_path):
        path = tmp_path / "allow.txt"
        path.write_text("justaword  # but why\n")
        with pytest.raises(ConfigError):
            Allowlist.load(path)

    def test_glob_patterns_match_within_one_check(self, tmp_path):
        path = tmp_path / "allow.txt"
        path.write_text("CON003:*->UPDATE  # hoisted into a rule\n")
        allowlist = Allowlist.load(path)
        hit = Finding(check_id="CON003", severity=Severity.WARNING,
                      message="", fingerprint="ACK_X->UPDATE")
        other_check = Finding(check_id="CON004",
                              severity=Severity.WARNING,
                              message="", fingerprint="ACK_X->UPDATE")
        assert allowlist.match(hit)
        assert not allowlist.match(other_check)

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "allow.txt"
        path.write_text("COV001:sim:NOPE  # obsolete\n")
        allowlist = Allowlist.load(path)
        assert [e.key for e in allowlist.stale_entries()] \
            == ["COV001:sim:NOPE"]


class TestReportAndRenderers:
    def _report(self):
        return LintReport(findings=[
            Finding(check_id="COV001", severity=Severity.ERROR,
                    message="boom", fingerprint="sim:X", file="f.py",
                    line=3),
            Finding(check_id="DLK002", severity=Severity.WARNING,
                    message="spin", fingerprint="NACK->X@f"),
        ], root="src/repro")

    def test_exit_code_thresholds(self):
        report = self._report()
        assert report.exit_code(Severity.ERROR) == 1
        report.findings = [f for f in report.findings
                           if f.severity is not Severity.ERROR]
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1

    def test_text_lists_fingerprints_errors_first(self):
        text = render_text(self._report())
        assert text.index("COV001") < text.index("DLK002")
        assert "COV001:sim:X" in text

    def test_json_round_trips(self):
        doc = json.loads(render_json(self._report()))
        assert doc["summary"] == {"errors": 1, "warnings": 1, "notes": 0}
        assert doc["findings"][0]["key"] == "COV001:sim:X"

    def test_sarif_shape(self):
        doc = json.loads(render_sarif(self._report()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        results = run["results"]
        assert len(results) == 2
        assert results[0]["level"] == "error"
        for result in results:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        located = results[0]["locations"][0]["physicalLocation"]
        assert located["artifactLocation"]["uri"] == "src/repro/f.py"


class TestSelfAudit:
    def test_repo_is_clean_under_its_allowlist(self):
        report = run_lint()
        assert report.findings == []
        assert report.stale_allowlist == []
        # The allowlist must actually be in play, not silently missing.
        assert report.allowlist_path is not None
        assert report.allowlisted
