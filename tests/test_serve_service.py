"""JobService semantics: dedupe, budgets, retries, cancellation, events.

Everything here runs with ``workers=0`` (inline thread execution) so the
tier-1 lane stays fast; the process fleet itself is covered by the e2e
and smoke layers.
"""

import asyncio

import pytest

from repro.harness.sweep import SweepError
from repro.serve import workers as workers_mod
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import JobService, ServiceConfig
from repro.serve.workers import WorkerFleet

SIM = {"kind": "sim", "app": "ocean", "system": "base", "nodes": 4,
       "scale": 0.05}
SWEEP = {"kind": "sweep", "apps": ["ocean"],
         "systems": ["base", "rac32k", "dele32_rac32k", "dele1k_rac32k"],
         "nodes": 4, "scale": 0.05}


def make_service(tmp_path, **overrides):
    options = dict(workers=0, cache_dir=str(tmp_path / "cache"),
                   cache_budget=None)
    options.update(overrides)
    return JobService(ServiceConfig(**options))


def run(coro):
    return asyncio.run(coro)


async def finish(service, *jobs):
    await asyncio.gather(*[job.task for job in jobs])


class TestDedupe:
    def test_concurrent_identical_jobs_execute_once(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            first = service.submit(SIM, client="alice")
            second = service.submit(SIM, client="bob")
            await finish(service, first, second)
            return service, first, second

        service, first, second = run(scenario())
        assert first.state == "done" and second.state == "done"
        assert service.metrics.units_executed == 1
        assert service.metrics.units_shared == 1
        shared = [u for job in (first, second) for u in job.units
                  if u.shared]
        assert len(shared) == 1
        key = first.units[0].key
        assert second.units[0].key == key
        assert service.result(key) is not None

    def test_sequential_repeat_hits_cache(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            first = service.submit(SIM)
            await finish(service, first)
            second = service.submit(SIM)
            await finish(service, second)
            return service, second

        service, second = run(scenario())
        assert service.metrics.units_executed == 1
        assert service.metrics.units_cached == 1
        assert second.units[0].cached
        assert service.cache.stats()["hit_rate"] > 0


class FakeFleet(WorkerFleet):
    """Inline fleet with an observable, scriptable execute."""

    def __init__(self, delay=0.02, fail_units=(), crash_first=0):
        super().__init__(workers=0, max_retries=2, retry_base=0.0)
        self.delay = delay
        self.fail_units = set(fail_units)
        self.crash_first = crash_first      # BrokenProcessPool-style crashes
        self.started = []
        self.concurrent = 0
        self.max_concurrent = 0

    async def execute(self, unit):
        from concurrent.futures.process import BrokenProcessPool

        self.started.append(unit.label)
        self.concurrent += 1
        self.max_concurrent = max(self.max_concurrent, self.concurrent)
        try:
            await asyncio.sleep(self.delay)
            if self.crash_first > 0:
                self.crash_first -= 1
                self.crashes += 1
                if self.crash_first == 0:   # crashes then recovers
                    self.retries += 1
                    return {"cycles": 1, "recovered": True}
                raise SweepError(unit.key, unit.job, "pool broken")
            if unit.label in self.fail_units:
                raise SweepError(unit.key, unit.job,
                                 "Traceback: boom in %s" % unit.label)
            return {"cycles": 1, "label": unit.label}
        finally:
            self.concurrent -= 1


class TestBudgetsAndFailures:
    def test_client_budget_caps_concurrency(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, client_budget=2)
            service.fleet = FakeFleet()
            job = service.submit(SWEEP, client="alice")
            await finish(service, job)
            return service, job

        service, job = run(scenario())
        assert job.state == "done"
        assert len(service.fleet.started) == 4
        assert service.fleet.max_concurrent <= 2

    def test_budgets_are_per_client(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, client_budget=1)
            service.fleet = FakeFleet()
            alice = service.submit(SIM, client="alice")
            bob = service.submit({**SIM, "seed": 99}, client="bob")
            await finish(service, alice, bob)
            return service

        service = run(scenario())
        # Distinct keys, distinct clients: both could run at once.
        assert service.fleet.max_concurrent == 2

    def test_failed_unit_fails_job_with_capture(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            service.fleet = FakeFleet(fail_units={"ocean/rac32k"})
            job = service.submit(SWEEP)
            await finish(service, job)
            return service, job

        service, job = run(scenario())
        assert job.state == "failed"
        assert "boom" in job.error
        states = sorted(u.state for u in job.units)
        assert states == ["done", "done", "done", "failed"]
        assert service.metrics.units_failed == 1
        # The siblings still completed and are cached.
        done = [u for u in job.units if u.state == "done"]
        assert all(service.result(u.key) is not None for u in done)


class TestRetries:
    def test_pool_crash_is_retried_with_rebuild(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        calls = {"n": 0}

        def flaky(job, runner):
            calls["n"] += 1
            if calls["n"] < 3:
                raise BrokenProcessPool("worker died")
            return "ok", {"cycles": 5}

        monkeypatch.setattr(workers_mod, "_execute_job", flaky)
        fleet = WorkerFleet(workers=0, max_retries=2, retry_base=0.0)
        unit = FakeUnit()
        payload = run(fleet.execute(unit))
        assert payload == {"cycles": 5}
        assert fleet.crashes == 2
        assert fleet.retries == 2

    def test_crashes_beyond_retry_budget_surface(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        def always_broken(job, runner):
            raise BrokenProcessPool("worker died")

        monkeypatch.setattr(workers_mod, "_execute_job", always_broken)
        fleet = WorkerFleet(workers=0, max_retries=1, retry_base=0.0)
        with pytest.raises(SweepError) as err:
            run(fleet.execute(FakeUnit()))
        assert "gave up" in str(err.value)
        assert fleet.crashes == 2

    def test_deterministic_failure_is_not_retried(self, monkeypatch):
        calls = {"n": 0}

        def failing(job, runner):
            calls["n"] += 1
            return "error", "Traceback: deterministic boom"

        monkeypatch.setattr(workers_mod, "_execute_job", failing)
        fleet = WorkerFleet(workers=0, max_retries=2, retry_base=0.0)
        with pytest.raises(SweepError):
            run(fleet.execute(FakeUnit()))
        assert calls["n"] == 1
        assert fleet.retries == 0


class FakeUnit:
    key = "k"
    label = "fake"
    job = None
    runner = None


class TestCancellation:
    def test_cancel_skips_queued_units(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, client_budget=1)
            service.fleet = FakeFleet(delay=0.05)
            job = service.submit(SWEEP)
            await asyncio.sleep(0.01)       # first unit starts
            service.cancel_job(job.id)
            await finish(service, job)
            return service, job

        service, job = run(scenario())
        assert job.state == "cancelled"
        states = {u.state for u in job.units}
        assert "cancelled" in states
        # Not every unit ran: the budget serialized them and the cancel
        # landed before the queue drained.
        assert len(service.fleet.started) < len(job.units)

    def test_cancel_unknown_job_is_none(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            return service.cancel_job("j999")

        assert run(scenario()) is None

    def test_shared_waiter_survives_owner_cancellation(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path, client_budget=1)
            service.fleet = FakeFleet(delay=0.05)
            owner = service.submit(SIM, client="alice")
            await asyncio.sleep(0.01)
            waiter = service.submit(SIM, client="bob")
            await asyncio.sleep(0.01)
            service.cancel_job(owner.id)
            await finish(service, owner, waiter)
            return waiter

        waiter = run(scenario())
        # The owner's execution completed (running units finish) or the
        # waiter retried and executed itself; either way bob gets a result.
        assert waiter.state == "done"
        assert waiter.units[0].state == "done"


class TestEventsAndMetrics:
    def test_job_lifecycle_publishes_events(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            queue = service.hub.subscribe("*")
            job = service.submit(SIM)
            await finish(service, job)
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            service.hub.unsubscribe("*", queue)
            return job, events

        job, events = run(scenario())
        kinds = [event for event, _ in events]
        assert "job" in kinds and "unit" in kinds and "progress" in kinds
        final = [data for event, data in events if event == "job"][-1]
        assert final["state"] == "done"
        assert final["id"] == job.id
        assert final["job_id"] == job.id    # hub stamps the topic

    def test_metrics_snapshot_shape(self, tmp_path):
        async def scenario():
            service = make_service(tmp_path)
            job = service.submit(SIM)
            await finish(service, job)
            return service.metrics.snapshot(service)

        snap = run(scenario())
        assert snap["jobs"]["accepted"] == 1
        assert snap["jobs"]["completed"] == 1
        assert snap["units"]["executed"] == 1
        assert snap["latency_ms"]["job"]["count"] == 1
        assert snap["latency_ms"]["job"]["p50"] >= 0
        assert 0.0 <= snap["cache"]["hit_rate"] <= 1.0

    def test_quantiles_helper(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):
            metrics.job_latency_ms.record(value)
        quantiles = metrics.job_latency_ms.quantiles((0.5, 0.95))
        assert quantiles["p50"] <= quantiles["p95"]
