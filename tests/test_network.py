"""Interconnect: message sizing, fat-tree topology, fabric delivery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigError, EventQueue, Stats, baseline
from repro.network import Fabric, FatTree, Message, MsgType


class TestMessageSizes:
    def test_header_only_is_32_bytes(self):
        msg = Message(MsgType.GETS, 0, 1, 0)
        assert msg.size_bytes(32, 128) == 32

    def test_data_bearing_adds_line(self):
        msg = Message(MsgType.DATA_SHARED, 0, 1, 0)
        assert msg.size_bytes(32, 128) == 160

    def test_data_bearing_flags(self):
        assert MsgType.UPDATE.data_bearing
        assert MsgType.DELEGATE.data_bearing
        assert MsgType.WRITEBACK.data_bearing
        assert not MsgType.INV.data_bearing
        assert not MsgType.NACK.data_bearing
        assert not MsgType.UPDATE_ACK.data_bearing
        assert not MsgType.EVICT_CLEAN.data_bearing

    def test_message_ids_unique(self):
        a = Message(MsgType.GETS, 0, 1, 0)
        b = Message(MsgType.GETS, 0, 1, 0)
        assert a.msg_id != b.msg_id


class TestFatTree:
    def test_same_node_zero_latency(self):
        tree = FatTree(16, baseline().network)
        assert tree.latency(3, 3) == 0

    def test_same_leaf_cheaper(self):
        tree = FatTree(16, baseline().network)
        assert tree.latency(0, 1) < tree.latency(0, 9)

    def test_cross_leaf_is_hop_latency(self):
        cfg = baseline().network
        tree = FatTree(16, cfg)
        assert tree.latency(0, 9) == cfg.hop_latency

    def test_leaf_assignment(self):
        tree = FatTree(16, baseline().network)
        assert tree.leaf_of(0) == 0
        assert tree.leaf_of(7) == 0
        assert tree.leaf_of(8) == 1

    def test_router_links(self):
        tree = FatTree(16, baseline().network)
        assert tree.router_links(0, 0) == 0
        assert tree.router_links(0, 1) == 2
        assert tree.router_links(0, 9) == 4

    def test_depth_grows_with_nodes(self):
        cfg = baseline().network
        assert FatTree(8, cfg).depth == 1
        assert FatTree(16, cfg).depth == 2

    def test_out_of_range_rejected(self):
        tree = FatTree(4, baseline().network)
        with pytest.raises(ConfigError):
            tree.latency(0, 4)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_latency_symmetric(self, a, b):
        tree = FatTree(16, baseline().network)
        assert tree.latency(a, b) == tree.latency(b, a)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_latency_nonnegative_and_bounded(self, a, b):
        cfg = baseline().network
        tree = FatTree(16, cfg)
        lat = tree.latency(a, b)
        assert 0 <= lat <= cfg.hop_latency


class TestFabric:
    def make(self, num_nodes=4):
        cfg = baseline(num_nodes=num_nodes)
        events = EventQueue()
        stats = Stats()
        fabric = Fabric(cfg, events, stats)
        inbox = {n: [] for n in range(num_nodes)}
        for n in range(num_nodes):
            fabric.attach(n, lambda m, n=n: inbox[n].append((events.now, m)))
        return cfg, events, stats, fabric, inbox

    def test_delivery_to_handler(self):
        _cfg, events, _stats, fabric, inbox = self.make()
        fabric.send(Message(MsgType.GETS, 0, 2, 0))
        events.run()
        assert len(inbox[2]) == 1

    def test_local_send_not_counted_as_traffic(self):
        _cfg, events, stats, fabric, inbox = self.make()
        fabric.send(Message(MsgType.GETS, 1, 1, 0))
        events.run()
        assert len(inbox[1]) == 1
        assert stats.total("msg.sent.") == 0

    def test_remote_send_counted(self):
        _cfg, events, stats, fabric, _ = self.make()
        fabric.send(Message(MsgType.DATA_SHARED, 0, 1, 0))
        events.run()
        assert stats.get("msg.sent.DATA_SHARED") == 1
        assert stats.get("msg.bytes") == 160

    def test_port_contention_serialises(self):
        cfg, events, _stats, fabric, inbox = self.make()
        for _ in range(3):
            fabric.send(Message(MsgType.GETS, 0, 1, 0))
        events.run()
        times = [t for t, _m in inbox[1]]
        occupancy = cfg.network.hub_occupancy
        assert times[1] - times[0] == occupancy
        assert times[2] - times[1] == occupancy

    def test_per_pair_fifo(self):
        _cfg, events, _stats, fabric, inbox = self.make()
        first = Message(MsgType.GETS, 0, 1, 0)
        second = Message(MsgType.INV, 0, 1, 0)
        fabric.send(first)
        fabric.send(second)
        events.run()
        delivered = [m.msg_id for _t, m in inbox[1]]
        assert delivered == [first.msg_id, second.msg_id]

    def test_unattached_node_raises(self):
        cfg = baseline(num_nodes=2)
        events = EventQueue()
        fabric = Fabric(cfg, events, Stats())
        fabric.send(Message(MsgType.GETS, 0, 1, 0))
        with pytest.raises(RuntimeError):
            events.run()
