"""Interconnect: message sizing, fat-tree topology, fabric delivery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigError, EventQueue, Stats, baseline
from repro.network import Fabric, FatTree, Message, MsgType


class TestMessageSizes:
    def test_header_only_is_32_bytes(self):
        msg = Message(MsgType.GETS, 0, 1, 0)
        assert msg.size_bytes(32, 128) == 32

    def test_data_bearing_adds_line(self):
        msg = Message(MsgType.DATA_SHARED, 0, 1, 0)
        assert msg.size_bytes(32, 128) == 160

    def test_data_bearing_flags(self):
        assert MsgType.UPDATE.data_bearing
        assert MsgType.DELEGATE.data_bearing
        assert MsgType.WRITEBACK.data_bearing
        assert not MsgType.INV.data_bearing
        assert not MsgType.NACK.data_bearing
        assert not MsgType.UPDATE_ACK.data_bearing
        assert not MsgType.EVICT_CLEAN.data_bearing

    def test_message_ids_unique(self):
        a = Message(MsgType.GETS, 0, 1, 0)
        b = Message(MsgType.GETS, 0, 1, 0)
        assert a.msg_id != b.msg_id


class TestFatTree:
    def test_same_node_zero_latency(self):
        tree = FatTree(16, baseline().network)
        assert tree.latency(3, 3) == 0

    def test_same_leaf_cheaper(self):
        tree = FatTree(16, baseline().network)
        assert tree.latency(0, 1) < tree.latency(0, 9)

    def test_cross_leaf_is_hop_latency(self):
        cfg = baseline().network
        tree = FatTree(16, cfg)
        assert tree.latency(0, 9) == cfg.hop_latency

    def test_leaf_assignment(self):
        tree = FatTree(16, baseline().network)
        assert tree.leaf_of(0) == 0
        assert tree.leaf_of(7) == 0
        assert tree.leaf_of(8) == 1

    def test_router_links(self):
        tree = FatTree(16, baseline().network)
        assert tree.router_links(0, 0) == 0
        assert tree.router_links(0, 1) == 2
        assert tree.router_links(0, 9) == 4

    def test_depth_grows_with_nodes(self):
        cfg = baseline().network
        assert FatTree(8, cfg).depth == 1
        assert FatTree(16, cfg).depth == 2

    def test_out_of_range_rejected(self):
        tree = FatTree(4, baseline().network)
        with pytest.raises(ConfigError):
            tree.latency(0, 4)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_latency_symmetric(self, a, b):
        tree = FatTree(16, baseline().network)
        assert tree.latency(a, b) == tree.latency(b, a)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_latency_nonnegative_and_bounded(self, a, b):
        cfg = baseline().network
        tree = FatTree(16, cfg)
        lat = tree.latency(a, b)
        assert 0 <= lat <= cfg.hop_latency


class TestDeepFatTree:
    """Large machines climb 2-3 router levels (the scaling study)."""

    def test_depth_at_scale(self):
        cfg = baseline(num_nodes=4).network  # radix 8 either way
        assert FatTree(64, cfg).depth == 2
        assert FatTree(65, cfg).depth == 3
        assert FatTree(512, cfg).depth == 3
        assert FatTree(1024, cfg).depth == 4

    def test_levels_climbed(self):
        # 512 nodes = 64 leaves / 8 L2 routers / 1 root: max climb is 2.
        tree = FatTree(512, baseline(num_nodes=4).network)
        assert tree.levels_climbed(0, 0) == 0
        assert tree.levels_climbed(0, 7) == 0     # same leaf
        assert tree.levels_climbed(0, 8) == 1     # adjacent leaves
        assert tree.levels_climbed(0, 64) == 2    # adjacent L2 subtrees
        assert tree.levels_climbed(0, 511) == 2   # opposite corners
        # 1024 nodes add a fourth router level: corners climb 3.
        deep = FatTree(1024, baseline(num_nodes=4).network)
        assert deep.levels_climbed(0, 1023) == 3

    def test_level_latency_monotone(self):
        """Each extra level climbed costs strictly more cycles."""
        cfg = baseline(num_nodes=4).network
        tree = FatTree(1024, cfg)
        lat_by_level = [tree.latency(0, n) for n in (1, 8, 64, 1023)]
        assert [tree.levels_climbed(0, n)
                for n in (1, 8, 64, 1023)] == [0, 1, 2, 3]
        for near, far in zip(lat_by_level, lat_by_level[1:]):
            assert near < far

    def test_extra_levels_cost_fraction_of_a_hop(self):
        cfg = baseline(num_nodes=4).network
        tree = FatTree(1024, cfg)
        one = tree.latency(0, 8)
        two = tree.latency(0, 64)
        three = tree.latency(0, 1023)
        step = round(cfg.hop_latency * cfg.level_latency_frac)
        assert one == cfg.hop_latency
        assert two == one + step
        assert three == one + 2 * step

    def test_router_links_grow_with_levels(self):
        tree = FatTree(1024, baseline(num_nodes=4).network)
        assert tree.router_links(0, 7) == 2
        assert tree.router_links(0, 8) == 4
        assert tree.router_links(0, 64) == 6
        assert tree.router_links(0, 1023) == 8

    def test_sixteen_node_latencies_unchanged(self):
        """The deepened oracle is byte-identical on the paper's machine:
        at 16 nodes at most one level is climbed, so every latency is
        still 0, the intra-leaf fraction, or exactly hop_latency."""
        cfg = baseline().network
        tree = FatTree(16, cfg)
        intra = max(1, round(cfg.hop_latency * cfg.intra_leaf_fraction))
        for a in range(16):
            for b in range(16):
                expected = (0 if a == b
                            else intra if a // 8 == b // 8
                            else cfg.hop_latency)
                assert tree.latency(a, b) == expected

    @given(st.integers(0, 511), st.integers(0, 511))
    @settings(max_examples=60, deadline=None)
    def test_deep_latency_symmetric(self, a, b):
        tree = FatTree(512, baseline(num_nodes=4).network)
        assert tree.latency(a, b) == tree.latency(b, a)
        assert tree.levels_climbed(a, b) == tree.levels_climbed(b, a)


class TestFabric:
    def make(self, num_nodes=4):
        cfg = baseline(num_nodes=num_nodes)
        events = EventQueue()
        stats = Stats()
        fabric = Fabric(cfg, events, stats)
        inbox = {n: [] for n in range(num_nodes)}
        for n in range(num_nodes):
            fabric.attach(n, lambda m, n=n: inbox[n].append((events.now, m)))
        return cfg, events, stats, fabric, inbox

    def test_delivery_to_handler(self):
        _cfg, events, _stats, fabric, inbox = self.make()
        fabric.send(Message(MsgType.GETS, 0, 2, 0))
        events.run()
        assert len(inbox[2]) == 1

    def test_local_send_not_counted_as_traffic(self):
        _cfg, events, stats, fabric, inbox = self.make()
        fabric.send(Message(MsgType.GETS, 1, 1, 0))
        events.run()
        assert len(inbox[1]) == 1
        assert stats.total("msg.sent.") == 0

    def test_remote_send_counted(self):
        _cfg, events, stats, fabric, _ = self.make()
        fabric.send(Message(MsgType.DATA_SHARED, 0, 1, 0))
        events.run()
        assert stats.get("msg.sent.DATA_SHARED") == 1
        assert stats.get("msg.bytes") == 160

    def test_port_contention_serialises(self):
        cfg, events, _stats, fabric, inbox = self.make()
        for _ in range(3):
            fabric.send(Message(MsgType.GETS, 0, 1, 0))
        events.run()
        times = [t for t, _m in inbox[1]]
        occupancy = cfg.network.hub_occupancy
        assert times[1] - times[0] == occupancy
        assert times[2] - times[1] == occupancy

    def test_per_pair_fifo(self):
        _cfg, events, _stats, fabric, inbox = self.make()
        first = Message(MsgType.GETS, 0, 1, 0)
        second = Message(MsgType.INV, 0, 1, 0)
        fabric.send(first)
        fabric.send(second)
        events.run()
        delivered = [m.msg_id for _t, m in inbox[1]]
        assert delivered == [first.msg_id, second.msg_id]

    def test_unattached_node_raises(self):
        cfg = baseline(num_nodes=2)
        events = EventQueue()
        fabric = Fabric(cfg, events, Stats())
        fabric.send(Message(MsgType.GETS, 0, 1, 0))
        with pytest.raises(RuntimeError):
            events.run()
