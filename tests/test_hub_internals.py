"""Hub message handling driven directly with hand-crafted messages.

These bypass the processors to reach corner cases that full workloads hit
only rarely: stale replies, spurious invalidations, misrouted requests,
NACK purposes, writeback acks, and dispatch errors.
"""

import pytest

from repro.cache import LineState
from repro.common import baseline, small
from repro.common.errors import ProtocolError, UnhandledMessageError
from repro.directory import DirState
from repro.network import Message, MsgType
from repro.sim import System

LINE = 0x100000


@pytest.fixture
def system(base4):
    return System(base4, check_coherence=False)


@pytest.fixture
def dele_system():
    return System(small(num_nodes=4), check_coherence=False)


def deliver(system, msg):
    """Send a message and drain the event queue."""
    system.fabric.send(msg)
    system.events.run()


class TestRequestRouting:
    def test_request_to_wrong_node_bounced(self, system):
        """A GETS landing on a node that is neither home nor delegate gets
        NACK_NOT_HOME back to the requester."""
        system.address_map.place_range(LINE, 128, 0)
        deliver(system, Message(MsgType.GETS, src=3, dst=2, addr=LINE,
                                payload={"requester": 3}))
        # Node 3 has no outstanding miss, so the bounce is simply dropped;
        # what matters is that node 2 did not corrupt its home memory.
        assert len(system.hubs[2].home_memory) == 0

    def test_gets_at_home_grants_exclusive_on_unowned(self, system):
        system.address_map.place_range(LINE, 128, 0)
        hub = system.hubs[0]
        deliver(system, Message(MsgType.GETS, src=2, dst=0, addr=LINE,
                                payload={"requester": 2}))
        entry = hub.home_memory.entry(LINE)
        assert entry.state is DirState.EXCL
        assert entry.owner == 2

    def test_unknown_message_type_rejected(self, system):
        class Fake:
            mtype = "not-a-type"
            addr = LINE
            src, dst = 0, 0
        system.address_map.place_range(LINE, 128, 0)
        with pytest.raises(ProtocolError) as excinfo:
            system.hubs[0].dispatch(Fake())
        # The structured error names the same (node, message, directory
        # state) coordinates a lint handler-coverage finding would.
        err = excinfo.value
        assert isinstance(err, UnhandledMessageError)
        assert err.node == 0
        assert err.mtype == "not-a-type"
        assert err.dir_state == "UNOWNED"  # hub 0 homes LINE
        assert "no handler" in str(err)


class TestSpuriousMessages:
    def test_stale_data_reply_dropped(self, system):
        """A reply with no outstanding miss leaves the hub untouched."""
        deliver(system, Message(MsgType.DATA_SHARED, src=0, dst=1,
                                addr=LINE, value=7, payload={"hops": 2}))
        assert system.hubs[1].hierarchy.state_of(LINE) is LineState.INVALID

    def test_stale_ack_x_dropped(self, system):
        deliver(system, Message(MsgType.ACK_X, src=0, dst=1, addr=LINE,
                                payload={"n_acks": 0}))
        assert system.hubs[1].miss is None

    def test_spurious_inv_acked_without_copy(self, system):
        """INV for a silently evicted line still produces an INV_ACK."""
        log = []
        original = system.hubs[2].dispatch

        def spy(msg):
            log.append(msg.mtype)
            original(msg)

        system.fabric.attach(2, spy)
        # The ack is sent; its arrival at a collector with no outstanding
        # miss is itself a protocol error (acks are never unsolicited in a
        # real execution), which the strict hub surfaces loudly.
        with pytest.raises(ProtocolError):
            deliver(system, Message(MsgType.INV, src=0, dst=1, addr=LINE,
                                    payload={"collector": 2}))
        assert MsgType.INV_ACK in log

    def test_inv_ack_without_miss_is_protocol_error(self, system):
        with pytest.raises(ProtocolError):
            deliver(system, Message(MsgType.INV_ACK, src=2, dst=1,
                                    addr=LINE))

    def test_wb_ack_ignored(self, system):
        deliver(system, Message(MsgType.WB_ACK, src=0, dst=1, addr=LINE))
        assert system.hubs[1].miss is None

    def test_stale_nack_dropped(self, system):
        deliver(system, Message(MsgType.NACK, src=0, dst=1, addr=LINE,
                                payload={"for": "miss"}))
        assert system.hubs[1].miss is None


class TestWritebackPaths:
    def test_writeback_from_owner_frees_line(self, system):
        system.address_map.place_range(LINE, 128, 0)
        entry = system.hubs[0].home_memory.entry(LINE)
        entry.state = DirState.EXCL
        entry.owner = 2
        deliver(system, Message(MsgType.WRITEBACK, src=2, dst=0, addr=LINE,
                                value=42))
        assert entry.state is DirState.UNOWNED
        assert entry.owner is None
        assert entry.value == 42

    def test_stale_writeback_ignored(self, system):
        """A WRITEBACK from a node the directory no longer lists as owner
        must not clobber state."""
        system.address_map.place_range(LINE, 128, 0)
        entry = system.hubs[0].home_memory.entry(LINE)
        entry.state = DirState.SHARED
        entry.sharers = {1}
        entry.value = 9
        deliver(system, Message(MsgType.EVICT_CLEAN, src=2, dst=0,
                                addr=LINE))
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1}


class TestDelegationMessages:
    def test_undele_req_for_unknown_line_reports_gone(self, dele_system):
        system = dele_system
        log = []
        original = system.hubs[0].dispatch

        def spy(msg):
            log.append((msg.mtype, msg.payload.get("reason")))
            original(msg)

        system.fabric.attach(0, spy)
        deliver(system, Message(MsgType.UNDELE_REQ, src=0, dst=1,
                                addr=LINE))
        assert (MsgType.NACK, "gone") in log

    def test_home_changed_installs_hint(self, dele_system):
        system = dele_system
        deliver(system, Message(MsgType.HOME_CHANGED, src=0, dst=2,
                                addr=LINE, payload={"delegate": 3}))
        assert system.hubs[2].consumer_table.lookup(LINE) == 3

    def test_unsolicited_update_lands_in_rac(self, dele_system):
        system = dele_system
        deliver(system, Message(MsgType.UPDATE, src=1, dst=2, addr=LINE,
                                value=5, payload={"hops": 2}))
        rac_line = system.hubs[2].rac.probe(LINE)
        assert rac_line is not None
        assert rac_line.value == 5
        # And the consumer learned where the line lives.
        assert system.hubs[2].consumer_table.lookup(LINE) == 1

    def test_update_with_ack_flag_answers(self, dele_system):
        system = dele_system
        log = []
        original = system.hubs[1].dispatch

        def spy(msg):
            log.append(msg.mtype)
            original(msg)

        system.fabric.attach(1, spy)
        deliver(system, Message(MsgType.UPDATE, src=1, dst=2, addr=LINE,
                                value=5, payload={"hops": 2, "ack": True}))
        assert MsgType.UPDATE_ACK in log

    def test_update_without_ack_flag_is_silent(self, dele_system):
        system = dele_system
        log = []
        original = system.hubs[1].dispatch

        def spy(msg):
            log.append(msg.mtype)
            original(msg)

        system.fabric.attach(1, spy)
        deliver(system, Message(MsgType.UPDATE, src=1, dst=2, addr=LINE,
                                value=5, payload={"hops": 2}))
        assert MsgType.UPDATE_ACK not in log

    def test_update_for_cached_line_dropped(self, dele_system):
        system = dele_system
        system.hubs[2].hierarchy.fill(LINE, LineState.SHARED, 9)
        deliver(system, Message(MsgType.UPDATE, src=1, dst=2, addr=LINE,
                                value=5, payload={"hops": 2}))
        assert system.hubs[2].hierarchy.value_of(LINE) == 9


class TestSnapshot:
    def test_snapshot_line_view(self, dele_system):
        system = dele_system
        system.address_map.place_range(LINE, 128, 0)
        view = system.hubs[0].snapshot_line(LINE)
        assert view["dir"] == "UNOWNED"
        assert view["l2"] == "I"
        assert not view["delegated_here"]
