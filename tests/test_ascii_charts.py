"""ASCII chart rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ascii_charts import (
    bar_chart,
    grouped_bar_chart,
    hbar,
    speedup_figure,
)
from repro.common import ConfigError


class TestHbar:
    def test_full_bar(self):
        assert hbar(10, 10, width=4) == "####"

    def test_half_bar(self):
        assert hbar(5, 10, width=4) == "##  "

    def test_zero(self):
        assert hbar(0, 10, width=4) == "    "

    def test_clamps_over_max(self):
        assert hbar(20, 10, width=4) == "####"

    def test_negative_clamped(self):
        assert hbar(-3, 10, width=4) == "    "

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            hbar(1, 0)

    @given(st.floats(0, 100), st.floats(0.1, 100), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_width_always_exact(self, value, vmax, width):
        assert len(hbar(value, vmax, width=width)) == width


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart([("em3d", 1.37), ("cg", 1.06)], title="speedup")
        assert "em3d" in text
        assert "1.370" in text
        assert text.splitlines()[0] == "speedup"

    def test_dict_input(self):
        text = bar_chart({"a": 1.0})
        assert "a |" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart([])

    def test_longest_bar_fills_width(self):
        text = bar_chart([("a", 2.0), ("b", 1.0)], width=10)
        lines = text.splitlines()
        assert "#" * 10 in lines[0]
        assert "#" * 5 in lines[1]


class TestGrouped:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            {"em3d": [("base", 1.0), ("large", 1.37)]})
        assert "em3d" in text
        assert "large" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            grouped_bar_chart({})

    def test_speedup_figure_from_experiment_shape(self):
        speedups = {"em3d": {"base": 1.0, "dele1k_rac1m": 1.37},
                    "cg": {"base": 1.0, "dele1k_rac1m": 1.06}}
        text = speedup_figure(speedups)
        assert "dele1k_rac1m" in text
        assert "1.370" in text
