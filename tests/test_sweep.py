"""Sweep engine: job keys, on-disk cache, worker pool, crash capture.

The parallel tests use the real ``spawn`` multiprocessing path at tiny
workload scales, so they exercise exactly the code the artefact sweeps
run — including the determinism-under-process-isolation guarantee the
cache relies on.
"""

import json

import pytest

from repro.common import baseline, small
from repro.harness import run_app
from repro.harness.sweep import (
    CACHE_FORMAT,
    ResultCache,
    SweepEngine,
    SweepError,
    SweepJob,
    _execute_job,
    job_key,
)

SCALE = 0.1


def job(app="ocean", config=None, **kwargs):
    return SweepJob(app=app,
                    config=config if config is not None
                    else baseline(num_nodes=4),
                    scale=kwargs.pop("scale", SCALE), **kwargs)


class TestJobKey:
    def test_stable_across_instances(self):
        assert job_key(job()) == job_key(job())

    def test_key_is_hex_sha256(self):
        key = job_key(job())
        assert len(key) == 64
        int(key, 16)

    def test_every_field_matters(self):
        base = job_key(job())
        assert job_key(job(app="lu")) != base
        assert job_key(job(seed=99)) != base
        assert job_key(job(scale=0.2)) != base
        assert job_key(job(num_cpus=2)) != base
        assert job_key(job(check_coherence=False)) != base
        assert job_key(job(config=small(num_nodes=4))) != base

    def test_directory_format_folds_into_config_and_key(self):
        """Regression: the format override is part of the content hash,
        so a coarse:4 run can never replay a full run's cache entry (the
        aliasing the retired OverrideEngine wrapper risked)."""
        plain = job()
        coarse = job(directory_format="coarse:4")
        assert coarse.config.directory_format == "coarse:4"
        assert job_key(coarse) != job_key(plain)
        # The override and a config carrying the same value are the SAME
        # content — cache entries are shared, not duplicated.
        from dataclasses import replace
        direct = job(config=replace(baseline(num_nodes=4),
                                    directory_format="coarse:4"))
        assert job_key(coarse) == job_key(direct)

    def test_protocol_name_folds_into_config_and_key(self):
        wi = job(protocol_name="wi")
        assert wi.config.protocol_name == "wi"
        assert job_key(wi) != job_key(job())


class TestSerialEngine:
    def test_matches_direct_run_app(self):
        direct = run_app("ocean", baseline(num_nodes=4), scale=SCALE)
        swept = SweepEngine().run_app("ocean", baseline(num_nodes=4),
                                      scale=SCALE)
        assert swept.metrics == direct.metrics
        assert swept.consumer_hist == direct.consumer_hist
        assert swept.stats == direct.stats

    def test_list_input_keyed_by_index(self):
        runs = SweepEngine().run_many([job(), job(app="lu")])
        assert set(runs) == {0, 1}
        assert runs[0].app == "ocean"
        assert runs[1].app == "lu"

    def test_identical_jobs_deduped(self):
        engine = SweepEngine()
        runs = engine.run_many({"a": job(), "b": job()})
        assert engine.last_report.total == 2
        assert engine.last_report.unique == 1
        assert engine.last_report.executed == 1
        assert runs["a"].stats == runs["b"].stats

    def test_crash_carries_key_and_traceback(self):
        bad = job(app="no_such_app")
        with pytest.raises(SweepError) as err:
            SweepEngine().run_many([bad])
        assert err.value.key == job_key(bad)
        assert "no_such_app" in err.value.worker_traceback

    def test_gc_state_restored_after_serial_batch(self):
        import gc
        assert gc.isenabled()
        SweepEngine().run_many([job()])
        assert gc.isenabled()


class TestWorkerClamp:
    def test_clamped_to_cpu_count(self):
        import os
        cores = os.cpu_count() or 1
        engine = SweepEngine(jobs=cores + 7)
        assert engine.jobs == cores + 7       # requested width is kept
        assert engine.effective_jobs == cores  # pool width is not

    def test_opt_out_keeps_requested_width(self):
        engine = SweepEngine(jobs=64, clamp=False)
        assert engine.effective_jobs == 64

    def test_serial_engine_unaffected(self):
        assert SweepEngine(jobs=1).effective_jobs == 1


class TestCache:
    def test_second_run_executes_nothing(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        first = engine.run_many([job()])
        assert engine.last_report.executed == 1
        second = engine.run_many([job()])
        assert engine.last_report.executed == 0
        assert engine.last_report.cached == 1
        assert second[0].metrics == first[0].metrics
        assert second[0].stats == first[0].stats

    def test_entry_layout_is_sharded_json(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        engine.run_many([job()])
        key = job_key(job())
        path = tmp_path / key[:2] / (key + ".json")
        assert path.is_file()
        doc = json.loads(path.read_text())
        assert doc["format"] == CACHE_FORMAT
        assert doc["job"]["app"] == "ocean"
        assert doc["result"]["cycles"] > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        engine.run_many([job()])
        key = job_key(job())
        (tmp_path / key[:2] / (key + ".json")).write_text("{not json")
        engine.run_many([job()])
        assert engine.last_report.executed == 1

    def test_format_mismatch_is_a_miss(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        engine.run_many([job()])
        key = job_key(job())
        path = tmp_path / key[:2] / (key + ".json")
        doc = json.loads(path.read_text())
        doc["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(doc))
        engine.run_many([job()])
        assert engine.last_report.executed == 1

    def test_cache_disabled_writes_nothing(self, tmp_path):
        engine = SweepEngine(cache=False, cache_dir=str(tmp_path))
        engine.run_many([job()])
        assert list(tmp_path.iterdir()) == []

    def test_get_missing_returns_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get("0" * 64) is None


class RecordingProgress:
    def __init__(self):
        self.events = []

    def sweep_started(self, total, cached):
        self.events.append(("started", total, cached))

    def job_finished(self, key, job, elapsed, cached):
        self.events.append(("job", cached))

    def sweep_finished(self, report):
        self.events.append(("finished", report.executed, report.cached))


class TestProgressHooks:
    def test_hooks_fire_in_order(self):
        progress = RecordingProgress()
        SweepEngine(progress=progress).run_many([job(), job(app="lu")])
        assert progress.events[0] == ("started", 2, 0)
        assert progress.events[1:3] == [("job", False), ("job", False)]
        assert progress.events[3] == ("finished", 2, 0)

    def test_cached_jobs_reported_as_cached(self, tmp_path):
        engine = SweepEngine(cache=True, cache_dir=str(tmp_path))
        engine.run_many([job()])
        progress = RecordingProgress()
        engine.progress = progress
        engine.run_many([job()])
        assert ("started", 1, 1) in progress.events
        assert ("job", True) in progress.events


@pytest.mark.slow
class TestParallel:
    """Real spawn-based pool; slow because workers re-import the package."""

    def batch(self):
        return {(app, name): SweepJob(app=app, config=config, scale=SCALE)
                for app in ("ocean", "lu")
                for name, config in {"base": baseline(num_nodes=4),
                                     "small": small(num_nodes=4)}.items()}

    def test_parallel_identical_to_serial(self):
        serial = SweepEngine(jobs=1).run_many(self.batch())
        parallel = SweepEngine(jobs=2, clamp=False).run_many(self.batch())
        assert set(serial) == set(parallel)
        for key in serial:
            assert parallel[key].metrics == serial[key].metrics
            assert parallel[key].stats == serial[key].stats
            assert parallel[key].consumer_hist == serial[key].consumer_hist

    def test_parallel_crash_carries_key_and_traceback(self):
        jobs = dict(self.batch())
        bad = SweepJob(app="no_such_app", config=baseline(num_nodes=4),
                       scale=SCALE)
        jobs["bad"] = bad
        with pytest.raises(SweepError) as err:
            SweepEngine(jobs=2, clamp=False).run_many(jobs)
        assert err.value.key == job_key(bad)
        assert "no_such_app" in err.value.worker_traceback

    def test_parallel_populates_shared_cache(self, tmp_path):
        engine = SweepEngine(jobs=2, clamp=False, cache=True,
                             cache_dir=str(tmp_path))
        engine.run_many(self.batch())
        assert engine.last_report.executed == 4
        engine.run_many(self.batch())
        assert engine.last_report.executed == 0
        assert engine.last_report.cached == 4


@pytest.mark.slow
class TestProcessIsolationDeterminism:
    """The cache's core assumption: a simulation's results depend only on
    the job content, not on which process runs it."""

    def test_subprocess_matches_in_process(self):
        the_job = job()
        status, local = _execute_job(the_job)
        assert status == "ok"

        import multiprocessing
        from concurrent import futures

        context = multiprocessing.get_context("spawn")
        with futures.ProcessPoolExecutor(max_workers=1,
                                         mp_context=context) as pool:
            status, remote = pool.submit(_execute_job, the_job).result()
        assert status == "ok"
        assert remote == local
        assert remote["stats"] == local["stats"]
