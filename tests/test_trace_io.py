"""Trace serialisation round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import baseline
from repro.common.errors import SimulationError
from repro.sim import Barrier, Compute, Read, System, Write
from repro.sim.trace_io import dump_trace, load_trace, read_trace, save_trace
from repro.workloads import synthetic


class TestRoundTrip:
    def test_simple_round_trip(self):
        ops = [[Compute(5), Read(0x1000), Write(0x2000), Barrier(0)],
               [Barrier(0)]]
        placements = [(0x1000, 128, 1)]
        text = dump_trace(ops, placements)
        loaded_ops, loaded_placements = load_trace(text)
        assert loaded_ops == ops
        assert loaded_placements == placements

    def test_workload_round_trip(self):
        build = synthetic(iterations=3, lines_per_producer=2,
                          num_cpus=4).build()
        text = dump_trace(build.per_cpu_ops, build.placements)
        ops, placements = load_trace(text)
        assert ops == build.per_cpu_ops
        assert placements == build.placements

    def test_file_round_trip(self, tmp_path):
        build = synthetic(iterations=2, lines_per_producer=1,
                          num_cpus=4).build()
        path = tmp_path / "trace.txt"
        save_trace(path, build.per_cpu_ops, build.placements)
        ops, placements = read_trace(path)
        assert ops == build.per_cpu_ops

    def test_loaded_trace_runs(self, tmp_path):
        build = synthetic(iterations=2, lines_per_producer=2,
                          num_cpus=4).build()
        path = tmp_path / "trace.txt"
        save_trace(path, build.per_cpu_ops, build.placements)
        ops, placements = read_trace(path)
        result = System(baseline(num_nodes=4)).run(ops,
                                                   placements=placements)
        assert result.cycles > 0


class TestErrors:
    def test_bad_header_rejected(self):
        with pytest.raises(SimulationError):
            load_trace("not a trace\n")

    def test_bad_line_rejected(self):
        with pytest.raises(SimulationError):
            load_trace("# repro-trace v1 cpus=1\nxyzzy\n")

    def test_bad_op_kind_rejected(self):
        with pytest.raises(SimulationError):
            load_trace("# repro-trace v1 cpus=1\nq 0 5\n")

    def test_unserialisable_op_rejected(self):
        with pytest.raises(SimulationError):
            dump_trace([["bogus"]])

    def test_comments_and_blanks_ignored(self):
        text = ("# repro-trace v1 cpus=1\n"
                "# a comment\n"
                "\n"
                "c 0 7\n")
        ops, _ = load_trace(text)
        assert ops == [[Compute(7)]]


class TestProperties:
    ops_strategy = st.lists(
        st.one_of(
            st.builds(Compute, st.integers(1, 10_000)),
            st.builds(Read, st.integers(0, 2 ** 40).map(lambda a: a & ~127)),
            st.builds(Write, st.integers(0, 2 ** 40).map(lambda a: a & ~127)),
            st.builds(Barrier, st.integers(0, 1000)),
        ),
        max_size=50,
    )

    @given(st.lists(ops_strategy, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_traces_round_trip(self, per_cpu_ops):
        text = dump_trace(per_cpu_ops)
        loaded, _ = load_trace(text)
        assert loaded == per_cpu_ops
