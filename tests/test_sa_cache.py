"""Generic set-associative cache: geometry, replacement, pinning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheCapacityError, LineState, SetAssociativeCache
from repro.common import CacheConfig, ConfigError
from repro.common.errors import ReproError


def make_cache(size=4096, assoc=4, line=128, replacement="lru", rng=None):
    cfg = CacheConfig(size_bytes=size, assoc=assoc, line_size=line,
                      replacement=replacement)
    return SetAssociativeCache(cfg, rng=rng, name="test")


class TestGeometry:
    def test_set_index_wraps(self):
        cache = make_cache(size=4096, assoc=4, line=128)  # 8 sets
        assert cache.set_index(0) == 0
        assert cache.set_index(128) == 1
        assert cache.set_index(8 * 128) == 0

    def test_unaligned_address_rejected(self):
        cache = make_cache()
        with pytest.raises(ReproError):
            cache.probe(5)

    def test_random_replacement_needs_rng(self):
        cfg = CacheConfig(4096, 4, replacement="random")
        with pytest.raises(ConfigError):
            SetAssociativeCache(cfg, rng=None)


class TestResidency:
    def test_insert_then_probe(self):
        cache = make_cache()
        cache.insert(0, state=LineState.SHARED, value=9)
        line = cache.probe(0)
        assert line.value == 9
        assert line.state is LineState.SHARED

    def test_probe_miss_returns_none(self):
        assert make_cache().probe(128) is None

    def test_contains(self):
        cache = make_cache()
        cache.insert(256)
        assert 256 in cache
        assert 0 not in cache

    def test_len_counts_lines(self):
        cache = make_cache()
        for i in range(5):
            cache.insert(i * 128)
        assert len(cache) == 5

    def test_invalidate_removes(self):
        cache = make_cache()
        cache.insert(0)
        removed = cache.invalidate(0)
        assert removed is not None
        assert 0 not in cache

    def test_invalidate_missing_returns_none(self):
        assert make_cache().invalidate(0) is None

    def test_insert_existing_updates_in_place(self):
        cache = make_cache()
        cache.insert(0, state=LineState.SHARED, value=1)
        evicted = cache.insert(0, state=LineState.MODIFIED, value=2)
        assert evicted is None
        assert cache.probe(0).value == 2
        assert len(cache) == 1

    def test_clear(self):
        cache = make_cache()
        cache.insert(0)
        cache.clear()
        assert len(cache) == 0


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = make_cache(size=4096, assoc=2)
        stride = cache.config.num_sets * 128  # all map to set 0
        cache.insert(0 * stride)
        cache.insert(1 * stride)
        cache.access(0 * stride)  # refresh line 0
        evicted = cache.insert(2 * stride)
        assert evicted.addr == 1 * stride

    def test_access_returns_none_on_miss(self):
        assert make_cache().access(0) is None

    def test_victim_for_no_eviction_needed(self):
        cache = make_cache(assoc=2)
        cache.insert(0)
        assert cache.victim_for(128) is None  # other set
        assert cache.victim_for(0) is None    # hit


class TestPinning:
    def test_pinned_lines_never_victims(self):
        cache = make_cache(size=4096, assoc=2)
        stride = cache.config.num_sets * 128
        cache.insert(0 * stride, pinned=True)
        cache.insert(1 * stride)
        evicted = cache.insert(2 * stride)
        assert evicted.addr == 1 * stride  # the unpinned one

    def test_all_pinned_raises(self):
        cache = make_cache(size=4096, assoc=2)
        stride = cache.config.num_sets * 128
        cache.insert(0 * stride, pinned=True)
        cache.insert(1 * stride, pinned=True)
        with pytest.raises(CacheCapacityError):
            cache.insert(2 * stride)

    def test_has_room_respects_pins(self):
        cache = make_cache(size=4096, assoc=2)
        stride = cache.config.num_sets * 128
        cache.insert(0 * stride, pinned=True)
        cache.insert(1 * stride, pinned=True)
        assert not cache.has_room(2 * stride)
        assert cache.has_room(0 * stride)  # hit is always fine
        assert cache.has_room(128)  # different set

    def test_random_replacement_picks_unpinned(self):
        cache = make_cache(size=4096, assoc=4, replacement="random",
                           rng=random.Random(7))
        stride = cache.config.num_sets * 128
        for i in range(3):
            cache.insert(i * stride, pinned=True)
        cache.insert(3 * stride)
        evicted = cache.insert(4 * stride)
        assert evicted.addr == 3 * stride


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, line_indices):
        cache = make_cache(size=2048, assoc=2)  # 16 lines capacity
        for idx in line_indices:
            cache.insert(idx * 128)
        assert len(cache) <= 16
        # And per-set occupancy never exceeds associativity.
        per_set = {}
        for line in cache.lines():
            per_set.setdefault(cache.set_index(line.addr), []).append(line)
        assert all(len(lines) <= 2 for lines in per_set.values())

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_most_recent_insert_always_resident(self, line_indices):
        cache = make_cache(size=2048, assoc=2)
        for idx in line_indices:
            cache.insert(idx * 128)
            assert idx * 128 in cache
