"""Arena protocols and the fast-path/pool lifecycle regressions.

Covers the PR's two bugfixes and the pluggable-protocol arena:

* fabric fast paths are bound at construction — late tracer/chaos
  attachment must raise instead of silently running un-instrumented, and
  traced runs must be stat-identical to untraced ones;
* the message free list survives exception and redispatch paths (no
  leak into the pool, no double release), audited by
  :meth:`Message.pool_audit`;
* every arena protocol (adaptive/wi/mesi/dragon) passes the full fuzz
  oracle set on shared seeds, and the ``wi`` baseline reproduces the
  no-updates (``base``) golden stats bit-for-bit;
* each ``directory_format`` runs a coherence-checked app through the
  newly wired ``SystemConfig`` knob;
* ``run_arena`` renders the multi-protocol comparison report.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.common import params
from repro.common.errors import ConfigError
from repro.fuzz.runner import run_case
from repro.fuzz.scenarios import FuzzScenario
from repro.harness import run_app
from repro.harness.arena import run_arena
from repro.lint import run_lint
from repro.lint.checks import check_arena
from repro.lint.extract import ProtocolDecl, extract_protocols, extract_sim
from repro.network.message import Message, MsgType
from repro.obs import TraceConfig, Tracer
from repro.protocol.arena import ARENA_PROTOCOLS, PROTOCOLS
from repro.sim import Read, System

LINE = 0x100000

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "perf_rewrite_golden.json")


class TestFabricLateBinding:
    """The traced/untraced and chaos/chaos-free send paths are chosen at
    ``Fabric.__init__``; attaching instrumentation later must be loud."""

    def test_late_tracer_attach_raises(self, base4):
        system = System(base4)
        with pytest.raises(RuntimeError, match="bound at __init__"):
            system.fabric.tracer = Tracer(TraceConfig())

    def test_late_chaos_attach_raises(self, base4):
        system = System(base4)
        with pytest.raises(RuntimeError, match="bound at __init__"):
            system.fabric.chaos = object()

    def test_idempotent_reassignment_is_legal(self, base4):
        tracer = Tracer(TraceConfig())
        system = System(base4, tracer=tracer)
        system.fabric.tracer = tracer          # same object: a no-op
        system.fabric.chaos = system.fabric.chaos
        with pytest.raises(RuntimeError):
            system.fabric.tracer = Tracer(TraceConfig())

    def test_traced_run_is_stat_identical_to_untraced(self):
        cfg = params.small(num_nodes=8)
        plain = run_app("em3d", cfg, seed=4, scale=0.05)
        tracer = Tracer(TraceConfig(capture_messages=True))
        traced = run_app("em3d", cfg, seed=4, scale=0.05, trace=tracer)
        assert traced.metrics.cycles == plain.metrics.cycles
        assert traced.stats == plain.stats
        assert tracer.spans  # the tracer really was wired in


class TestMessagePoolLifecycle:
    """Free-list regressions: double release raises, exception paths
    leave the pool sound, and ``pool_audit`` catches corruption."""

    def test_double_release_raises(self):
        msg = Message(MsgType.GETS, 0, 1, 0x80)
        msg.release()
        with pytest.raises(ValueError, match="double release"):
            msg.release()

    def test_pool_audit_clean_after_release(self):
        Message.clear_pool()
        Message(MsgType.GETS, 0, 1, 0x80, payload={"requester": 2}).release()
        assert Message.pool_audit() == []

    def test_pool_audit_flags_aliased_entry(self):
        Message.clear_pool()
        msg = Message(MsgType.GETS, 0, 1, 0x80)
        msg.release()
        # Simulate the old double-release bug: the same instance pushed
        # onto the free list twice.
        Message._pool.append(msg)
        problems = Message.pool_audit()
        assert any("alias" in problem for problem in problems)
        Message.clear_pool()

    def test_pool_audit_flags_unreleased_entry(self):
        Message.clear_pool()
        msg = Message(MsgType.GETS, 0, 1, 0x80, payload={"requester": 2})
        # Pushed without going through release(): flag and payload retained.
        Message._pool.append(msg)
        assert Message.pool_audit()
        Message.clear_pool()

    def test_handler_exception_leaves_pool_sound(self, base4):
        Message.clear_pool()
        system = System(base4)
        system.address_map.place_range(LINE, 128, 3)

        def boom(msg):
            raise RuntimeError("injected handler failure")

        system.hubs[3]._handler_array[MsgType.GETS.index] = boom
        with pytest.raises(RuntimeError, match="injected handler failure"):
            system.run([[Read(LINE)]])
        # The in-flight message is abandoned to the GC, never recycled
        # into the free list with live state.
        assert Message.pool_audit() == []


class TestWiGoldenParity:
    """The wi baseline is the adaptive protocol minus delegation/updates —
    on configs where those are already off it must be bit-for-bit."""

    def test_wi_reproduces_no_updates_golden(self):
        with open(GOLDEN_PATH) as fileobj:
            golden = json.load(fileobj)
        rec = next(r for r in golden["runs"] if r["system"] == "base")
        cfg = params.EVALUATED_SYSTEMS[rec["system"]](protocol_name="wi")
        run = run_app(rec["app"], cfg, seed=rec["seed"], scale=rec["scale"])
        assert run.metrics.cycles == rec["cycles"]
        assert run.stats == rec["stats"]

    def test_wi_matches_adaptive_on_update_free_config(self):
        cfg = params.rac_only(num_nodes=8)
        adaptive = run_app("em3d", cfg, seed=9, scale=0.05)
        wi = run_app("em3d", replace(cfg, protocol_name="wi"),
                     seed=9, scale=0.05)
        assert wi.metrics.cycles == adaptive.metrics.cycles
        assert wi.stats == adaptive.stats


class TestProtocolFuzzSmoke:
    """Every arena protocol passes the full oracle set (spans, single
    writer, directory agreement, lost update, pool invariant) on the
    shared golden seeds."""

    @pytest.mark.parametrize("protocol", ARENA_PROTOCOLS)
    def test_seeded_cases_pass_all_oracles(self, protocol):
        for seed in (0, 3, 11):
            scenario = FuzzScenario.from_seed(seed, scale=0.25,
                                              protocol=protocol)
            assert scenario.config.protocol_name == protocol
            result = run_case(scenario)
            assert result.ok, ("seed %d under %s: %s"
                               % (seed, protocol, result.message))

    def test_protocol_pin_changes_only_protocol_name(self):
        base = FuzzScenario.from_seed(5)
        pinned = FuzzScenario.from_seed(5, protocol="mesi")
        assert pinned.config == replace(base.config, protocol_name="mesi")
        assert pinned.chaos == base.chaos
        assert pinned.workloads == base.workloads


class TestDirectoryFormatSmoke:
    """The directory_format knob reaches the sim through SystemConfig and
    every format completes a coherence-checked app run."""

    @pytest.mark.parametrize("spec", ["full", "coarse:4", "limited:2"])
    def test_format_runs_coherence_checked(self, spec):
        cfg = params.small(num_nodes=8, directory_format=spec)
        run = run_app("em3d", cfg, seed=3, scale=0.05, check_coherence=True)
        assert run.metrics.cycles > 0


class TestArenaReport:
    def test_run_arena_renders_comparison(self):
        report = run_arena(apps=("em3d",), protocols=("adaptive", "wi"),
                           base_name="small", seed=5, scale=0.05)
        text = report.render_text()
        assert "[em3d]" in text
        assert "adaptive" in text and "wi" in text
        doc = report.to_json()
        rows = doc["rows"]["em3d"]
        assert [row["protocol"] for row in rows] == ["adaptive", "wi"]
        for row in rows:
            assert row["cycles"] > 0
            assert row["traffic_bytes"] > 0

    def test_unknown_protocol_fails_before_any_run(self):
        with pytest.raises(ConfigError, match="unknown protocol"):
            run_arena(apps=("em3d",), protocols=("adaptive", "nope"))


class TestLintProtocolAwareness:
    """Lint reports which protocols the sim<->mc conformance diff covers
    and guards the baseline handler tables (ARN001)."""

    def test_registry_extraction_matches_runtime(self):
        from repro.lint import default_root
        extracted = extract_protocols(default_root())
        assert set(extracted) == set(PROTOCOLS)
        for name, decl in extracted.items():
            assert decl.mc_twin == PROTOCOLS[name].mc_twin

    def test_conformance_status_in_stats(self):
        report = run_lint()
        statuses = report.stats["protocols"]
        assert statuses["adaptive"] == "conformance-checked (mc twin)"
        assert statuses["mesi"] == \
            "conformance-checked (generated mc twin)"
        for name in ("wi", "dragon"):
            assert statuses[name] == "spec-checked (no mc twin)"
        assert report.stats["conformance"]["source"] == "spec"
        assert report.stats["conformance"]["specs"] == \
            ["adaptive", "dragon", "mesi", "wi"]

    def test_arn001_fires_on_unknown_msgtype(self):
        from repro.lint import default_root
        sim = extract_sim(default_root())
        bad = {"bogus": ProtocolDecl(name="bogus", mc_twin=False, line=1,
                                     handlers={"NOT_A_MSG": ["_x"]})}
        findings = list(check_arena(sim, bad))
        assert [f.check_id for f in findings] == ["ARN001"]

    def test_real_tables_are_clean(self):
        from repro.lint import default_root
        root = default_root()
        assert list(check_arena(extract_sim(root),
                                extract_protocols(root))) == []
