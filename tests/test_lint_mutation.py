"""Mutation probes for the static protocol analyzer.

Each test copies the real sources into a temp tree, seeds one defect of a
kind the linter promises to detect (a deleted handler entry, an orphaned
MsgType, a dropped mc-model transition, a stripped retry bound, an
unreachable state), and asserts ``repro.lint`` flags it with the right
check id and severity.  This is what proves the checks detect — rather
than merely describe — their defect classes.
"""

import shutil
from pathlib import Path

import pytest

from repro.lint import Severity, run_lint

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def tree(tmp_path):
    """A private, mutable copy of the repro sources."""
    root = tmp_path / "repro"
    shutil.copytree(SRC, root,
                    ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    return root


def mutate(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text, "mutation anchor %r not found in %s" % (old, rel)
    path.write_text(text.replace(old, new))


def finding_map(root):
    """``{finding key: severity}`` for a raw (un-allowlisted) run."""
    report = run_lint(root=root, use_allowlist=False)
    return {f.key: f.severity for f in report.findings}


class TestBaseline:
    def test_unmutated_tree_is_clean_under_repo_allowlist(self, tree):
        allowlist = SRC.parent.parent / "lint_allowlist.txt"
        report = run_lint(root=tree, allowlist_path=allowlist)
        assert report.findings == []
        assert report.stale_allowlist == []


class TestHandlerCoverage:
    def test_deleted_handler_entry_is_flagged(self, tree):
        # Probe: drop HOME_CHANGED from the hub dispatch table.
        mutate(tree, "protocol/hub.py",
               "            MsgType.HOME_CHANGED: self._on_home_changed,\n",
               "")
        found = finding_map(tree)
        assert found["COV003:HOME_CHANGED"] is Severity.ERROR
        assert found["COV001:sim:HOME_CHANGED"] is Severity.ERROR

    def test_orphaned_msgtype_is_flagged(self, tree):
        # Probe: declare a MsgType nothing ever sends or handles.
        mutate(tree, "network/message.py",
               '    GETS = ("GETS", False)',
               '    GETS = ("GETS", False)\n    PING = ("PING", False)')
        found = finding_map(tree)
        assert found["COV002:sim:PING"] is Severity.ERROR   # never emitted
        assert found["COV003:PING"] is Severity.ERROR       # never handled
        # ... and it has no decided model-checker status either.
        assert found["CON001:PING"] is Severity.ERROR


class TestConformance:
    def test_dropped_mc_transition_is_flagged(self, tree):
        # Probe: remove the model's HC handler (rename its method so the
        # _on_<token> dispatch no longer finds a HC transition).
        mutate(tree, "mc/model.py", "def _on_hc(", "def _dropped_hc(")
        found = finding_map(tree)
        assert found["COV001:mc:HC"] is Severity.ERROR
        assert found["CON001:HOME_CHANGED"] is Severity.ERROR

    def test_dropped_sim_emission_is_flagged(self, tree):
        # Probe: the sim's GETS path stops publishing the delegation hint
        # while the model's still does -> a model transition with no sim
        # counterpart.
        mutate(tree, "protocol/hub.py",
               "            MsgType.HOME_CHANGED: self._on_home_changed,\n",
               "")
        found = finding_map(tree)
        assert found["COV001:sim:HOME_CHANGED"] is Severity.ERROR


class TestDeadlockHeuristics:
    def test_stripped_retry_bound_is_flagged(self, tree):
        # Probe: neuter the livelock guard in _retry_miss.
        mutate(tree, "protocol/requester.py",
               "if miss.retries > self.config.protocol.max_retries:",
               "if False:")
        found = finding_map(tree)
        assert found["DLK002:NACK->GETS@_issue_miss"] is Severity.WARNING
        assert found["DLK002:NACK->GETX@_issue_miss"] is Severity.WARNING
        # The stale-hint NACK funnels into the same unbounded reissue.
        assert (found["DLK002:NACK_NOT_HOME->GETS@_issue_miss"]
                is Severity.WARNING)

    def test_intact_retry_bound_is_not_flagged(self, tree):
        found = finding_map(tree)
        assert "DLK002:NACK->GETS@_issue_miss" not in found
        assert "DLK002:NACK->GETX@_issue_miss" not in found


class TestReachability:
    def test_unreachable_state_is_flagged(self, tree):
        # Probe: a directory state no transition ever enters.
        mutate(tree, "directory/state.py",
               '    EXCL = "EXCL"',
               '    EXCL = "EXCL"\n    ZOMBIE = "ZOMBIE"')
        found = finding_map(tree)
        assert found["RCH001:DirState.ZOMBIE"] is Severity.ERROR

    def test_write_only_state_is_flagged(self, tree):
        # Probe: a line state that is assigned but never examined.  Seed a
        # store site for it so it is reachable yet undistinguishable.
        mutate(tree, "cache/line.py",
               '    MODIFIED = "M"',
               '    MODIFIED = "M"\n    TRANSIENT = "T"')
        mutate(tree, "cache/rac.py",
               "            line.kind = RacKind.VICTIM",
               "            line.kind = RacKind.VICTIM\n"
               "            line.state = LineState.TRANSIENT")
        found = finding_map(tree)
        assert found["RCH002:LineState.TRANSIENT"] is Severity.WARNING
