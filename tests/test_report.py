"""The Markdown report generator behind EXPERIMENTS.md."""

import pytest

from repro.analysis.report import (
    figure7_section,
    full_report,
    headline_section,
    table3_section,
)


class TestSections:
    def test_table3_section(self):
        text = table3_section(scale=0.25, seed=12345)
        assert text.startswith("## Table 3")
        assert "Paper's Table 3" in text
        assert "barnes" in text

    def test_headline_section(self):
        text = headline_section(scale=0.25, seed=12345)
        assert "speedup paper/ours" in text


class TestFullReport:
    @pytest.mark.slow
    def test_full_report_structure(self):
        # Tiny scale: this runs every experiment once.
        report = full_report(scale=0.2)
        for heading in ("# EXPERIMENTS", "## Table 3", "## Figure 7",
                        "## Headline", "## Figure 8", "## Figure 9",
                        "## Figure 10", "## Figure 11", "## Figure 12",
                        "Delegation-only"):
            assert heading in report
        # Code fences are balanced.
        assert report.count("```") % 2 == 0
