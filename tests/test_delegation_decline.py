"""Delegation declined when the producer table cannot free a slot.

Regression for a crash found by fault-injection fuzzing: a DELEGATE
arriving while every producer-table entry was mid-transaction used to
fall through to ``ProducerTable.insert`` and die on its full-table
ProtocolError.  The hub must instead decline — take the exclusive grant
and hand the directory straight back with an UNDELE.
"""

import pytest

from repro.common import enhanced
from repro.directory import DirectoryEntry, DirState
from repro.network import Message, MsgType
from repro.protocol.transactions import BusyKind, BusyRecord, MissKind, \
    OutstandingMiss
from repro.sim import System

LINE = 0x100000


def make_system():
    return System(enhanced(delegate_entries=4, num_nodes=4),
                  check_coherence=False)


def stuck_busy(entry):
    entry.busy = BusyRecord(BusyKind.INVALIDATING)


def stuck_pending_updates(entry):
    entry.pending_updates = 1


def stuck_deferred(entry):
    entry.deferred_undelegate = "remote_getx"


def fill_producer_table(hub, make_stuck):
    for i in range(hub.producer_table.capacity):
        addr = 0x200000 + i * 4096
        entry = DirectoryEntry(addr=addr, state=DirState.EXCL, owner=hub.node)
        make_stuck(entry)
        hub.producer_table.insert(addr, entry)


def delegate_msg(home, producer, value=7):
    # Exactly what Home._initiate_delegation packs (Figure 4a, step 6).
    return Message(MsgType.DELEGATE, src=home, dst=producer, addr=LINE,
                   value=value,
                   payload={"dir": {"state": DirState.EXCL, "owner": producer,
                                    "sharers": set(), "value": value},
                            "hops": 2, "n_acks": 0})


@pytest.mark.parametrize("make_stuck", [stuck_busy, stuck_pending_updates,
                                        stuck_deferred],
                         ids=["busy", "pending_updates", "deferred_undele"])
def test_all_busy_table_declines_instead_of_crashing(make_stuck):
    system = make_system()
    system.address_map.place_range(LINE, 128, 0)
    hub = system.hubs[1]
    fill_producer_table(hub, make_stuck)
    # The home already moved its entry to DELE and sent the message below.
    home_entry = system.hubs[0].home_memory.entry(LINE)
    home_entry.state = DirState.DELE
    home_entry.delegate = 1
    # The DELEGATE doubles as the reply to an outstanding write miss.
    hub.miss = OutstandingMiss(addr=LINE, kind=MissKind.WRITE,
                               callback=lambda path: None, store_value=7)
    log = []
    original = system.hubs[0].dispatch

    def spy(msg):
        log.append(msg.mtype)
        original(msg)

    system.fabric.attach(0, spy)
    hub.dispatch(delegate_msg(home=0, producer=1))  # must not raise
    system.events.run()
    assert system.stats.get("dele.declined") == 1
    assert LINE not in hub.producer_table
    # The directory went straight back to the home...
    assert MsgType.UNDELE in log
    assert home_entry.state is DirState.EXCL
    assert home_entry.owner == 1
    # ...and the producer still got its exclusive grant.
    assert hub.miss is None
    assert hub.hierarchy.state_of(LINE).writable


def test_victim_available_still_accepts():
    """Sanity: one evictable entry is enough — the delegation is accepted
    after undelegating the victim, not declined."""
    system = make_system()
    system.address_map.place_range(LINE, 128, 0)
    hub = system.hubs[1]
    fill_producer_table(hub, stuck_busy)
    # Free one entry: make the oldest evictable.
    victim_addr = hub.producer_table.addresses()[0]
    hub.producer_table.lookup(victim_addr, touch=False).busy = None
    home_entry = system.hubs[0].home_memory.entry(LINE)
    home_entry.state = DirState.DELE
    home_entry.delegate = 1
    hub.miss = OutstandingMiss(addr=LINE, kind=MissKind.WRITE,
                               callback=lambda path: None, store_value=7)
    hub.dispatch(delegate_msg(home=0, producer=1))
    system.events.run()
    assert system.stats.get("dele.declined") == 0
    assert system.stats.get("dele.accepted") == 1
    assert LINE in hub.producer_table
    assert victim_addr not in hub.producer_table
