"""Workload generators: structure, determinism, sharing signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigError
from repro.sim import Barrier, Compute, Read, Write
from repro.workloads import (
    APPLICATIONS,
    ConsumerProfile,
    IterativePCWorkload,
    PCWorkloadSpec,
    application_names,
    get_workload,
    synthetic,
)
from repro.workloads.base import LINE_STRIDE
from repro.workloads.registry import get_workload as registry_get


class TestRegistry:
    def test_seven_applications(self):
        assert application_names() == ["barnes", "ocean", "em3d", "lu",
                                       "cg", "mg", "appbt"]

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            registry_get("linpack")

    @pytest.mark.parametrize("app", application_names())
    def test_every_app_builds(self, app):
        build = get_workload(app, scale=0.2).build()
        assert len(build.per_cpu_ops) == 16
        assert build.total_ops > 0
        assert build.placements

    @pytest.mark.parametrize("app", application_names())
    def test_problem_sizes_documented(self, app):
        assert APPLICATIONS[app].PROBLEM_SIZE  # Table 2 metadata


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = get_workload("barnes", seed=7, scale=0.2).build()
        b = get_workload("barnes", seed=7, scale=0.2).build()
        assert a.per_cpu_ops == b.per_cpu_ops
        assert a.placements == b.placements

    def test_different_seed_different_trace(self):
        a = get_workload("barnes", seed=7, scale=0.2).build()
        b = get_workload("barnes", seed=8, scale=0.2).build()
        assert a.per_cpu_ops != b.per_cpu_ops


class TestStructure:
    def test_barriers_aligned_across_cpus(self):
        build = get_workload("ocean", scale=0.2).build()
        barrier_seqs = [
            [op.bid for op in ops if isinstance(op, Barrier)]
            for ops in build.per_cpu_ops
        ]
        assert all(seq == barrier_seqs[0] for seq in barrier_seqs)

    def test_each_shared_line_has_single_writer(self):
        build = get_workload("lu", scale=0.3).build()
        writers = {}
        for cpu, ops in enumerate(build.per_cpu_ops):
            for op in ops:
                if isinstance(op, Write) and op.addr in build.shared_lines:
                    writers.setdefault(op.addr, set()).add(cpu)
        # LU has no false-sharing lines: exactly one writer per line.
        assert all(len(w) == 1 for w in writers.values())

    def test_cg_false_sharing_lines_have_two_writers(self):
        build = get_workload("cg", scale=0.5).build()
        writers = {}
        for cpu, ops in enumerate(build.per_cpu_ops):
            for op in ops:
                if isinstance(op, Write):
                    writers.setdefault(op.addr, set()).add(cpu)
        assert any(len(w) == 2 for w in writers.values())

    def test_placements_cover_shared_lines(self):
        build = get_workload("mg", scale=0.2).build()
        placed = {start for start, _len, _home in build.placements}
        assert set(build.shared_lines).issubset(placed)

    def test_region_stagger_spreads_cache_sets(self):
        """Regions must not all alias to the same cache sets."""
        from repro.workloads.regions import region_base
        sets = {(region_base(r) // 128) % 4096 for r in range(16)}
        assert len(sets) >= 12

    def test_line_stride_spans_pages(self):
        from repro.directory.placement import PAGE_SIZE
        assert LINE_STRIDE > PAGE_SIZE


class TestConsumerProfile:
    def test_fixed_profile(self):
        import random
        profile = ConsumerProfile(((2, 1.0),))
        assert profile.sample(random.Random(0), 15) == 2

    def test_four_plus_bucket_samples_five_or_more(self):
        import random
        profile = ConsumerProfile(((5, 1.0),))
        rng = random.Random(0)
        for _ in range(50):
            assert profile.sample(rng, 15) >= 5

    def test_capped_by_available(self):
        import random
        profile = ConsumerProfile(((5, 1.0),))
        assert profile.sample(random.Random(0), 3) == 3

    def test_distribution_roughly_matches_weights(self):
        import random
        profile = ConsumerProfile(((1, 80.0), (2, 20.0)))
        rng = random.Random(42)
        samples = [profile.sample(rng, 15) for _ in range(2000)]
        share_one = samples.count(1) / len(samples)
        assert 0.74 < share_one < 0.86


class TestSynthetic:
    def test_synthetic_builds(self):
        build = synthetic(iterations=4, lines_per_producer=2,
                          num_cpus=4).build()
        assert len(build.per_cpu_ops) == 4

    def test_consumer_count_respected(self):
        build = synthetic(iterations=2, lines_per_producer=2, consumers=3,
                          num_cpus=8, home_random_prob=0.0).build()
        readers = {}
        for cpu, ops in enumerate(build.per_cpu_ops):
            for op in ops:
                if isinstance(op, Read) and op.addr in build.shared_lines:
                    readers.setdefault(op.addr, set()).add(cpu)
        assert all(len(r) == 3 for r in readers.values())

    def test_profile_accepted(self):
        profile = ConsumerProfile(((1, 50.0), (2, 50.0)))
        build = synthetic(consumers=profile, num_cpus=8, iterations=2).build()
        assert build.total_ops > 0

    def test_needs_two_cpus(self):
        with pytest.raises(ConfigError):
            synthetic(num_cpus=1)


class TestScaling:
    def test_scale_reduces_ops(self):
        full = get_workload("em3d", scale=1.0).build()
        scaled = get_workload("em3d", scale=0.25).build()
        assert scaled.total_ops < full.total_ops

    def test_scale_keeps_minimums(self):
        spec = PCWorkloadSpec(name="t", iterations=10, lines_per_producer=2)
        tiny = spec.scaled(0.01)
        assert tiny.iterations >= 4
        assert tiny.lines_per_producer >= 1

    def test_scale_one_is_identity(self):
        spec = PCWorkloadSpec(name="t")
        assert spec.scaled(1.0) is spec


class TestProperties:
    @given(st.integers(2, 8), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_seeds_and_sizes_build(self, cpus, seed):
        build = synthetic(iterations=2, lines_per_producer=1,
                          consumers=1, num_cpus=cpus, seed=seed).build()
        assert len(build.per_cpu_ops) == cpus
        for ops in build.per_cpu_ops:
            for op in ops:
                assert isinstance(op, (Read, Write, Compute, Barrier))

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_home_random_prob_valid_placements(self, prob):
        build = synthetic(iterations=2, lines_per_producer=2,
                          home_random_prob=prob, num_cpus=4).build()
        for _start, _length, home in build.placements:
            assert 0 <= home < 4
