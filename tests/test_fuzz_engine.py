"""The fuzz pipeline: scenario generation, oracle-checked runs, the greedy
shrinker, repro artifacts with byte-for-byte replay, and the CLI.

The mutation tests are the subsystem's reason to exist: seed a coherence
bug into the requester (skip invalidation on INV), run a small corpus, and
check that an oracle fires, the failure shrinks without changing oracle,
the artifact replays bit-identically while the bug exists — and reports
"no longer reproduces" once it is fixed.
"""

import json
import os
from dataclasses import replace

import pytest

from repro import cli
from repro.common import baseline
from repro.common.errors import ConfigError
from repro.fuzz import (
    CaseResult,
    ChaosConfig,
    FuzzEngine,
    FuzzScenario,
    build_workload,
    replay_artifact,
    run_case,
    scenario_from_dict,
    scenario_to_dict,
    shrink_scenario,
)
from repro.fuzz import engine as engine_mod
from repro.harness.sweep import SweepEngine, SweepJob, job_key
from repro.network.message import Message, MsgType
from repro.protocol.requester import RequesterMixin
from repro.protocol.transactions import MissKind


class TestScenarios:
    def test_from_seed_deterministic(self):
        for seed in range(10):
            assert (FuzzScenario.from_seed(seed)
                    == FuzzScenario.from_seed(seed))

    def test_seeds_cover_the_space(self):
        scenarios = [FuzzScenario.from_seed(s) for s in range(40)]
        assert len({s.config.num_nodes for s in scenarios}) > 1
        assert any(s.chaos is None for s in scenarios)
        assert any(s.chaos is not None for s in scenarios)
        assert len({s.config.line_size for s in scenarios}) == 2
        kinds = {kind for s in scenarios for kind, _ in s.workloads}
        assert kinds == {"pc", "migratory"}
        for s in scenarios:
            assert s.config.seed == s.seed
            if s.chaos is not None:
                assert s.chaos.seed == s.seed

    def test_scale_passes_through(self):
        assert FuzzScenario.from_seed(0, scale=0.5).scale == 0.5

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_json_roundtrip(self, seed):
        scenario = FuzzScenario.from_seed(seed)
        doc = json.loads(json.dumps(scenario_to_dict(scenario)))
        restored = scenario_from_dict(doc)
        assert restored == scenario
        assert job_key(SweepJob(app="fuzz", config=restored.config)) \
            == job_key(SweepJob(app="fuzz", config=scenario.config))

    def test_unknown_format_rejected(self):
        doc = scenario_to_dict(FuzzScenario.from_seed(0))
        doc["format"] = 999
        with pytest.raises(ValueError):
            scenario_from_dict(doc)

    def test_mixed_workload_merges(self):
        scenario = next(FuzzScenario.from_seed(s) for s in range(100)
                        if len(FuzzScenario.from_seed(s).workloads) > 1)
        build = build_workload(scenario)
        assert "+" in build.name
        assert len(build.per_cpu_ops) == scenario.num_cpus


class TestRunCase:
    def test_clean_seed_passes_and_digests_stably(self):
        a = run_case(FuzzScenario.from_seed(1))
        b = run_case(FuzzScenario.from_seed(1))
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.cycles > 0 and a.events > 0

    def test_digest_tracks_content(self):
        base = CaseResult(seed=1, ok=True, cycles=10)
        assert base.digest == CaseResult(seed=1, ok=True, cycles=10).digest
        assert base.digest != CaseResult(seed=1, ok=True, cycles=11).digest

    def test_message_ids_restart_per_system(self):
        # Message numbering appears in reprs and therefore in the
        # ProtocolError text the digest covers; if the id sequence were
        # process-global, a protocol-oracle failure recorded mid-corpus
        # would never replay byte-for-byte.  System construction must
        # restart it.
        from repro.network.message import Message, MsgType
        from repro.sim.system import System

        for _ in range(2):
            Message(MsgType.GETS, src=0, dst=1, addr=0x80)  # pollute
            System(baseline(num_nodes=4), check_coherence=False)
            fresh = Message(MsgType.GETS, src=0, dst=1, addr=0x80)
            assert fresh.msg_id == 0
            assert repr(fresh) == "Msg#0(GETS 0->1 0x80)"


# -- shrinker (unit, with an injectable fake rerun) -------------------------


def shrinkable_scenario():
    return FuzzScenario(
        seed=1, config=baseline(num_nodes=6, seed=1),
        chaos=ChaosConfig(seed=1, delay_jitter=100, reorder_prob=0.3,
                          reorder_window=50, duplicate_prob=0.5,
                          force_nack_prob=0.2),
        workloads=(("pc", {"iterations": 8, "lines_per_producer": 4}),
                   ("migratory", {"lines": 4, "iterations": 8})))


def failing(oracle="coherence", seed=1):
    return CaseResult(seed=seed, ok=False, oracle=oracle, message="boom")


class TestShrinker:
    def test_everything_shrinkable_composes_monotonically(self):
        scenario = shrinkable_scenario()
        calls = []

        def rerun(candidate):
            calls.append(candidate)
            return failing()

        best, result, attempts = shrink_scenario(scenario, failing(), rerun)
        # Faults dropped entirely, one workload left, sizes at their
        # floors, node count cut — every accepted step built on the last.
        assert best.chaos is None
        assert best.workloads == (("pc", {"iterations": 4,
                                          "lines_per_producer": 1}),)
        assert best.config.num_nodes == 3
        assert result.oracle == "coherence"
        assert attempts == len(calls) == 10

    def test_different_oracle_rejected(self):
        scenario = shrinkable_scenario()
        best, result, attempts = shrink_scenario(
            scenario, failing("coherence"),
            rerun=lambda c: failing("protocol"))
        assert best == scenario
        assert result is None
        assert attempts == 11  # rejections don't compose, so one extra step

    def test_passing_candidates_rejected(self):
        scenario = shrinkable_scenario()
        best, result, _ = shrink_scenario(
            scenario, failing(),
            rerun=lambda c: CaseResult(seed=1, ok=True))
        assert best == scenario
        assert result is None

    def test_budget_caps_attempts(self):
        calls = []

        def rerun(candidate):
            calls.append(candidate)
            return failing()

        best, _result, attempts = shrink_scenario(
            shrinkable_scenario(), failing(), rerun, budget=3)
        assert attempts == len(calls) == 3
        assert best.chaos is not None  # only the first knobs got zeroed

    def test_unrunnable_candidates_skipped(self):
        def rerun(candidate):
            raise ConfigError("nope")

        best, result, attempts = shrink_scenario(
            shrinkable_scenario(), failing(), rerun)
        assert best == shrinkable_scenario()
        assert result is None
        assert attempts == 11

    def test_nothing_to_shrink(self):
        scenario = FuzzScenario(
            seed=1, config=baseline(num_nodes=3, seed=1),
            workloads=(("pc", {"iterations": 4,
                               "lines_per_producer": 1}),))
        best, result, attempts = shrink_scenario(
            scenario, failing(), rerun=lambda c: failing())
        assert best == scenario
        assert result is None
        assert attempts == 0


# -- engine + artifacts (unit, with a stubbed run_case) ---------------------


class TestEngineUnit:
    def test_failure_artifact_and_replay_lifecycle(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr(engine_mod, "run_case", lambda s: failing(
            seed=s.seed))
        engine = FuzzEngine(jobs=1, out_dir=str(tmp_path), shrink=False)
        progressed = []
        report = engine.run_corpus([3], progress=lambda seed, result:
                                   progressed.append((seed, result.ok)))
        assert progressed == [(3, False)]
        assert not report.ok and report.passed == 0
        failure = report.failures[0]
        assert failure.shrink_attempts == 0
        with open(failure.artifact_path) as fileobj:
            doc = json.load(fileobj)
        assert doc["format"] == engine_mod.ARTIFACT_FORMAT
        assert doc["seed"] == 3
        assert doc["shrunk"] == doc["original"]  # shrinking disabled
        assert doc["shrunk_digest"] == failure.shrunk_result.digest
        # Replay under the same (still-broken) runner: bit-identical.
        replay = replay_artifact(failure.artifact_path)
        assert replay.reproduced
        assert replay.expected_oracle == "coherence"
        # "Fix the bug" (runner passes now): no longer reproduces.
        monkeypatch.setattr(engine_mod, "run_case",
                            lambda s: CaseResult(seed=s.seed, ok=True))
        replay = replay_artifact(failure.artifact_path)
        assert not replay.reproduced
        assert replay.actual.ok

    def test_passing_corpus_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setattr(engine_mod, "run_case",
                            lambda s: CaseResult(seed=s.seed, ok=True))
        report = FuzzEngine(jobs=1, out_dir=str(tmp_path)).run_corpus([0, 1])
        assert report.ok and report.passed == 2
        assert os.listdir(str(tmp_path)) == []

    def test_unknown_artifact_format_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fileobj:
            json.dump({"format": 999}, fileobj)
        with pytest.raises(ValueError):
            replay_artifact(path)


# -- mutation acceptance (the real pipeline end to end) ---------------------


def broken_on_inv(self, msg):
    """The seeded bug: acknowledge the INV without invalidating anything —
    the node keeps serving stale data, a classic lost-invalidation fault."""
    collector = msg.payload.get("collector", msg.src)
    miss = self._active_miss(msg.addr, MissKind.READ)
    if miss is not None:
        miss.pending_inv = True
    self.send(Message(MsgType.INV_ACK, src=self.node, dst=collector,
                      addr=msg.addr, payload={"wasted_update": False}))


class TestMutationAcceptance:
    def test_seeded_coherence_bug_is_caught_shrunk_and_replayable(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(RequesterMixin, "_on_inv", broken_on_inv)
        engine = FuzzEngine(jobs=1, out_dir=str(tmp_path), shrink_budget=8)
        report = engine.run_corpus(range(4))
        assert not report.ok
        failure = next(f for f in report.failures
                       if f.result.oracle == "coherence")
        # Shrinking never trades the oracle for another one.
        assert failure.shrunk_result.oracle == "coherence"
        assert os.path.exists(failure.artifact_path)
        # While the bug exists the artifact replays byte-for-byte.
        replay = replay_artifact(failure.artifact_path)
        assert replay.reproduced
        assert replay.actual_digest == replay.expected_digest
        # Fix the bug: same artifact now reports a clean fresh run.
        monkeypatch.undo()
        replay = replay_artifact(failure.artifact_path)
        assert not replay.reproduced
        assert replay.actual.ok


# -- pooled execution + sweep-engine hooks ----------------------------------


class TestSweepIntegration:
    def test_pooled_corpus_matches_serial(self, tmp_path):
        seeds = [0, 1]
        serial = FuzzEngine(jobs=1, out_dir=str(tmp_path)).run_corpus(seeds)
        pooled = FuzzEngine(jobs=2, out_dir=str(tmp_path)).run_corpus(seeds)
        assert serial.ok and pooled.ok
        assert serial.passed == pooled.passed == 2

    def test_custom_runner_returns_raw_payloads(self):
        engine = SweepEngine(jobs=1, cache=False,
                             runner=_echo_runner)
        out = engine.run_many({"a": SweepJob(app="x", config=baseline(),
                                             seed=7)})
        assert out == {"a": {"seed": 7, "app": "x"}}

    def test_custom_decoder(self):
        engine = SweepEngine(jobs=1, cache=False, runner=_echo_runner,
                             decoder=lambda job, payload: payload["seed"])
        out = engine.run_many({"a": SweepJob(app="x", config=baseline(),
                                             seed=7)})
        assert out == {"a": 7}

    def test_custom_runner_shares_cache_keyed_by_identity(self, tmp_path):
        """Runner identity is part of job_key: cached custom-runner
        payloads replay, and never alias the default runner's entries."""
        the_job = SweepJob(app="x", config=baseline(), seed=7)
        engine = SweepEngine(jobs=1, cache=True, cache_dir=str(tmp_path),
                             runner=_echo_runner)
        first = engine.run_many({"a": the_job})
        assert engine.last_report.executed == 1
        second = engine.run_many({"a": the_job})
        assert engine.last_report.executed == 0
        assert engine.last_report.cached == 1
        assert second == first
        assert job_key(the_job, _echo_runner) != job_key(the_job)

    def test_cached_fuzz_corpus_replays(self, tmp_path):
        seeds = [0, 1]
        cold = FuzzEngine(jobs=1, out_dir=str(tmp_path), cache=True,
                          cache_dir=str(tmp_path / "cache"))
        first = cold.run_corpus(seeds)
        warm = FuzzEngine(jobs=1, out_dir=str(tmp_path), cache=True,
                          cache_dir=str(tmp_path / "cache"))
        second = warm.run_corpus(seeds)
        assert first.passed == second.passed
        assert [f.seed for f in first.failures] == \
               [f.seed for f in second.failures]

    def test_chaos_is_part_of_job_identity(self):
        base = SweepJob(app="x", config=baseline(), seed=1)
        chaotic = replace(base, chaos=ChaosConfig(seed=1, delay_jitter=5))
        assert job_key(base) != job_key(chaotic)
        assert job_key(chaotic) == job_key(replace(
            base, chaos=ChaosConfig(seed=1, delay_jitter=5)))


def _echo_runner(job):
    return {"seed": job.seed, "app": job.app}


# -- CLI --------------------------------------------------------------------


class TestCli:
    def test_fuzz_corpus_clean(self, tmp_path, capsys):
        code = cli.main(["fuzz", "--seeds", "2", "--out-dir",
                         str(tmp_path)])
        assert code == 0
        assert "2/2 seeds clean" in capsys.readouterr().out

    def test_fuzz_json_output(self, tmp_path, capsys):
        code = cli.main(["fuzz", "--seeds", "1", "--json", "--out-dir",
                         str(tmp_path)])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] == 1
        assert doc["failures"] == []

    def test_fuzz_failure_exit_code_and_replay(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setattr(engine_mod, "run_case", lambda s: failing(
            seed=s.seed))
        code = cli.main(["fuzz", "--seeds", "1", "--no-shrink",
                         "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out and "--replay" in out
        artifact = os.path.join(str(tmp_path), "0.json")
        assert cli.main(["fuzz", "--replay", artifact]) == 1  # still broken
        assert "REPRODUCED" in capsys.readouterr().out
        monkeypatch.setattr(engine_mod, "run_case",
                            lambda s: CaseResult(seed=s.seed, ok=True))
        assert cli.main(["fuzz", "--replay", artifact]) == 0  # fixed
        assert "no longer reproduces" in capsys.readouterr().out
