"""Static (build-time) verification of each app's sharing signature.

These analyse generated traces without running the simulator: consumer
distributions against Table 3, single-writer discipline, capacity
pressure arithmetic for the MG/Appbt stories, and Em3D's flurry shape.
"""

import pytest

from repro.sim import Read, Write
from repro.workloads import application_names, get_workload
from repro.workloads.registry import APPLICATIONS


def consumers_per_line(build):
    """addr -> set of CPUs that read it (shared PC lines only)."""
    readers = {}
    for cpu, ops in enumerate(build.per_cpu_ops):
        for op in ops:
            if isinstance(op, Read) and op.addr in build.shared_lines:
                if cpu != build.shared_lines[op.addr]:
                    readers.setdefault(op.addr, set()).add(cpu)
    return readers


def writers_per_line(build):
    writers = {}
    for cpu, ops in enumerate(build.per_cpu_ops):
        for op in ops:
            if isinstance(op, Write):
                writers.setdefault(op.addr, set()).add(cpu)
    return writers


def distribution(build):
    """Consumer-count histogram over PC lines, as percentages."""
    readers = consumers_per_line(build)
    buckets = {"1": 0, "2": 0, "3": 0, "4": 0, "4+": 0}
    for consumers in readers.values():
        count = len(consumers)
        buckets[str(count) if count <= 4 else "4+"] += 1
    total = sum(buckets.values()) or 1
    return {k: 100.0 * v / total for k, v in buckets.items()}


@pytest.fixture(scope="module")
def builds():
    return {app: get_workload(app).build() for app in application_names()}


class TestTable3Signatures:
    """The generated traces match the paper's dominant buckets."""

    def test_barnes_many_consumers(self, builds):
        dist = distribution(builds["barnes"])
        assert dist["4+"] > 45

    def test_ocean_single_consumer(self, builds):
        dist = distribution(builds["ocean"])
        assert dist["1"] > 90

    def test_em3d_one_or_two(self, builds):
        dist = distribution(builds["em3d"])
        assert dist["1"] + dist["2"] > 85

    def test_lu_single_consumer(self, builds):
        dist = distribution(builds["lu"])
        assert dist["1"] > 95

    def test_cg_reductions_read_by_many(self, builds):
        # Exclude the deliberate false-sharing lines (two writers).
        build = builds["cg"]
        writers = writers_per_line(build)
        readers = consumers_per_line(build)
        pc_lines = [a for a, w in writers.items()
                    if len(w) == 1 and a in readers]
        many = sum(1 for a in pc_lines if len(readers[a]) >= 5)
        assert many / max(len(pc_lines), 1) > 0.8

    def test_mg_mostly_single(self, builds):
        # The static union over the whole run overcounts consumers for
        # churned apps (Table 3 measures per-write episodes; the dynamic
        # detector histogram in bench_table3 matches the paper's 78%).
        dist = distribution(builds["mg"])
        assert dist["1"] > 40
        assert dist["1"] == max(dist.values())  # still the dominant bucket

    def test_appbt_many_consumers(self, builds):
        dist = distribution(builds["appbt"])
        assert dist["4+"] > 75


class TestCapacityArithmetic:
    """The capacity stories are structural facts of the traces."""

    def test_mg_exceeds_32_entry_delegate_cache(self, builds):
        """Delegated lines per producer must exceed the small table."""
        build = builds["mg"]
        # Lines homed away from their producer are the delegation
        # candidates; count them per producer.
        homes = {start: home for start, _l, home in build.placements}
        per_producer = {}
        for addr, producer in build.shared_lines.items():
            if homes.get(addr) != producer:
                per_producer[producer] = per_producer.get(producer, 0) + 1
        assert max(per_producer.values()) > 32

    def test_appbt_exceeds_32kb_rac_per_consumer(self, builds):
        """Per-consumer update volume must exceed 256 RAC lines."""
        readers = consumers_per_line(builds["appbt"])
        per_consumer = {}
        for addr, consumers in readers.items():
            for consumer in consumers:
                per_consumer[consumer] = per_consumer.get(consumer, 0) + 1
        assert max(per_consumer.values()) > 256

    def test_barnes_fits_neither_story_fully(self, builds):
        """Barnes has mild RAC pressure (its small->large gap) but fits
        the delegate cache comfortably... or thrashes mildly."""
        readers = consumers_per_line(builds["barnes"])
        per_consumer = {}
        for addr, consumers in readers.items():
            for consumer in consumers:
                per_consumer[consumer] = per_consumer.get(consumer, 0) + 1
        assert max(per_consumer.values()) > 200  # near the 256-line edge


class TestFlurry:
    def test_em3d_hot_lines_read_by_everyone(self, builds):
        build = builds["em3d"]
        readers = consumers_per_line(build)
        full_fanout = [addr for addr, c in readers.items() if len(c) >= 15]
        assert len(full_fanout) >= APPLICATIONS["em3d"].SPEC.hot_lines

    def test_hot_lines_homed_away_from_writer(self, builds):
        build = builds["em3d"]
        homes = {start: home for start, _l, home in build.placements}
        readers = consumers_per_line(build)
        for addr, consumers in readers.items():
            if len(consumers) >= 15:  # a hot line
                assert homes[addr] != build.shared_lines[addr]


class TestWriterDiscipline:
    @pytest.mark.parametrize("app", ["barnes", "ocean", "em3d", "lu", "mg",
                                     "appbt"])
    def test_pc_lines_have_exactly_one_writer(self, builds, app):
        writers = writers_per_line(builds[app])
        shared = builds[app].shared_lines
        for addr, writer_set in writers.items():
            if addr in shared:
                assert len(writer_set) == 1, (app, hex(addr))
