"""Speculative update scenarios (paper §2.4)."""

import pytest

from repro.common import small
from repro.sim import Barrier, Compute, Read, System, Write

from test_protocol_delegation import LINE, pc_ops


@pytest.fixture
def upd4():
    return small(num_nodes=4)


class TestDelayedIntervention:
    def test_intervention_fires_after_delay(self, upd4):
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=8))
        assert res.stats.get("update.intervention", 0) >= 1

    def test_updates_pushed_to_previous_consumers(self, upd4):
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=10))
        assert res.stats.get("update.sent", 0) >= 1
        assert res.stats.get("msg.sent.UPDATE", 0) >= 1

    def test_updates_convert_remote_misses_to_local(self, upd4):
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=10))
        assert res.stats.get("hit.rac_update", 0) >= 1
        assert res.stats.get("miss.local", 0) >= 1

    def test_every_update_acknowledged(self, upd4):
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=10))
        assert (res.stats.get("msg.sent.UPDATE_ACK", 0)
                == res.stats.get("msg.sent.UPDATE", 0))

    def test_zero_delay_still_correct(self, upd4):
        cfg = upd4.with_protocol(intervention_delay=0)
        system = System(cfg)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=8))
        assert res.cycles > 0  # coherence checker active throughout

    def test_huge_delay_means_no_updates(self, upd4):
        cfg = upd4.with_protocol(intervention_delay=10 ** 9)
        system = System(cfg)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=8))
        assert res.stats.get("update.sent", 0) == 0

    def test_write_burst_interrupted_by_short_delay(self, upd4):
        """A too-short delay downgrades mid-burst, causing extra upgrade
        misses (the paper's Figure 9 low-end effect)."""
        def burst_ops(delay_cfg):
            ops = [[] for _ in range(4)]
            bid = 0
            for _ in range(6):
                for _ in range(4):
                    ops[1].append(Write(LINE))
                    ops[1].append(Compute(40))
                for s in ops:
                    s.append(Barrier(bid))
                bid += 1
                ops[2].append(Compute(300))
                ops[2].append(Read(LINE))
                for s in ops:
                    s.append(Barrier(bid))
                bid += 1
            return ops

        short = System(upd4.with_protocol(intervention_delay=5))
        short.address_map.place_range(LINE, 128, 0)
        res_short = short.run(burst_ops(5))
        long = System(upd4.with_protocol(intervention_delay=500))
        long.address_map.place_range(LINE, 128, 0)
        res_long = long.run(burst_ops(500))
        assert (res_short.stats.get("miss.write", 0)
                >= res_long.stats.get("miss.write", 0))


class TestHomeSelfUpdates:
    def test_updates_fire_when_producer_is_home(self, upd4):
        """First-touch places boundary data at the producer: no delegation
        possible or needed, updates must still fire."""
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 1)  # home == producer 1
        res = system.run(pc_ops(iters=10))
        assert res.stats.get("dele.delegate", 0) == 0
        assert res.stats.get("update.sent", 0) >= 1
        assert res.stats.get("hit.rac_update", 0) >= 1


class TestUpdateAccuracy:
    def test_wasted_updates_counted_when_consumer_leaves(self, upd4):
        """Consumers that stop reading keep receiving updates for a while;
        those updates are invalidated unconsumed and counted wasted."""
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [[] for _ in range(4)]
        bid = 0
        for it in range(12):
            ops[1].append(Write(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
            if it < 5:  # consumer 2 reads only in early iterations
                ops[2].append(Compute(300))
                ops[2].append(Read(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
        res = system.run(ops)
        assert res.stats.get("update.wasted", 0) >= 1

    def test_multiple_consumers_all_updated(self, upd4):
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=10, consumers=(2, 3)))
        # Steady state pushes one update per consumer per write.
        assert res.stats.get("update.sent", 0) >= 6
        assert res.stats.get("update.consumed", 0) >= 4


class TestSequentialConsistencyUnderUpdates:
    def test_interleaved_write_read_stress(self, upd4):
        """Dense interleaving with updates on; the online checker would
        raise on any stale read."""
        system = System(upd4)
        system.address_map.place_range(LINE, 128, 0)
        ops = [[] for _ in range(4)]
        bid = 0
        for it in range(15):
            ops[1].append(Write(LINE))
            ops[1].append(Compute(20 + 7 * (it % 5)))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
            for consumer in (0, 2, 3):
                ops[consumer].append(Compute(10 + 13 * consumer))
                ops[consumer].append(Read(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
        res = system.run(ops)
        assert res.stats.get("update.sent", 0) > 0
        assert res.cycles > 0
