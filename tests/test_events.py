"""Event queue: ordering, determinism, run limits."""

import pytest

from repro.common import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        ev = EventQueue()
        log = []
        ev.schedule(30, log.append, "c")
        ev.schedule(10, log.append, "a")
        ev.schedule(20, log.append, "b")
        ev.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        ev = EventQueue()
        log = []
        for tag in "abcde":
            ev.schedule(5, log.append, tag)
        ev.run()
        assert log == list("abcde")

    def test_now_advances(self):
        ev = EventQueue()
        seen = []
        ev.schedule(7, lambda: seen.append(ev.now))
        ev.schedule(19, lambda: seen.append(ev.now))
        ev.run()
        assert seen == [7, 19]

    def test_zero_delay_allowed(self):
        ev = EventQueue()
        fired = []
        ev.schedule(0, fired.append, 1)
        ev.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        ev = EventQueue()
        with pytest.raises(ValueError):
            ev.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        ev = EventQueue()
        ev.schedule(10, lambda: None)
        ev.run()
        with pytest.raises(ValueError):
            ev.schedule_at(5, lambda: None)

    def test_events_scheduled_during_run(self):
        ev = EventQueue()
        log = []

        def first():
            log.append("first")
            ev.schedule(5, lambda: log.append("nested"))

        ev.schedule(1, first)
        ev.run()
        assert log == ["first", "nested"]


class TestRunLimits:
    def test_max_events(self):
        ev = EventQueue()
        for _ in range(10):
            ev.schedule(1, lambda: None)
        fired = ev.run(max_events=4)
        assert fired == 4
        assert ev.pending == 6

    def test_max_cycles(self):
        ev = EventQueue()
        log = []
        ev.schedule(10, log.append, "early")
        ev.schedule(100, log.append, "late")
        ev.run(max_cycles=50)
        assert log == ["early"]
        assert ev.pending == 1

    def test_max_cycles_advances_now_to_cap(self):
        # When the run stops at the cycle cap, simulated time must land on
        # the cap itself, not on the last event that happened to fire —
        # callers add wall-clock-style deltas to ``now`` after a capped run.
        ev = EventQueue()
        ev.schedule(10, lambda: None)
        ev.schedule(100, lambda: None)
        ev.run(max_cycles=50)
        assert ev.now == 50
        assert ev.pending == 1

    def test_max_cycles_never_rewinds_now(self):
        ev = EventQueue()
        ev.schedule(40, lambda: None)
        ev.schedule(100, lambda: None)
        ev.run(max_cycles=50)
        assert ev.now == 50
        # A cap below the current time must not move the clock backwards.
        ev.schedule(60, lambda: None)
        ev.run(max_cycles=20)
        assert ev.now == 50

    def test_step_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_processed_counter(self):
        ev = EventQueue()
        for _ in range(3):
            ev.schedule(1, lambda: None)
        ev.run()
        assert ev.processed == 3
