"""The protocol-graph extractor, run over the real sources."""

from pathlib import Path

import pytest

from repro.lint.extract import (SELF_TYPE, extract_mc, extract_sim,
                                extract_state_usage)
from repro.network.message import MsgType

ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def sim():
    return extract_sim(ROOT)


@pytest.fixture(scope="module")
def mc():
    return extract_mc(ROOT)


class TestSimExtraction:
    def test_vocabulary_matches_the_enum(self, sim):
        assert set(sim.messages) == {m.name for m in MsgType}

    def test_every_message_has_a_handler(self, sim):
        assert set(sim.handlers) == set(sim.messages)

    def test_requests_share_the_routing_handler(self, sim):
        assert sim.handlers["GETS"] == ["_route_request"]
        assert sim.handlers["GETX"] == ["_route_request"]

    def test_guard_pruning_separates_gets_from_getx(self, sim):
        # _route_request serves both requests; the msg.mtype guards must
        # keep their transition sets apart.
        gets_out = sim.emitted_names("GETS")
        getx_out = sim.emitted_names("GETX")
        assert "DATA_SHARED" in gets_out and "DATA_SHARED" not in getx_out
        assert "ACK_X" in getx_out and "ACK_X" not in gets_out
        assert "DELEGATE" in getx_out and "DELEGATE" not in gets_out

    def test_forward_resolves_to_the_handled_message(self, sim):
        # _forward_to_delegate re-sends Message(msg.mtype, ...): within the
        # GETS closure that is a GETS emission.
        assert "GETS" in sim.emitted_names("GETS")

    def test_local_mtype_assignment_is_resolved(self, sim):
        # _issue_miss picks mtype = MsgType.GETS / GETX into a local first.
        entry_out = {e.mtype
                     for e in sim.closure_emissions(["request_read"])}
        assert {"GETS", "GETX"} <= entry_out

    def test_scheduled_callbacks_are_followed(self, sim):
        # The delayed intervention is reached only through
        # events.schedule(..., self._fire_intervention, ...).
        assert "UPDATE" in sim.emitted_names("ACK_X")

    def test_retry_guard_detection(self, sim):
        assert sim.funcs["_retry_miss"].has_retry_guard
        assert not sim.funcs["_retry_recall"].has_retry_guard

    def test_retry_bound_propagates_along_the_call_path(self, sim):
        reissues = [e for e in sim.emissions_for("NACK")
                    if e.mtype in ("GETS", "GETX")
                    and e.func == "_issue_miss"]
        assert reissues and all(e.bounded for e in reissues)

    def test_self_type_sentinel_only_inside_closures(self, sim):
        # Raw items may carry the sentinel, resolved closures never do.
        for msg in sim.handlers:
            assert SELF_TYPE not in sim.emitted_names(msg)


class TestMcExtraction:
    def test_handlers_are_the_on_methods(self, mc):
        assert "GETS" in mc.handlers
        assert "NACKNH" in mc.handlers
        assert mc.handlers["SH_WB"] == ["_on_sh_wb"]

    def test_rules_are_entry_points_except_deliver(self, mc):
        assert "rule_cpu_read" in mc.entry_points
        assert "rule_deliver" not in mc.entry_points

    def test_cpu_records_are_not_messages(self, mc):
        # ("W", granted, needed, got) bookkeeping tuples must not be read
        # as network messages.
        assert "W" not in mc.messages

    def test_redispatch_is_not_an_emission(self, mc):
        # _on_nacknh re-dispatches by calling self._on_nack(state, (...));
        # only tuples that reach _net_add count as network emissions.
        nacknh = [e.mtype for e in mc.emissions_for("NACKNH")]
        assert "GETS" in nacknh or "GETX" in nacknh

    def test_variable_assigned_tuples_resolve(self, mc):
        # The WB race replay is built into a local before _net_add(net, x).
        assert {"GETS", "GETX"} <= mc.emitted_names("WB")

    def test_rules_emit_requests(self, mc):
        out = {e.mtype for e in mc.closure_emissions(["rule_cpu_read"])}
        assert "GETS" in out


class TestStateUsage:
    def test_all_audited_enums_found(self):
        usages = extract_state_usage(ROOT)
        assert {"DirState", "LineState", "RacKind", "BusyKind", "MissKind",
                "PathClass"} <= set(usages)

    def test_live_state_has_stores_and_reads(self):
        usages = extract_state_usage(ROOT)
        dele = usages["DirState"].members["DELE"]
        assert dele["stores"] and dele["reads"]

    def test_compare_sites_are_reads_not_stores(self):
        usages = extract_state_usage(ROOT)
        # LineState.MODIFIED appears in the dirty property comparison.
        modified = usages["LineState"].members["MODIFIED"]
        assert any("cache/line.py" in site[0]
                   for site in modified["reads"])
