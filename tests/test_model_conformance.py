"""Model <-> implementation conformance.

The model checker's guarantees only transfer to the simulator if the two
describe the same protocol.  These tests bridge them: drive the *simulator*
through small scripted scenarios, project its final quiescent state into
the model's state space, and assert the model reaches an equivalent
quiescent state — for the protocol-visible skeleton (cache states, home
directory state/owner, delegation presence, RAC residency).
"""

import pytest

from repro.common import baseline, small
from repro.directory import DirState
from repro.mc import ALL_INVARIANTS, HOME, ModelChecker, ProtocolModel
from repro.sim import Barrier, Compute, Read, System, Write

LINE = 0x100000


def project(system, addr, num_nodes):
    """Project the simulator's state for one line into model coordinates:
    (caches, home-state, owner/delegate, delegated?, racs)."""
    caches = tuple(system.hubs[n].hierarchy.state_of(addr).value
                   for n in range(num_nodes))
    entry = system.hubs[HOME].home_memory.entry(addr)
    home_state = {"UNOWNED": "U", "SHARED": "S", "EXCL": "E",
                  "DELE": "DELE"}.get(entry.state.value, entry.state.value)
    owner = entry.delegate if entry.state is DirState.DELE else entry.owner
    delegated = any(
        system.hubs[n].producer_table is not None
        and addr in system.hubs[n].producer_table
        for n in range(num_nodes))
    racs = tuple(
        (system.hubs[n].rac is not None
         and system.hubs[n].rac.probe(addr) is not None)
        for n in range(num_nodes))
    return (caches, home_state, owner, delegated, racs)


def model_quiescent_skeletons(model):
    """All quiescent model states, projected to the same coordinates."""
    seen = set()
    mc = ModelChecker(model.initial_states(), model.rules(),
                      ALL_INVARIANTS, quiescent=model.quiescent,
                      track_traces=False, canonicalize=model.canonical)

    # Walk the reachable set by re-running with a recording canonicalizer.
    def record(state):
        if model.quiescent(state):
            _cur, caches, racs, _cpus, home, deleg, _hints, _net = state
            skeleton = (
                tuple(st for st, _v in caches),
                home[0],
                home[2] if home[0] in ("E", "DELE") else home[2],
                deleg is not None,
                tuple(r is not None for r in racs),
            )
            seen.add(skeleton)
        return model.canonical(state)

    mc.canonicalize = record
    mc.run()
    return seen


@pytest.fixture(scope="module")
def full_model_skeletons():
    model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,))
    return model_quiescent_skeletons(model)


@pytest.fixture(scope="module")
def base_model_skeletons():
    model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                          enable_delegation=False)
    return model_quiescent_skeletons(model)


def run_scenario(config, ops):
    system = System(config)
    system.address_map.place_range(LINE, 128, HOME)
    system.run(ops)
    return system


def skeleton_of(system):
    caches, home_state, owner, delegated, racs = project(system, LINE, 3)
    return (caches, home_state, owner, delegated, racs)


class TestBaseConformance:
    @pytest.mark.parametrize("ops", [
        # writer 1 writes once
        [[], [Write(LINE)], []],
        # write then remote read (intervention)
        [[Barrier(0), Barrier(1)],
         [Write(LINE), Barrier(0), Barrier(1)],
         [Barrier(0), Read(LINE), Barrier(1)]],
        # read-only by node 2
        [[], [], [Read(LINE)]],
        # write, read, write again (invalidation round)
        [[Barrier(0), Barrier(1), Barrier(2)],
         [Write(LINE), Barrier(0), Barrier(1), Write(LINE), Barrier(2)],
         [Barrier(0), Read(LINE), Barrier(1), Barrier(2)]],
    ])
    def test_final_state_reachable_in_model(self, base_model_skeletons,
                                            ops):
        system = run_scenario(baseline(num_nodes=3), ops)
        assert skeleton_of(system) in base_model_skeletons


class TestFullMechanismConformance:
    def pc_ops(self, iters):
        ops = [[], [], []]
        bid = 0
        for _ in range(iters):
            ops[1].append(Write(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
            ops[2].append(Compute(300))
            ops[2].append(Read(LINE))
            for s in ops:
                s.append(Barrier(bid))
            bid += 1
        return ops

    @pytest.mark.parametrize("iters", [2, 4, 8])
    def test_producer_consumer_states_reachable(self, full_model_skeletons,
                                                iters):
        system = run_scenario(small(num_nodes=3), self.pc_ops(iters))
        assert skeleton_of(system) in full_model_skeletons

    def test_delegated_end_state_reachable(self, full_model_skeletons):
        system = run_scenario(small(num_nodes=3), self.pc_ops(8))
        skeleton = skeleton_of(system)
        assert skeleton[3]  # the scenario really did delegate
        assert skeleton in full_model_skeletons
