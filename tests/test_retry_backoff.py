"""NACK retry pacing: fixed delay (seed behaviour) vs capped exponential
backoff with seeded jitter.

Regression for a fuzzing-exposed retry storm: with a fixed retry delay two
nodes NACKed for the same line re-issue in lock-step forever (each retry
finds the line busy with the *other* node's retry).  Exponential backoff
plus per-node jitter desynchronises them while the ``fixed`` default keeps
the seed's latency behaviour bit-identical.
"""

from dataclasses import replace

import pytest

from repro.common import baseline
from repro.common.errors import ConfigError
from repro.fuzz import FuzzScenario, run_case
from repro.sim import System


def make_system(nack_retry_delay=10, retry_backoff="fixed",
                retry_backoff_cap=640, retry_jitter_frac=0.0, seed=0):
    cfg = baseline(num_nodes=4, seed=seed)
    cfg = replace(cfg, protocol=replace(
        cfg.protocol, nack_retry_delay=nack_retry_delay,
        retry_backoff=retry_backoff, retry_backoff_cap=retry_backoff_cap,
        retry_jitter_frac=retry_jitter_frac))
    return System(cfg, check_coherence=False)


class TestRetryDelay:
    def test_fixed_ignores_attempt_number(self):
        # The default policy must preserve the seed's latency exactly.
        hub = make_system(nack_retry_delay=10).hubs[0]
        assert [hub._retry_delay(n) for n in (1, 2, 5, 100)] == [10] * 4

    def test_exp_doubles_per_attempt(self):
        hub = make_system(nack_retry_delay=10, retry_backoff="exp",
                          retry_backoff_cap=640).hubs[0]
        assert [hub._retry_delay(n) for n in (1, 2, 3, 4)] == [10, 20, 40, 80]

    def test_exp_caps(self):
        hub = make_system(nack_retry_delay=10, retry_backoff="exp",
                          retry_backoff_cap=35).hubs[0]
        assert [hub._retry_delay(n) for n in (1, 2, 3, 4)] == [10, 20, 35, 35]

    def test_exp_huge_attempt_does_not_overflow(self):
        hub = make_system(nack_retry_delay=10, retry_backoff="exp",
                          retry_backoff_cap=640).hubs[0]
        assert hub._retry_delay(10_000) == 640

    def test_jitter_bounded(self):
        hub = make_system(nack_retry_delay=100,
                          retry_jitter_frac=0.5).hubs[0]
        delays = [hub._retry_delay(1) for _ in range(200)]
        assert all(100 <= d <= 150 for d in delays)
        assert len(set(delays)) > 1  # actually jitters

    def test_jitter_deterministic_across_builds(self):
        seq = [make_system(nack_retry_delay=100, retry_jitter_frac=0.5,
                           seed=7).hubs[2]._retry_delay(1)
               for _ in range(2)]
        many_a = [make_system(nack_retry_delay=100, retry_jitter_frac=0.5,
                              seed=7).hubs[2] for _ in range(2)]
        seq_a = [many_a[0]._retry_delay(n % 4 + 1) for n in range(20)]
        seq_b = [many_a[1]._retry_delay(n % 4 + 1) for n in range(20)]
        assert seq_a == seq_b
        assert seq[0] == seq[1]

    def test_nodes_draw_independent_jitter(self):
        system = make_system(nack_retry_delay=100, retry_jitter_frac=0.5)
        seq0 = [system.hubs[0]._retry_delay(1) for _ in range(50)]
        seq1 = [system.hubs[1]._retry_delay(1) for _ in range(50)]
        assert seq0 != seq1  # per-node streams: no lock-step retries

    def test_config_validation(self):
        cfg = baseline().protocol
        with pytest.raises(ConfigError):
            replace(cfg, retry_backoff="bogus")
        with pytest.raises(ConfigError):
            replace(cfg, nack_retry_delay=100, retry_backoff_cap=50)
        with pytest.raises(ConfigError):
            replace(cfg, retry_jitter_frac=1.5)


class TestPingPongRegression:
    def test_fixed_delays_are_lockstep(self):
        """Two contending nodes under the fixed policy re-issue after
        identical delays every round — the livelock precondition."""
        system = make_system(nack_retry_delay=20)
        a, b = system.hubs[1], system.hubs[2]
        assert all(a._retry_delay(n) == b._retry_delay(n)
                   for n in range(1, 10))

    def test_backoff_with_jitter_desynchronizes(self):
        system = make_system(nack_retry_delay=20, retry_backoff="exp",
                             retry_backoff_cap=640, retry_jitter_frac=0.5)
        a, b = system.hubs[1], system.hubs[2]
        delays_a = [a._retry_delay(n) for n in range(1, 10)]
        delays_b = [b._retry_delay(n) for n in range(1, 10)]
        assert delays_a != delays_b

    @pytest.mark.parametrize("backoff,jitter", [("fixed", 0.0),
                                                ("exp", 0.5)])
    def test_contended_workload_completes(self, backoff, jitter):
        """A hot-line storm (everyone hammering a few lines) drains under
        both policies and trips none of the fuzz oracles."""
        cfg = baseline(num_nodes=4, seed=3)
        cfg = replace(cfg, protocol=replace(
            cfg.protocol, nack_retry_delay=5, retry_backoff=backoff,
            retry_jitter_frac=jitter))
        storm = ("pc", {"iterations": 6, "lines_per_producer": 1,
                        "consumers": 2, "neighbor_consumers": False,
                        "home_random_prob": 0.0, "consumer_churn": 0.0,
                        "compute": 0, "op_gap": 1, "hot_lines": 3,
                        "false_share_pairs": 2})
        scenario = FuzzScenario(seed=3, config=cfg, workloads=(storm,))
        result = run_case(scenario)
        assert result.ok, result.message
        assert result.cycles > 0
