"""The ``repro lint`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError


class TestLintCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings above the allowlist" in out
        assert "allowlisted" in out

    def test_json_output(self, capsys):
        assert main(["lint", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 0
        assert doc["allowlisted"]

    def test_sarif_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "lint.sarif"
        assert main(["lint", "--sarif", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_no_allowlist_gates(self, capsys):
        # Raw mode surfaces the reviewed heuristic findings; the old
        # conformance gaps (e.g. CON001:WB_ACK) are now justified inside
        # the specs and must NOT reappear.  The survivors are warnings,
        # so they only gate below the default threshold.
        assert main(["lint", "--no-allowlist", "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "DLK001:cycle:GETS" in out
        assert "WB_ACK" not in out
        assert "CON003" not in out
        assert "CON004" not in out

    def test_fail_on_threshold(self, capsys):
        # The raw warnings only gate once the threshold is lowered.
        assert main(["lint", "--no-allowlist", "--fail-on", "note"]) == 1
        capsys.readouterr()

    def test_no_allowlist_default_threshold_passes(self, capsys):
        # With conformance gaps spec-justified, raw mode has no errors.
        assert main(["lint", "--no-allowlist"]) == 0
        capsys.readouterr()

    def test_verbose_lists_allowlisted(self, capsys):
        assert main(["lint", "--verbose"]) == 0
        assert "DLK001:cycle:GETS" in capsys.readouterr().out

    def test_report_names_conformance_source(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "conformance source: guarded-action specs" in out
        assert "mesi: conformance-checked (generated mc twin)" in out
        assert "adaptive: conformance-checked (mc twin)" in out
        assert "wi: spec-checked (no mc twin)" in out

    def test_broken_allowlist_is_a_config_error(self, tmp_path):
        bad = tmp_path / "allow.txt"
        bad.write_text("COV001:sim:GETS\n")  # no justification
        with pytest.raises(ConfigError):
            main(["lint", "--allowlist", str(bad)])
