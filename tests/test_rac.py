"""Remote Access Cache: victim, update and surrogate-memory roles."""

import pytest

from repro.cache import CacheCapacityError, RacKind, RemoteAccessCache
from repro.common import CacheConfig, Stats
from repro.common.rng import stream


@pytest.fixture
def rac_and_stats():
    stats = Stats()
    cfg = CacheConfig(4096, 4, latency=12, replacement="random")
    rac = RemoteAccessCache(cfg, rng=stream(1, "rac"), stats=stats)
    return rac, stats


class TestVictimRole:
    def test_victim_insert_and_read(self, rac_and_stats):
        rac, _ = rac_and_stats
        rac.insert_victim(0, value=5)
        line = rac.lookup_data(0)
        assert line.value == 5
        assert line.kind is RacKind.VICTIM

    def test_victim_declines_on_pinned_set(self, rac_and_stats):
        rac, stats = rac_and_stats
        sets = 4096 // 128 // 4
        for i in range(4):
            rac.pin_delegated(i * sets * 128, value=i)
        rac.insert_victim(4 * sets * 128, value=9)
        assert 4 * sets * 128 not in rac
        assert stats.get("rac.victim_declined") == 1


class TestUpdateRole:
    def test_update_consumption_accounting(self, rac_and_stats):
        rac, stats = rac_and_stats
        rac.insert_update(0, value=7)
        assert stats.get("update.consumed") == 0
        rac.lookup_data(0)
        assert stats.get("update.consumed") == 1
        rac.lookup_data(0)  # second read does not double count
        assert stats.get("update.consumed") == 1

    def test_unconsumed_update_eviction_counts_wasted(self, rac_and_stats):
        rac, stats = rac_and_stats
        rac.insert_update(0, value=7)
        rac.invalidate(0)
        assert stats.get("update.wasted") == 1

    def test_consumed_update_eviction_not_wasted(self, rac_and_stats):
        rac, stats = rac_and_stats
        rac.insert_update(0, value=7)
        rac.lookup_data(0)
        rac.invalidate(0)
        assert stats.get("update.wasted") == 0

    def test_update_declined_when_set_pinned(self, rac_and_stats):
        rac, stats = rac_and_stats
        sets = 4096 // 128 // 4
        for i in range(4):
            rac.pin_delegated(i * sets * 128, value=i)
        result = rac.insert_update(4 * sets * 128, value=9)
        assert result is False
        assert stats.get("rac.update_declined") == 1


class TestSurrogateMemoryRole:
    def test_pin_and_update_value(self, rac_and_stats):
        rac, _ = rac_and_stats
        rac.pin_delegated(0, value=1)
        rac.update_value(0, 2)
        line = rac.probe(0)
        assert line.value == 2
        assert line.pinned
        assert line.dirty

    def test_can_pin(self, rac_and_stats):
        rac, _ = rac_and_stats
        sets = 4096 // 128 // 4
        for i in range(4):
            rac.pin_delegated(i * sets * 128, value=i)
        assert not rac.can_pin(4 * sets * 128)
        assert rac.can_pin(128)

    def test_pin_full_set_raises(self, rac_and_stats):
        rac, _ = rac_and_stats
        sets = 4096 // 128 // 4
        for i in range(4):
            rac.pin_delegated(i * sets * 128, value=i)
        with pytest.raises(CacheCapacityError):
            rac.pin_delegated(4 * sets * 128, value=9)

    def test_unpin_becomes_victim(self, rac_and_stats):
        rac, _ = rac_and_stats
        rac.pin_delegated(0, value=1)
        line = rac.unpin(0)
        assert not line.pinned
        assert line.kind is RacKind.VICTIM

    def test_pinned_conflicts_lists_same_set(self, rac_and_stats):
        rac, _ = rac_and_stats
        sets = 4096 // 128 // 4
        rac.pin_delegated(0, value=1)
        rac.pin_delegated(sets * 128, value=2)   # same set as 0
        rac.insert_victim(2 * sets * 128, value=3)  # unpinned, same set
        conflicts = rac.pinned_conflicts(3 * sets * 128)
        assert sorted(conflicts) == [0, sets * 128]

    def test_invalidate_removes_pinned(self, rac_and_stats):
        rac, _ = rac_and_stats
        rac.pin_delegated(0, value=1)
        assert rac.invalidate(0) is not None
        assert 0 not in rac
