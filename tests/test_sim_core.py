"""Simulator core: processor, barrier manager, system run loop."""

import pytest

from repro.common import baseline
from repro.common.errors import SimulationError
from repro.common.events import EventQueue
from repro.common.stats import Stats
from repro.sim import (
    Barrier,
    BarrierManager,
    Compute,
    Read,
    System,
    Write,
    count_ops,
)

LINE = 0x100000


class TestProcessor:
    def test_compute_advances_time(self, base4):
        res = System(base4).run([[Compute(500)]])
        assert res.cycles >= 500

    def test_ops_counted(self, base4):
        res = System(base4).run([[Compute(1), Compute(1), Compute(1)]])
        assert res.ops_executed == 3

    def test_generator_streams_supported(self, base4):
        def gen():
            for _ in range(5):
                yield Compute(10)
        res = System(base4).run([gen()])
        assert res.ops_executed == 5

    def test_unknown_op_rejected(self, base4):
        with pytest.raises(SimulationError):
            System(base4).run([["bogus"]])

    def test_addresses_aligned_to_lines(self, base4):
        """Two addresses on the same line hit the same cached line."""
        res = System(base4).run([[Read(LINE + 4), Read(LINE + 100)]],
                                placements=[(LINE, 128, 0)])
        assert res.stats.get("miss.read") == 1
        assert res.stats.get("hit.l1", 0) == 1

    def test_cpu_finish_times_recorded(self, base4):
        res = System(base4).run([[Compute(100)], [Compute(700)]])
        assert res.cpu_finish_times[0] < res.cpu_finish_times[1]


class TestBarrierManager:
    def test_release_after_all_arrive(self):
        events = EventQueue()
        manager = BarrierManager(events, participants=3, release_latency=10)
        released = []
        manager.arrive(0, 0, lambda: released.append(0))
        manager.arrive(1, 0, lambda: released.append(1))
        events.run()
        assert released == []
        manager.arrive(2, 0, lambda: released.append(2))
        events.run()
        assert sorted(released) == [0, 1, 2]

    def test_double_arrival_rejected(self):
        events = EventQueue()
        manager = BarrierManager(events, participants=3)
        manager.arrive(0, 0, lambda: None)
        with pytest.raises(SimulationError):
            manager.arrive(0, 0, lambda: None)

    def test_mixed_barrier_ids_rejected(self):
        events = EventQueue()
        manager = BarrierManager(events, participants=3)
        manager.arrive(0, 0, lambda: None)
        with pytest.raises(SimulationError):
            manager.arrive(1, 7, lambda: None)

    def test_episodes_counted(self):
        events = EventQueue()
        manager = BarrierManager(events, participants=1)
        manager.arrive(0, 0, lambda: None)
        manager.arrive(0, 1, lambda: None)
        events.run()
        assert manager.episodes == 2

    def test_stalled_nodes_reported(self):
        events = EventQueue()
        manager = BarrierManager(events, participants=2)
        manager.arrive(0, 0, lambda: None)
        assert manager.stalled_nodes == [0]

    def test_zero_participants_rejected(self):
        with pytest.raises(SimulationError):
            BarrierManager(EventQueue(), participants=0)


class TestSystem:
    def test_single_use_enforced(self, base4):
        system = System(base4)
        system.run([[Compute(1)]])
        with pytest.raises(SimulationError):
            system.run([[Compute(1)]])

    def test_too_many_streams_rejected(self, base4):
        with pytest.raises(SimulationError):
            System(base4).run([[Compute(1)] for _ in range(5)])

    def test_empty_streams_rejected(self, base4):
        """No op streams at all is a usage error, reported as such."""
        with pytest.raises(SimulationError, match="per_cpu_ops is empty"):
            System(base4).run([])

    def test_stream_container_may_be_a_generator(self, base4):
        """per_cpu_ops itself may be a one-shot iterable, not just the
        individual streams."""
        res = System(base4).run(
            iter([[Compute(10)], (Compute(10) for _ in range(3))]))
        assert res.ops_executed == 4

    def test_empty_placements_means_default_homes(self, base4):
        """placements=[] behaves exactly like placements=None."""
        explicit = System(base4)
        explicit.run([[Read(LINE)]], placements=[])
        default = System(base4)
        default.run([[Read(LINE)]])
        assert (explicit.address_map.home_of(LINE)
                == default.address_map.home_of(LINE))

    def test_stall_detected(self, base4):
        """A CPU waiting on a barrier nobody else reaches is a stall."""
        with pytest.raises(SimulationError) as err:
            System(base4).run([[Barrier(0)], [Compute(5)]])
        assert "stalled" in str(err.value)

    def test_placements_applied(self, base4):
        system = System(base4)
        system.run([[Read(LINE)]], placements=[(LINE, 128, 2)])
        assert system.address_map.home_of(LINE) == 2

    def test_deterministic_across_runs(self, base4):
        def build():
            ops = []
            for cpu in range(4):
                stream = []
                for it in range(5):
                    stream.append(Write(LINE) if cpu == 1 else Compute(13))
                    stream.append(Barrier(2 * it))
                    if cpu != 1:
                        stream.append(Read(LINE))
                    stream.append(Barrier(2 * it + 1))
                ops.append(stream)
            return ops
        res1 = System(base4).run(build(), placements=[(LINE, 128, 0)])
        res2 = System(base4).run(build(), placements=[(LINE, 128, 0)])
        assert res1.cycles == res2.cycles
        assert res1.stats == res2.stats

    def test_events_processed_reported(self, base4):
        res = System(base4).run([[Read(LINE)]])
        assert res.events_processed > 0

    def test_stat_accessor_default(self, base4):
        res = System(base4).run([[Compute(1)]])
        assert res.stat("nonexistent") == 0


class TestTraceHelpers:
    def test_count_ops(self):
        assert count_ops([Compute(1), Read(0), Write(0)]) == 3
