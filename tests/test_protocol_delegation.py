"""Directory delegation scenarios (paper §2.3)."""

import pytest

from repro.common import delegation_only, small
from repro.directory import DirState
from repro.sim import Barrier, Compute, Read, System, Write

LINE = 0x100000


def pc_ops(iters, producer=1, consumers=(2,), num_cpus=4, gap=300):
    """Build a producer-consumer op matrix with barrier phases."""
    ops = [[] for _ in range(num_cpus)]
    bid = 0
    for _ in range(iters):
        ops[producer].append(Write(LINE))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
        for consumer in consumers:
            ops[consumer].append(Compute(gap))
            ops[consumer].append(Read(LINE))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
    return ops


@pytest.fixture
def dele4():
    return delegation_only(num_nodes=4)


class TestDelegationLifecycle:
    def test_stable_pattern_triggers_delegation(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=8))
        assert res.stats.get("dele.delegate") == 1
        assert res.stats.get("dele.accepted") == 1
        assert system.hubs[0].home_memory.entry(LINE).state is DirState.DELE
        assert LINE in system.hubs[1].producer_table

    def test_no_delegation_before_saturation(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=3))
        assert res.stats.get("dele.delegate", 0) == 0

    def test_no_delegation_when_home_is_producer(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 1)  # home == producer
        res = system.run(pc_ops(iters=8))
        assert res.stats.get("dele.delegate", 0) == 0

    def test_delegate_message_carries_data(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=8))
        assert res.stats.get("msg.sent.DELEGATE") == 1

    def test_forwarding_and_hint(self, dele4):
        """After delegation, the consumer learns the new home and sends
        directly (Figure 4b)."""
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=10))
        assert res.stats.get("msg.sent.HOME_CHANGED", 0) >= 1
        # Consumer 2's hint points to producer 1.
        assert system.hubs[2].consumer_table.lookup(LINE) == 1

    def test_producer_writes_become_local_after_delegation(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(pc_ops(iters=12))
        # Producer-side writes: INV+ACK round trips only (2-hop), no more
        # 3-hop request-to-home paths in steady state.
        assert res.stats.get("miss.remote_2hop", 0) > 0


class TestUndelegation:
    def test_remote_exclusive_recalls_delegation(self, dele4):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        ops = pc_ops(iters=8)
        final_bid = 100
        for cpu, stream in enumerate(ops):
            if cpu == 3:
                stream.append(Write(LINE))  # third party wants exclusive
            stream.append(Barrier(final_bid))
        res = system.run(ops)
        total_undele = sum(v for k, v in res.stats.items()
                           if k.startswith("dele.undelegate."))
        assert total_undele >= 1
        entry = system.hubs[0].home_memory.entry(LINE)
        assert entry.state in (DirState.EXCL, DirState.SHARED,
                               DirState.UNOWNED)
        assert LINE not in system.hubs[1].producer_table

    def test_capacity_eviction_undelegates_oldest(self):
        from dataclasses import replace
        from repro.common import DelegateCacheConfig
        cfg = delegation_only(num_nodes=4)
        cfg = replace(cfg, delegate=DelegateCacheConfig(entries=1,
                                                        consumer_assoc=1))
        system = System(cfg)
        line2 = LINE + 0x100000
        system.address_map.place_range(LINE, 128, 0)
        system.address_map.place_range(line2, 128, 0)
        ops = [[] for _ in range(4)]
        bid = 0
        for _ in range(8):
            ops[1].append(Write(LINE))
            ops[1].append(Write(line2))
            for stream in ops:
                stream.append(Barrier(bid))
            bid += 1
            for addr in (LINE, line2):
                ops[2].append(Compute(200))
                ops[2].append(Read(addr))
            for stream in ops:
                stream.append(Barrier(bid))
            bid += 1
        res = system.run(ops)
        assert res.stats.get("dele.delegate", 0) >= 2
        assert res.stats.get("dele.undelegate.capacity", 0) >= 1
        assert len(system.hubs[1].producer_table) <= 1

    def test_flush_undelegates(self):
        """Evicting the delegated line from the producer's L2 returns the
        directory home (undelegation reason 2)."""
        from dataclasses import replace
        from repro.common import CacheConfig
        cfg = delegation_only(num_nodes=4)
        cfg = replace(cfg,
                      l1=CacheConfig(256, 2, latency=2),
                      l2=CacheConfig(512, 4, latency=10))  # 4-line L2
        system = System(cfg)
        system.address_map.place_range(LINE, 128, 0)
        ops = pc_ops(iters=8)
        # After delegation, the producer touches conflicting lines.
        stride = 128  # one-set L2: everything conflicts
        filler = [Write(LINE + 0x100000 + i * stride) for i in range(5)]
        final = 100
        ops[1].extend(filler)
        for stream in ops:
            stream.append(Barrier(final))
        res = system.run(ops)
        assert res.stats.get("dele.undelegate.flush", 0) >= 1

    def test_detector_reset_after_undelegation(self, dele4):
        """Re-delegation requires re-detection from scratch."""
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        ops = pc_ops(iters=8)
        final = 100
        for cpu, stream in enumerate(ops):
            if cpu == 3:
                stream.append(Write(LINE))
            stream.append(Barrier(final))
        system.run(ops)
        det = system.hubs[0].dircache.lookup(LINE, create=False)
        if det is not None:
            assert not det.marked_pc


class TestRecallRacesInFlightDelegate:
    """Regression: a recall (UNDELE_REQ) can overtake the DELEGATE it is
    recalling.

    The home pays the DRAM latency before the DELEGATE leaves, so a
    third-party GETX arriving inside that window parks at the home
    (busy=UNDELEGATE) and sends a recall that reaches the producer before
    the delegation does.  The producer has no producer-table entry yet; it
    must answer "busy" (its outstanding write miss proves a DELEGATE may
    be in flight to it), not "gone" — a "gone" reply makes the home wait
    forever for a voluntary UNDELE that will never come, stalling the
    parked request and livelocking every later requester.
    """

    def _racing_ops(self, delay):
        # Three warm-up producer/consumer phases saturate the detector;
        # the fourth producer write triggers delegation.  Node 3 writes
        # the same line ``delay`` cycles into the DRAM window with no
        # barrier in between, so its GETX races the in-flight DELEGATE.
        ops = pc_ops(iters=3)
        bid = 6
        ops[1].append(Write(LINE))
        ops[3].append(Compute(delay))
        ops[3].append(Write(LINE))
        for stream in ops:
            stream.append(Barrier(bid))
        return ops

    @pytest.mark.parametrize("delay", [0, 60, 120, 180])
    def test_third_party_write_during_delegate_flight(self, dele4, delay):
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        res = system.run(self._racing_ops(delay))
        # The delegation happened and was recalled; nobody stalled.
        assert res.stats.get("dele.delegate", 0) >= 1
        assert LINE not in system.hubs[1].producer_table
        entry = system.hubs[0].home_memory.entry(LINE)
        assert entry.state is not DirState.DELE


class TestStaleHints:
    def test_stale_hint_bounced_and_dropped(self, dele4):
        """A consumer-table hint surviving undelegation gets NACK_NOT_HOME
        and the request retries at the real home."""
        system = System(dele4)
        system.address_map.place_range(LINE, 128, 0)
        ops = pc_ops(iters=8)
        final = 100
        for cpu, stream in enumerate(ops):
            if cpu == 3:
                stream.append(Write(LINE))   # forces undelegation
            if cpu == 2:
                stream.append(Compute(4000))
                stream.append(Read(LINE))    # uses its now-stale hint
            stream.append(Barrier(final))
        res = system.run(ops)
        assert res.stats.get("msg.sent.NACK_NOT_HOME", 0) >= 1
        # The read still completed coherently (checker active) and the
        # stale hint is gone.
        assert system.hubs[2].consumer_table.lookup(LINE) != 1 or \
            LINE in system.hubs[1].producer_table
