#!/usr/bin/env python
"""Where does the traffic go?  Decompose one application's network
messages by class (demand, coherence, writeback, flow control,
delegation, speculation) on the baseline and enhanced systems.

Shows the exchange at the heart of the paper's traffic results: the
mechanisms *remove* demand traffic (reads that became local RAC hits) and
flow-control noise (the reload flurry's NACKs), and *add* speculation
traffic (updates) — profitable exactly when update accuracy is high.
"""

import sys

from repro import application_names, baseline, large, run_app
from repro.analysis import render_table
from repro.analysis.traffic import TRAFFIC_CLASSES, breakdown, compare_breakdowns


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    if app not in application_names():
        raise SystemExit("unknown app %r" % app)

    base_run = run_app(app, baseline(), scale=scale)
    enh_run = run_app(app, large(), scale=scale)
    base = breakdown(base_run.stats)
    enh = breakdown(enh_run.stats)
    delta = compare_breakdowns(base, enh)

    rows = []
    for cls in TRAFFIC_CLASSES:
        rows.append([cls, base.messages[cls], enh.messages[cls],
                     "%+d" % delta[cls],
                     "%.1f%%" % (100 * enh.share(cls))])
    rows.append(["TOTAL", base.total_messages, enh.total_messages,
                 "%+d" % (enh.total_messages - base.total_messages), ""])
    print(render_table(
        ["class", "baseline msgs", "enhanced msgs", "delta",
         "enhanced share"],
        rows, title="Traffic anatomy: %s (scale %.2f)" % (app, scale)))

    accuracy = enh_run.metrics.update_accuracy
    print("\nupdate accuracy: %.0f%% — every consumed update removed a "
          "2-hop read\n(GETS + DATA) from the demand class."
          % (100 * accuracy))


if __name__ == "__main__":
    main()
