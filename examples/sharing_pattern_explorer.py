#!/usr/bin/env python
"""Explore how the mechanisms respond to different sharing patterns.

The paper's detector deliberately optimises only stable single-writer
producer-consumer sharing.  This example sweeps the *pattern itself* with
the synthetic workload generator — consumer count, consumer churn, false
sharing, home placement — and shows when the mechanisms engage (and,
equally important, when the conservative detector correctly refuses to).

Also prints the §5 analytical bound: speedup <= 1/(1 - update accuracy).
"""

from repro import System, baseline, small, synthetic
from repro.analysis import LatencyModel, render_table, speedup_bound


def run(label, **workload_kwargs):
    workload_kwargs.setdefault("lines_per_producer", 6)
    results = {}
    for config_name, config in (("base", baseline()), ("enh", small())):
        build = synthetic(name="explore", iterations=10, compute=500,
                          **workload_kwargs).build()
        system = System(config)
        res = system.run(build.per_cpu_ops, placements=build.placements)
        results[config_name] = res
    base, enh = results["base"], results["enh"]
    stats = enh.stats
    sent = stats.get("update.sent", 0)
    consumed = stats.get("update.consumed", 0)
    accuracy = consumed / sent if sent else 0.0
    return [
        label,
        "%.3f" % (base.cycles / enh.cycles),
        stats.get("dele.delegate", 0),
        sent,
        "%.0f%%" % (100 * accuracy) if sent else "-",
        "%.2f" % speedup_bound(min(accuracy, 0.99)) if sent else "-",
    ]


def main():
    rows = [
        run("1 consumer, stable, remote home",
            consumers=1, home_random_prob=1.0),
        run("1 consumer, stable, local home",
            consumers=1, home_random_prob=0.0),
        run("4 consumers, stable",
            consumers=4, home_random_prob=0.5),
        run("4 consumers, heavy churn",
            consumers=4, home_random_prob=0.5, consumer_churn=0.5),
        run("false sharing (2 writers/line)",
            consumers=1, home_random_prob=0.5, lines_per_producer=1,
            false_share_pairs=8),
        run("intermittent sharing (40% of phases)",
            consumers=2, home_random_prob=0.5, pc_active_fraction=0.4),
    ]
    print(render_table(
        ["pattern", "speedup", "delegations", "updates",
         "update accuracy", "1/(1-a) bound"],
        rows,
        title="Detector and update behaviour across sharing patterns"))

    print("\nAnalytical model (paper §5): predicted speedup vs remote "
          "latency for a=0.8")
    model = LatencyModel(compute_per_miss=500, remote_latency=400)
    for latency, predicted in model.speedup_vs_latency(
            0.8, [100, 200, 400, 1600, 10 ** 6]):
        print("   remote latency %8d cycles -> speedup %.3f" %
              (latency, predicted))
    print("   asymptotic bound 1/(1-0.8) = %.2f" % speedup_bound(0.8))


if __name__ == "__main__":
    main()
