#!/usr/bin/env python
"""Stencil boundary exchange: the Ocean/LU scenario from the paper's intro.

Each of 16 simulated processors owns a partition of a grid and exchanges
boundary rows with its ring neighbour every iteration — single-producer /
single-consumer sharing with first-touch placement (home == producer).

Delegation is useless here (the producer already *is* the home), which is
exactly why the paper's delegation-only ablation is a wash; the win comes
entirely from speculative updates turning the neighbour's 2-hop boundary
reads into local RAC hits.  The example sweeps the intervention delay to
show Figure 9's effect on a workload you can read in one screen.
"""

from repro import System, small, baseline, synthetic
from repro.analysis import render_table


def run(config, label):
    build = synthetic(
        name="boundary",
        iterations=12,
        lines_per_producer=8,   # boundary rows per partition
        consumers=1,            # the downstream neighbour
        neighbor_consumers=True,
        home_random_prob=0.0,   # first-touch: home == producer
        compute=1500,           # local stencil work per phase
    ).build()
    system = System(config)
    result = system.run(build.per_cpu_ops, placements=build.placements)
    m = result.stats
    return {
        "label": label,
        "cycles": result.cycles,
        "remote": m.get("miss.remote_2hop", 0) + m.get("miss.remote_3hop", 0),
        "local": m.get("miss.local", 0),
        "updates": m.get("update.sent", 0),
        "rac_hits": m.get("hit.rac_update", 0),
        "delegations": m.get("dele.delegate", 0),
    }


def main():
    rows = []
    base = run(baseline(), "baseline")
    rows.append(base)
    for delay in (5, 50, 500, 50_000):
        cfg = small().with_protocol(intervention_delay=delay)
        rows.append(run(cfg, "updates, delay=%d" % delay))

    table = []
    for row in rows:
        table.append([
            row["label"], row["cycles"],
            "%.3f" % (base["cycles"] / row["cycles"]),
            row["remote"], row["rac_hits"], row["delegations"],
        ])
    print(render_table(
        ["system", "cycles", "speedup", "remote misses",
         "RAC update hits", "delegations"],
        table, title="Boundary exchange (home == producer)"))
    print("\nNote: zero delegations in every configuration — the paper's"
          "\nupdate mechanism carries this workload entirely by itself.")


if __name__ == "__main__":
    main()
