#!/usr/bin/env python
"""Two sharing patterns, one adaptive protocol: why detection matters.

The paper's mechanisms target *producer-consumer* sharing; its related
work (Cox/Fowler, Stenström et al.) targets *migratory* sharing.  This
example runs both patterns through the enhanced system and shows the
detector doing its job: producer-consumer lines get delegated and
updated, migratory lines are left strictly alone — delegating data that
migrates with every writer would ping-pong the directory for nothing.
"""

from repro import System, baseline, small, synthetic
from repro.analysis import bar_chart
from repro.workloads import migratory


def run(config, build):
    system = System(config)
    result = system.run(build.per_cpu_ops, placements=build.placements)
    return result


def measure(name, workload):
    build = workload.build()
    base = run(baseline(), build)
    build = workload.build()
    enh = run(small(), build)
    return {
        "name": name,
        "speedup": base.cycles / enh.cycles,
        "marked": enh.stats.get("detector.marked", 0),
        "delegations": enh.stats.get("dele.delegate", 0),
        "updates": enh.stats.get("update.sent", 0),
    }


def main():
    results = [
        measure("producer-consumer",
                synthetic(iterations=10, lines_per_producer=6, consumers=2,
                          home_random_prob=0.7, compute=500)),
        measure("migratory",
                migratory(lines=8, iterations=10, compute=500)),
    ]
    for row in results:
        print("%-18s speedup %.3f  marked %d  delegations %d  updates %d"
              % (row["name"], row["speedup"], row["marked"],
                 row["delegations"], row["updates"]))
    print()
    print(bar_chart([(r["name"], r["speedup"]) for r in results],
                    title="speedup from the paper's mechanisms", vmax=1.6))
    print("\nThe migratory bar sits at 1.0: the conservative detector "
          "(writes from\ndifferent nodes reset it) never hands migratory "
          "lines to the delegation\nand update machinery.")


if __name__ == "__main__":
    main()
