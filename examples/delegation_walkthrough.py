#!/usr/bin/env python
"""A microscope on the paper's mechanisms: one cache line, one producer,
two consumers, with every protocol phase narrated.

Walks the exact lifecycle of §2.2-§2.4:

1. writes + reads train the detector until its write-repeat counter
   saturates (the line is marked producer-consumer);
2. the home delegates the directory to the producer (DELEGATE doubles as
   the exclusive reply) and consumers learn the new home via
   HOME_CHANGED hints;
3. delayed interventions downgrade the producer shortly after each write
   and push speculative UPDATEs into the consumers' RACs;
4. consumer reads that would have been 2-3 hop remote misses become local
   RAC hits.
"""

from repro import Barrier, Compute, Read, System, Write, small
from repro.directory import DirState

LINE = 0x400000
PRODUCER, CONSUMERS = 1, (2, 3)
HOME = 0
ITERATIONS = 8


def build_ops():
    ops = [[] for _ in range(4)]
    bid = 0
    for _ in range(ITERATIONS):
        ops[PRODUCER].append(Write(LINE))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
        for consumer in CONSUMERS:
            ops[consumer].append(Compute(300))
            ops[consumer].append(Read(LINE))
        for stream in ops:
            stream.append(Barrier(bid))
        bid += 1
    return ops


def main():
    config = small(num_nodes=4)
    system = System(config)
    system.address_map.place_range(LINE, 128, HOME)
    print("Line 0x%x homed at node %d; node %d produces, nodes %s consume."
          % (LINE, HOME, PRODUCER, list(CONSUMERS)))

    result = system.run(build_ops())
    stats = result.stats

    print("\n--- Detection (paper §2.2) ---")
    det = system.hubs[HOME].dircache.lookup(LINE, create=False)
    print("lines marked producer-consumer:", stats.get("detector.marked", 0))
    if det is not None:
        print("detector entry: last_writer=%d write_repeat=%d marked=%s"
              % (det.last_writer, det.write_repeat, det.marked_pc))

    print("\n--- Delegation (paper §2.3) ---")
    print("delegations:", stats.get("dele.delegate", 0))
    home_entry = system.hubs[HOME].home_memory.entry(LINE)
    print("home directory state:", home_entry.state.value,
          "(delegate = node %s)" % home_entry.delegate)
    assert home_entry.state is DirState.DELE
    print("producer-table entry at node %d: %s"
          % (PRODUCER, system.hubs[PRODUCER].producer_table.lookup(LINE)))
    for consumer in CONSUMERS:
        hint = system.hubs[consumer].consumer_table.lookup(LINE)
        print("consumer %d hint -> delegated home is node %s"
              % (consumer, hint))

    print("\n--- Speculative updates (paper §2.4) ---")
    print("delayed interventions fired:", stats.get("update.intervention", 0))
    print("updates pushed:", stats.get("update.sent", 0))
    print("updates consumed:", stats.get("update.consumed", 0))
    print("consumer reads satisfied by the local RAC:",
          stats.get("hit.rac_update", 0))

    print("\n--- Miss economics ---")
    print("local misses:       ", stats.get("miss.local", 0))
    print("2-hop remote misses:", stats.get("miss.remote_2hop", 0))
    print("3-hop remote misses:", stats.get("miss.remote_3hop", 0))
    print("execution time:     ", result.cycles, "cycles")


if __name__ == "__main__":
    main()
