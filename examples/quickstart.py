#!/usr/bin/env python
"""Quickstart: run one paper application on the baseline and enhanced
systems and compare what the mechanisms achieve.

    python examples/quickstart.py [app] [scale]

``app`` is one of the paper's seven applications (default: em3d) and
``scale`` shrinks the workload for a faster run (default: 0.5).
"""

import sys

from repro import application_names, baseline, large, run_app, small
from repro.analysis import render_table


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if app not in application_names():
        raise SystemExit("unknown app %r; choose from %s"
                         % (app, application_names()))

    print("Running %s (scale %.2f) on three system configurations..."
          % (app, scale))
    runs = {
        "baseline": run_app(app, baseline(), scale=scale),
        "32e deledc + 32K RAC": run_app(app, small(), scale=scale),
        "1K deledc + 1M RAC": run_app(app, large(), scale=scale),
    }

    base = runs["baseline"].metrics
    rows = []
    for name, run in runs.items():
        m = run.metrics
        rows.append([
            name,
            m.cycles,
            "%.3f" % (base.cycles / m.cycles),
            m.remote_misses,
            m.messages,
            m.updates_sent,
            "%.0f%%" % (100 * m.update_accuracy) if m.updates_sent else "-",
        ])
    print()
    print(render_table(
        ["system", "cycles", "speedup", "remote misses", "messages",
         "updates", "update accuracy"],
        rows, title="%s: baseline vs the paper's mechanisms" % app))

    hist = runs["baseline"].consumer_hist
    print("\nConsumer-count distribution seen by the detector (Table 3):")
    print("   " + "  ".join("%s: %.1f%%" % (b, hist[b])
                            for b in ("1", "2", "3", "4", "4+")))


if __name__ == "__main__":
    main()
