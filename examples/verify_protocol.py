#!/usr/bin/env python
"""Model-check the coherence protocol, as the paper does in §2.5.

Runs exhaustive reachability analysis over the protocol model at several
feature levels, checking the safety invariants in every reachable state:
"single writer exists", directory consistency, value coherence, and
delegation well-formedness — plus deadlock detection.

Also demonstrates the *negative* result baked into the model: with the
network's per-channel FIFO guarantee removed, the checker produces a
counterexample where a stale speculative UPDATE overtakes an INV and
resurrects dead data.
"""

import time

from repro.common.errors import DeadlockError, InvariantViolation
from repro.mc import ALL_INVARIANTS, ModelChecker, ProtocolModel


def verify(title, **model_kwargs):
    model = ProtocolModel(**model_kwargs)
    checker = ModelChecker(model.initial_states(), model.rules(),
                           ALL_INVARIANTS, quiescent=model.quiescent,
                           track_traces=False,
                           canonicalize=model.canonical)
    start = time.time()
    result = checker.run()
    print("%-42s PASS  %6d states  %7d transitions  %.2fs"
          % (title, result.states_explored, result.transitions,
             time.time() - start))


def main():
    print("Exhaustive verification (every reachable state checked):\n")
    verify("base write-invalidate protocol",
           num_nodes=3, writers=(1,), readers=(2,), enable_delegation=False)
    verify("  + directory delegation",
           num_nodes=3, writers=(1,), readers=(2,), enable_updates=False)
    verify("  + speculative updates (full mechanism)",
           num_nodes=3, writers=(1,), readers=(2,))
    verify("full mechanism, two consumers",
           num_nodes=4, writers=(1,), readers=(2, 3))
    verify("full mechanism, competing writers",
           num_nodes=3, writers=(1, 2), readers=(2,))

    print("\nNegative control: remove the fabric's per-channel FIFO "
          "ordering...")
    model = ProtocolModel(num_nodes=3, writers=(1,), readers=(2,),
                          ordered_channels=False)
    checker = ModelChecker(model.initial_states(), model.rules(),
                           ALL_INVARIANTS, quiescent=model.quiescent,
                           canonicalize=model.canonical)
    try:
        checker.run()
        print("unexpectedly verified!")
    except (InvariantViolation, DeadlockError) as err:
        print("counterexample found (%s), trace:"
              % getattr(err, "invariant_name", "deadlock"))
        for step in err.trace:
            print("   ", step)
        print("\nThe protocol relies on per-channel ordering: a stale "
              "UPDATE must not\novertake a later INV from the same "
              "producer.")


if __name__ == "__main__":
    main()
