"""The Remote Access Cache (paper §2.1).

The RAC sits in the hub and plays three roles:

1. **Victim cache** for remote data evicted from the processor caches —
   the classic DASH-era RAC role.
2. **Landing zone for speculative updates** — producers push newly written
   data here, since data cannot be pushed into processor caches.
3. **Surrogate main memory** for lines delegated to this node — one pinned
   entry per delegated line gives flushed data a home (paper: "we pin the
   corresponding cache line in the local RAC").

All RAC entries hold SHARED-permission data except DELEGATED entries, which
hold the authoritative memory image of a delegated line and may be dirty
with respect to the real home memory.
"""

from .line import LineState, RacKind
from .sa_cache import CacheCapacityError, SetAssociativeCache


class RemoteAccessCache:
    """Per-node RAC with pinning and update-consumption accounting."""

    def __init__(self, config, rng, stats):
        self._cache = SetAssociativeCache(config, rng=rng, name="RAC")
        self._stats = stats
        self.latency = config.latency

    def __len__(self):
        return len(self._cache)

    def __contains__(self, addr):
        return addr in self._cache

    def probe(self, addr):
        return self._cache.probe(addr)

    def pinned_conflicts(self, addr):
        """Addresses of pinned DELEGATED entries mapping to ``addr``'s set;
        undelegating one of them frees a pin slot for ``addr``."""
        target = self._cache.set_index(addr)
        return [line.addr for line in self._cache.lines()
                if line.pinned and line.kind is RacKind.DELEGATED
                and self._cache.set_index(line.addr) == target]

    def lines(self):
        return self._cache.lines()

    # -- read path ----------------------------------------------------------

    def lookup_data(self, addr):
        """Return the entry if it can satisfy a local read, else None.

        Reading a pushed update marks it consumed (it was useful).
        """
        line = self._cache.access(addr)
        if line is None:
            return None
        if line.kind is RacKind.UPDATE and not line.consumed:
            line.consumed = True
            self._stats.inc("update.consumed")
        return line

    # -- fill paths -----------------------------------------------------------

    def insert_victim(self, addr, value):
        """Place an evicted remote SHARED line; silently drops on conflict
        with an all-pinned set (a victim cache may always decline)."""
        try:
            evicted = self._cache.insert(addr, state=LineState.SHARED,
                                         value=value, kind=RacKind.VICTIM)
        except CacheCapacityError:
            self._stats.inc("rac.victim_declined")
            return None
        self._account_eviction(evicted)
        return evicted

    def insert_update(self, addr, value):
        """Place speculatively pushed data; returns the evicted line or None.

        Declines (returns ``False``) when the set is entirely pinned — the
        update is then simply dropped, costing only the wasted message.
        """
        try:
            evicted = self._cache.insert(addr, state=LineState.SHARED,
                                         value=value, kind=RacKind.UPDATE)
        except CacheCapacityError:
            self._stats.inc("rac.update_declined")
            return False
        self._account_eviction(evicted)
        return evicted

    def pin_delegated(self, addr, value, dirty=False):
        """Pin a surrogate-memory entry for a line delegated to this node.

        Returns the evicted line on success (possibly None); raises
        :class:`CacheCapacityError` when the set is already full of pinned
        entries, in which case the caller must refuse or undo delegation.
        """
        evicted = self._cache.insert(addr, state=LineState.SHARED, value=value,
                                     pinned=True, kind=RacKind.DELEGATED,
                                     dirty=dirty)
        self._account_eviction(evicted)
        return evicted

    def can_pin(self, addr):
        """True if a delegated entry for ``addr`` could be pinned right now."""
        return self._cache.has_room(addr)

    # -- update / removal -----------------------------------------------------

    def update_value(self, addr, value, dirty=True):
        """Refresh the data image of a resident entry (delegated writeback)."""
        line = self._cache.probe(addr)
        if line is not None:
            line.value = value
            line.dirty = dirty
        return line

    def invalidate(self, addr):
        """Coherence invalidation; returns the removed line or None."""
        line = self._cache.invalidate(addr)
        self._account_eviction(line)
        return line

    def unpin(self, addr):
        """Drop the pin on a delegated entry (it becomes a plain victim)."""
        line = self._cache.probe(addr)
        if line is not None and line.pinned:
            line.pinned = False
            line.kind = RacKind.VICTIM
        return line

    def _account_eviction(self, line):
        if line is not None and line is not False:
            if line.kind is RacKind.UPDATE and not line.consumed:
                self._stats.inc("update.wasted")
