"""A generic set-associative cache container.

Used for the L1, L2, RAC and directory cache alike: the container manages
geometry (set indexing), residency, LRU or random replacement, and pinning;
what the entries *mean* is up to the owning component.

Addresses handed to this class must be line-aligned (callers align with
``SystemConfig.line_of``); alignment is asserted to catch misuse early.

Hot-path notes: set dicts are materialised lazily (a 1 MB RAC is 2048
sets, and constructing every simulated node's empty sets dominated cold
sim construction in profiles), set indexing uses shift/mask when the
geometry allows it, and alignment is a single AND against a precomputed
mask.
"""

from operator import attrgetter

from ..common.errors import ConfigError, ReproError
from .line import CacheLine, LineState

#: LRU victim key (C-level attrgetter beats a lambda in the insert path).
_last_use_of = attrgetter("last_use")


class CacheCapacityError(ReproError):
    """An insert found every way of the target set pinned."""


class SetAssociativeCache:
    """Set-associative storage of :class:`CacheLine` records.

    Parameters
    ----------
    config:
        A :class:`repro.common.params.CacheConfig` giving geometry, latency
        and replacement policy.
    rng:
        Random stream used only when ``config.replacement == "random"``.
    name:
        Human-readable label used in error messages.
    """

    def __init__(self, config, rng=None, name="cache"):
        if config.replacement == "random" and rng is None:
            raise ConfigError("%s uses random replacement but got no rng" % name)
        self.config = config
        self.name = name
        self._rng = rng
        self._line_size = config.line_size
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        # Line size is validated as a power of two; num_sets usually is
        # one too (power-of-two cache sizes), in which case indexing is a
        # shift + mask.  Odd geometries fall back to modulo.
        self._align_mask = self._line_size - 1
        self._line_shift = self._line_size.bit_length() - 1
        num_sets = self._num_sets
        self._set_mask = (num_sets - 1 if num_sets & (num_sets - 1) == 0
                          else None)
        # One dict per set, addr -> CacheLine, materialised on first touch.
        # Dicts keep insertion order, which combined with last_use gives
        # deterministic LRU victims.
        self._sets = [None] * num_sets
        self._clock = 0
        self._random_replacement = config.replacement == "random"

    # -- geometry ---------------------------------------------------------

    def set_index(self, addr):
        """Which set a (line-aligned) address maps to."""
        if addr & self._align_mask:
            self._misaligned(addr)
        index = addr >> self._line_shift
        if self._set_mask is not None:
            return index & self._set_mask
        return index % self._num_sets

    def _misaligned(self, addr):
        raise ReproError(
            "%s: address 0x%x is not %d-byte line aligned"
            % (self.name, addr, self._line_size)
        )

    def _set_at(self, index):
        """The set dict at ``index``, creating it on first touch."""
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = {}
        return cache_set

    # -- residency --------------------------------------------------------

    def probe(self, addr):
        """Return the resident line for ``addr`` or None.  No LRU update."""
        if addr & self._align_mask:
            self._misaligned(addr)
        index = addr >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[index & mask if mask is not None
                               else index % self._num_sets]
        return cache_set.get(addr) if cache_set is not None else None

    def access(self, addr):
        """Return the resident line and mark it most recently used."""
        if addr & self._align_mask:
            self._misaligned(addr)
        index = addr >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[index & mask if mask is not None
                               else index % self._num_sets]
        line = cache_set.get(addr) if cache_set is not None else None
        if line is not None:
            self._clock += 1
            line.last_use = self._clock
        return line

    def __contains__(self, addr):
        return self.probe(addr) is not None

    def __len__(self):
        return sum(len(s) for s in self._sets if s is not None)

    def lines(self):
        """Iterate over all resident lines (set order, then insertion order)."""
        for cache_set in self._sets:
            if cache_set is not None:
                yield from cache_set.values()

    # -- replacement --------------------------------------------------------

    def has_room(self, addr):
        """True if ``addr`` could be inserted without raising (hit, free way,
        or at least one unpinned victim in its set)."""
        cache_set = self._sets[self.set_index(addr)]
        if cache_set is None:
            return True
        if addr in cache_set or len(cache_set) < self._assoc:
            return True
        return any(not line.pinned for line in cache_set.values())

    def victim_for(self, addr):
        """The line that would be evicted to make room for ``addr``.

        Returns None when no eviction is needed (hit or free way) and raises
        :class:`CacheCapacityError` when every way is pinned.
        """
        cache_set = self._sets[self.set_index(addr)]
        if cache_set is None:
            return None
        if addr in cache_set or len(cache_set) < self._assoc:
            return None
        candidates = [line for line in cache_set.values() if not line.pinned]
        if not candidates:
            raise CacheCapacityError(
                "%s: set %d is full of pinned lines" % (self.name, self.set_index(addr))
            )
        if self._random_replacement:
            return self._rng.choice(candidates)
        return min(candidates, key=_last_use_of)

    def insert(self, addr, state=LineState.SHARED, value=0, pinned=False,
               kind=None, dirty=False):
        """Install (or overwrite) a line; returns the evicted line or None.

        If ``addr`` is already resident its record is updated in place (and
        returned eviction is None).  Raises :class:`CacheCapacityError` when
        the set has no unpinned victim.
        """
        if addr & self._align_mask:
            self._misaligned(addr)
        index = addr >> self._line_shift
        mask = self._set_mask
        index = index & mask if mask is not None else index % self._num_sets
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = {}
        self._clock += 1
        existing = cache_set.get(addr)
        if existing is not None:
            existing.state = state
            existing.value = value
            existing.pinned = pinned
            existing.dirty = dirty
            if kind is not None:
                existing.kind = kind
            existing.last_use = self._clock
            return None
        evicted = None
        if len(cache_set) >= self._assoc:
            # Inlined victim_for (it would recompute the set index): same
            # candidate order, same rng draws, same error message.
            candidates = [line for line in cache_set.values()
                          if not line.pinned]
            if not candidates:
                raise CacheCapacityError(
                    "%s: set %d is full of pinned lines" % (self.name, index))
            if self._random_replacement:
                evicted = self._rng.choice(candidates)
            else:
                evicted = min(candidates, key=_last_use_of)
            del cache_set[evicted.addr]
        line = CacheLine(addr=addr, state=state, value=value, pinned=pinned,
                         dirty=dirty, last_use=self._clock)
        if kind is not None:
            line.kind = kind
        cache_set[addr] = line
        return evicted

    def invalidate(self, addr):
        """Remove ``addr`` from the cache; returns the removed line or None."""
        cache_set = self._sets[self.set_index(addr)]
        if cache_set is None:
            return None
        return cache_set.pop(addr, None)

    def clear(self):
        for cache_set in self._sets:
            if cache_set is not None:
                cache_set.clear()
