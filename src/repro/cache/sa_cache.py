"""A generic set-associative cache container.

Used for the L1, L2, RAC and directory cache alike: the container manages
geometry (set indexing), residency, LRU or random replacement, and pinning;
what the entries *mean* is up to the owning component.

Addresses handed to this class must be line-aligned (callers align with
``SystemConfig.line_of``); alignment is asserted to catch misuse early.
"""

from ..common.errors import ConfigError, ReproError
from .line import CacheLine, LineState


class CacheCapacityError(ReproError):
    """An insert found every way of the target set pinned."""


class SetAssociativeCache:
    """Set-associative storage of :class:`CacheLine` records.

    Parameters
    ----------
    config:
        A :class:`repro.common.params.CacheConfig` giving geometry, latency
        and replacement policy.
    rng:
        Random stream used only when ``config.replacement == "random"``.
    name:
        Human-readable label used in error messages.
    """

    def __init__(self, config, rng=None, name="cache"):
        if config.replacement == "random" and rng is None:
            raise ConfigError("%s uses random replacement but got no rng" % name)
        self.config = config
        self.name = name
        self._rng = rng
        self._line_size = config.line_size
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        # One dict per set, addr -> CacheLine.  Dicts keep insertion order,
        # which combined with last_use gives deterministic LRU victims.
        self._sets = [dict() for _ in range(self._num_sets)]
        self._clock = 0

    # -- geometry ---------------------------------------------------------

    def set_index(self, addr):
        """Which set a (line-aligned) address maps to."""
        self._check_aligned(addr)
        return (addr // self._line_size) % self._num_sets

    def _check_aligned(self, addr):
        if addr % self._line_size:
            raise ReproError(
                "%s: address 0x%x is not %d-byte line aligned"
                % (self.name, addr, self._line_size)
            )

    # -- residency --------------------------------------------------------

    def probe(self, addr):
        """Return the resident line for ``addr`` or None.  No LRU update."""
        return self._sets[self.set_index(addr)].get(addr)

    def access(self, addr):
        """Return the resident line and mark it most recently used."""
        line = self.probe(addr)
        if line is not None:
            self._clock += 1
            line.last_use = self._clock
        return line

    def __contains__(self, addr):
        return self.probe(addr) is not None

    def __len__(self):
        return sum(len(s) for s in self._sets)

    def lines(self):
        """Iterate over all resident lines (set order, then insertion order)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    # -- replacement --------------------------------------------------------

    def has_room(self, addr):
        """True if ``addr`` could be inserted without raising (hit, free way,
        or at least one unpinned victim in its set)."""
        cache_set = self._sets[self.set_index(addr)]
        if addr in cache_set or len(cache_set) < self._assoc:
            return True
        return any(not line.pinned for line in cache_set.values())

    def victim_for(self, addr):
        """The line that would be evicted to make room for ``addr``.

        Returns None when no eviction is needed (hit or free way) and raises
        :class:`CacheCapacityError` when every way is pinned.
        """
        cache_set = self._sets[self.set_index(addr)]
        if addr in cache_set or len(cache_set) < self._assoc:
            return None
        candidates = [line for line in cache_set.values() if not line.pinned]
        if not candidates:
            raise CacheCapacityError(
                "%s: set %d is full of pinned lines" % (self.name, self.set_index(addr))
            )
        if self.config.replacement == "random":
            return self._rng.choice(candidates)
        return min(candidates, key=lambda line: line.last_use)

    def insert(self, addr, state=LineState.SHARED, value=0, pinned=False,
               kind=None, dirty=False):
        """Install (or overwrite) a line; returns the evicted line or None.

        If ``addr`` is already resident its record is updated in place (and
        returned eviction is None).  Raises :class:`CacheCapacityError` when
        the set has no unpinned victim.
        """
        cache_set = self._sets[self.set_index(addr)]
        self._clock += 1
        existing = cache_set.get(addr)
        if existing is not None:
            existing.state = state
            existing.value = value
            existing.pinned = pinned
            existing.dirty = dirty
            if kind is not None:
                existing.kind = kind
            existing.last_use = self._clock
            return None
        evicted = None
        if len(cache_set) >= self._assoc:
            evicted = self.victim_for(addr)
            del cache_set[evicted.addr]
        line = CacheLine(addr=addr, state=state, value=value, pinned=pinned,
                         dirty=dirty, last_use=self._clock)
        if kind is not None:
            line.kind = kind
        cache_set[addr] = line
        return evicted

    def invalidate(self, addr):
        """Remove ``addr`` from the cache; returns the removed line or None."""
        cache_set = self._sets[self.set_index(addr)]
        return cache_set.pop(addr, None)

    def clear(self):
        for cache_set in self._sets:
            cache_set.clear()
