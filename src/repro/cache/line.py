"""Cache line states and the line record stored in every cache structure.

The coherence protocol uses MESI states in the private (L2) caches.  The RAC
reuses the same record type but additionally distinguishes *why* a line is
present (victim / pushed update / delegated surrogate memory) and whether a
pushed update has been consumed yet — that last bit is what lets the
evaluation report useful vs. wasted speculative updates.
"""

import enum
from dataclasses import dataclass, field


class LineState(enum.Enum):
    """MESI coherence state of a cached line."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def readable(self):
        return self is not LineState.INVALID

    @property
    def writable(self):
        return self in (LineState.EXCLUSIVE, LineState.MODIFIED)

    @property
    def dirty(self):
        return self is LineState.MODIFIED


class RacKind(enum.Enum):
    """Why a line lives in the remote access cache (paper §2.1)."""

    VICTIM = "victim"        # evicted remote data, classic RAC role
    UPDATE = "update"        # speculatively pushed by a producer (§2.4)
    DELEGATED = "delegated"  # pinned surrogate main memory for a delegated line


@dataclass
class CacheLine:
    """One line's worth of cache bookkeeping.

    ``value`` is the data payload, modelled as an integer version so the
    online coherence checker can verify that every read returns the value of
    the most recent write.  ``pinned`` lines are never chosen as eviction
    victims (used by the RAC for delegated surrogate-memory entries).
    """

    addr: int
    state: LineState = LineState.INVALID
    value: int = 0
    pinned: bool = False
    kind: RacKind = RacKind.VICTIM
    consumed: bool = False
    dirty: bool = False
    last_use: int = 0
    meta: dict = field(default_factory=dict)

    def __repr__(self):
        flags = "".join(
            flag
            for flag, on in (("P", self.pinned), ("D", self.dirty), ("C", self.consumed))
            if on
        )
        return "CacheLine(0x%x %s v%d %s)" % (
            self.addr, self.state.value, self.value, flags)
