"""Cache line states and the line record stored in every cache structure.

The coherence protocol uses MESI states in the private (L2) caches.  The RAC
reuses the same record type but additionally distinguishes *why* a line is
present (victim / pushed update / delegated surrogate memory) and whether a
pushed update has been consumed yet — that last bit is what lets the
evaluation report useful vs. wasted speculative updates.
"""

import enum


class LineState(enum.Enum):
    """MESI coherence state of a cached line."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


# readable/writable/dirty are plain per-member attributes rather than
# @property: they are checked on every processor access (hundreds of
# thousands of times per run) and a descriptor call showed up in profiles.
for _state in LineState:
    _state.readable = _state is not LineState.INVALID
    _state.writable = _state in (LineState.EXCLUSIVE, LineState.MODIFIED)
    _state.dirty = _state is LineState.MODIFIED
del _state


class RacKind(enum.Enum):
    """Why a line lives in the remote access cache (paper §2.1)."""

    VICTIM = "victim"        # evicted remote data, classic RAC role
    UPDATE = "update"        # speculatively pushed by a producer (§2.4)
    DELEGATED = "delegated"  # pinned surrogate main memory for a delegated line


class CacheLine:
    """One line's worth of cache bookkeeping.

    ``value`` is the data payload, modelled as an integer version so the
    online coherence checker can verify that every read returns the value of
    the most recent write.  ``pinned`` lines are never chosen as eviction
    victims (used by the RAC for delegated surrogate-memory entries).

    Slotted: caches allocate one per resident line and touch ``state`` /
    ``value`` / ``last_use`` on every access.
    """

    __slots__ = ("addr", "state", "value", "pinned", "kind", "consumed",
                 "dirty", "last_use")

    def __init__(self, addr, state=LineState.INVALID, value=0, pinned=False,
                 kind=RacKind.VICTIM, consumed=False, dirty=False,
                 last_use=0):
        self.addr = addr
        self.state = state
        self.value = value
        self.pinned = pinned
        self.kind = kind
        self.consumed = consumed
        self.dirty = dirty
        self.last_use = last_use

    def __repr__(self):
        flags = "".join(
            flag
            for flag, on in (("P", self.pinned), ("D", self.dirty), ("C", self.consumed))
            if on
        )
        return "CacheLine(0x%x %s v%d %s)" % (
            self.addr, self.state.value, self.value, flags)
