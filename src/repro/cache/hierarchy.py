"""The private L1/L2 cache hierarchy of one processor.

Coherence state lives on L2 lines (the paper's protocol operates on 128-byte
L2 lines); the L1 is an inclusive latency filter that only tracks presence.
Writes propagate their value to the L2 line immediately (write-through
within the private hierarchy), so the L2 line is always the single source
of truth for both state and data — which is what the hub interacts with.

The hierarchy is a passive structure: it answers hits/misses and applies
fills, downgrades and invalidations, but never initiates protocol actions.
That is the hub controller's job (:mod:`repro.protocol.hub`).
"""

from ..common.errors import ProtocolError
from .line import LineState
from .sa_cache import SetAssociativeCache


class AccessResult:
    """Outcome of a processor load/store probe.

    Slotted, not a frozen dataclass: one is built per processor memory op,
    and ``object.__setattr__``-based frozen init showed up in profiles.
    :meth:`PrivateCacheHierarchy.read` / :meth:`~PrivateCacheHierarchy.write`
    return a per-hierarchy instance that is overwritten by the next probe —
    consume it before probing again (every caller does; none retain it).
    """

    __slots__ = ("hit", "latency", "state", "value")

    def __init__(self, hit, latency, state, value=0):
        self.hit = hit
        self.latency = latency
        self.state = state
        self.value = value

    def __repr__(self):
        return ("AccessResult(hit=%r, latency=%r, state=%r, value=%r)"
                % (self.hit, self.latency, self.state, self.value))


class EvictionNotice:
    """An L2 line that fell out of the hierarchy and needs hub handling."""

    __slots__ = ("addr", "state", "value")

    def __init__(self, addr, state, value):
        self.addr = addr
        self.state = state
        self.value = value

    def __repr__(self):
        return ("EvictionNotice(addr=0x%x, state=%r, value=%r)"
                % (self.addr, self.state, self.value))


class PrivateCacheHierarchy:
    """L1 + L2 private caches with inclusion maintained L2 -> L1."""

    def __init__(self, config):
        self.config = config
        self.l1 = SetAssociativeCache(config.l1, name="L1")
        self.l2 = SetAssociativeCache(config.l2, name="L2")
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        # Reused probe result (see AccessResult docstring).
        self._result = AccessResult(False, 0, LineState.INVALID)

    # -- probes -----------------------------------------------------------

    def state_of(self, addr):
        """Coherence state of ``addr`` in this hierarchy (I if absent)."""
        line = self.l2.probe(addr)
        return line.state if line is not None else LineState.INVALID

    def value_of(self, addr):
        """Current data value of ``addr``; raises if not resident."""
        line = self.l2.probe(addr)
        if line is None:
            raise ProtocolError("value_of on non-resident line 0x%x" % addr)
        return line.value

    def read(self, addr):
        """Processor load probe: hit if the line is readable (S/E/M)."""
        result = self._result
        l2_line = self.l2.access(addr)
        if l2_line is None or not l2_line.state.readable:
            result.hit = False
            result.latency = 0
            result.state = LineState.INVALID
            result.value = 0
            return result
        l1_line = self.l1.access(addr)
        if l1_line is not None:
            result.latency = self._l1_latency
        else:
            self.l1.insert(addr, state=l2_line.state)  # refill L1 from L2
            result.latency = self._l2_latency
        result.hit = True
        result.state = l2_line.state
        result.value = l2_line.value
        return result

    def write(self, addr, value):
        """Processor store probe: hit only with write permission (E/M).

        A hit updates the L2 value in place and silently upgrades E -> M.
        A miss (including an S-state upgrade miss) changes nothing; the hub
        must obtain exclusive ownership and call :meth:`fill` / mark the
        line, after which the processor retries the store.
        """
        result = self._result
        l2_line = self.l2.access(addr)
        if l2_line is None or not l2_line.state.writable:
            result.hit = False
            result.latency = 0
            result.state = (l2_line.state if l2_line is not None
                            else LineState.INVALID)
            result.value = 0
            return result
        l2_line.state = LineState.MODIFIED
        l2_line.value = value
        l2_line.dirty = True
        l1_line = self.l1.access(addr)
        if l1_line is not None:
            # L1 only tracks presence + state; refresh state in place
            # rather than paying a full insert per write hit.
            l1_line.state = LineState.MODIFIED
            result.latency = self._l1_latency
        else:
            self.l1.insert(addr, state=LineState.MODIFIED)
            result.latency = self._l2_latency
        result.hit = True
        result.state = LineState.MODIFIED
        result.value = value
        return result

    # -- fills and external actions ----------------------------------------

    def fill(self, addr, state, value):
        """Install a line delivered by the hub; returns EvictionNotice or None.

        Inclusion: evicting an L2 line also removes any L1 copy.  Clean
        SHARED victims still produce a notice — the hub decides whether to
        drop them, place them in the RAC, or (for delegated lines) trigger
        undelegation.
        """
        if state is LineState.INVALID:
            raise ProtocolError("cannot fill 0x%x with INVALID" % addr)
        victim = self.l2.insert(addr, state=state, value=value,
                                dirty=state.dirty)
        self.l1.insert(addr, state=state)
        if victim is None:
            return None
        self.l1.invalidate(victim.addr)
        return EvictionNotice(victim.addr, victim.state, victim.value)

    def downgrade(self, addr):
        """Intervention: drop write permission, keep a SHARED copy.

        Returns the (possibly dirty) data value to be written back.  Raises
        if the line is not resident — callers must only downgrade owners.
        """
        line = self.l2.probe(addr)
        if line is None:
            raise ProtocolError("downgrade of non-resident line 0x%x" % addr)
        line.state = LineState.SHARED
        line.dirty = False
        l1_line = self.l1.probe(addr)
        if l1_line is not None:
            l1_line.state = LineState.SHARED
        return line.value

    def grant_exclusive(self, addr):
        """Upgrade a resident SHARED line to EXCLUSIVE (ACK_X reply).

        The line must be resident: upgrades are only granted to requesters
        the directory still lists as sharers, and a blocked processor cannot
        evict the line it is upgrading.
        """
        line = self.l2.probe(addr)
        if line is None:
            raise ProtocolError("exclusive grant for non-resident line 0x%x" % addr)
        line.state = LineState.EXCLUSIVE
        l1_line = self.l1.probe(addr)
        if l1_line is not None:
            l1_line.state = LineState.EXCLUSIVE

    def invalidate(self, addr):
        """Invalidation: remove the line entirely; returns (had_copy, value).

        ``value`` is meaningful only when the removed line was dirty — the
        protocol never invalidates a dirty owner without collecting data.
        """
        self.l1.invalidate(addr)
        line = self.l2.invalidate(addr)
        if line is None:
            return False, 0
        return True, line.value

    def evict(self, addr):
        """Voluntary flush of ``addr`` (used to model producer flushes).

        Returns an EvictionNotice, or None if the line was not resident.
        """
        line = self.l2.probe(addr)
        if line is None:
            return None
        self.l1.invalidate(addr)
        self.l2.invalidate(addr)
        return EvictionNotice(addr, line.state, line.value)
