"""Cache structures: generic set-associative container, L1/L2 hierarchy, RAC."""

from .hierarchy import AccessResult, EvictionNotice, PrivateCacheHierarchy
from .line import CacheLine, LineState, RacKind
from .rac import RemoteAccessCache
from .sa_cache import CacheCapacityError, SetAssociativeCache

__all__ = [
    "AccessResult",
    "EvictionNotice",
    "PrivateCacheHierarchy",
    "CacheLine",
    "LineState",
    "RacKind",
    "RemoteAccessCache",
    "CacheCapacityError",
    "SetAssociativeCache",
]
