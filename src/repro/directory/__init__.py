"""Directory layer: authoritative home state, directory cache, placement."""

from .dircache import DirectoryCache
from .placement import PAGE_SIZE, AddressMap
from .state import DirectoryEntry, DirState, HomeMemory

__all__ = [
    "DirectoryCache",
    "PAGE_SIZE",
    "AddressMap",
    "DirectoryEntry",
    "DirState",
    "HomeMemory",
]

from .formats import DirectoryFormat

__all__.append("DirectoryFormat")
