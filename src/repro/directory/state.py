"""Directory states and the per-line directory entry kept by home nodes.

The home node's memory holds the authoritative directory information for
every line it homes (SGI-style full directory in DRAM); the directory
*cache* (:mod:`repro.directory.dircache`) is a fast subset whose entries
additionally carry the producer-consumer detector bits.

Directory states:

``UNOWNED``
    No cached copies anywhere; memory is current.
``SHARED``
    One or more read-only copies; memory is current.
``EXCL``
    A single owner may hold a modified copy; memory may be stale.
``DELE``
    Directory authority is delegated to ``delegate``; requests are
    forwarded there (paper §2.3.2).

In-flight transactions (the SGI NACK/retry idiom, paper §2.3.4) are not a
separate directory state: the entry keeps its stable state and carries a
:class:`~repro.protocol.transactions.BusyRecord` in ``busy`` while a
transaction is pending, and new requests are NACKed off the record's
presence.
"""

import enum


class DirState(enum.Enum):
    UNOWNED = "UNOWNED"
    SHARED = "SHARED"
    EXCL = "EXCL"
    DELE = "DELE"


class DirectoryEntry:
    """Authoritative home-side record for one cache line.

    ``sharers`` always includes the owner while in EXCL (so the previous
    consumer set survives a SHARED -> EXCL transition, which is exactly the
    paper's "add an ownerID field and use the old sharing vector to track
    the nodes to send updates" trick — here ``owner`` is that field).

    A slotted hand-rolled class (not a dataclass): one of these exists per
    line per home, and every transaction reads and writes several fields,
    so attribute storage and construction are on the hot path.
    """

    __slots__ = ("addr", "state", "sharers", "owner", "value", "delegate",
                 "busy", "pending_updates", "deferred_undelegate",
                 "update_strikes")

    def __init__(self, addr, state=DirState.UNOWNED, sharers=None, owner=None,
                 value=0, delegate=None, busy=None, pending_updates=0,
                 deferred_undelegate=None, update_strikes=None):
        self.addr = addr
        self.state = state
        self.sharers = set() if sharers is None else sharers
        self.owner = owner
        self.value = value
        self.delegate = delegate
        self.busy = busy  # protocol-layer transaction record
        # Speculative-update bookkeeping (meaningful on delegated entries):
        # undelegation is deferred while pushed updates are unacknowledged.
        self.pending_updates = pending_updates
        self.deferred_undelegate = deferred_undelegate
        # Selective-update pruning (§2.4.2 refinement): consumers whose
        # acks reported the previous push unconsumed accumulate strikes and
        # stop receiving updates; an actual read clears the strikes.
        self.update_strikes = {} if update_strikes is None else update_strikes

    def __repr__(self):
        return ("DirectoryEntry(addr=0x%x, state=%s, sharers=%r, owner=%r, "
                "delegate=%r)" % (self.addr, self.state.value,
                                  sorted(self.sharers), self.owner,
                                  self.delegate))

    def snapshot(self):
        """A plain-dict image of directory info, as carried by DELEGATE and
        UNDELE messages (the paper's ``DirEntry`` payload)."""
        return {
            "state": self.state,
            "sharers": set(self.sharers),
            "owner": self.owner,
            "value": self.value,
        }

    def restore(self, snap):
        """Install directory info received in an UNDELE message."""
        self.state = snap["state"]
        self.sharers = set(snap["sharers"])
        self.owner = snap["owner"]
        self.value = snap["value"]
        self.delegate = None
        self.busy = None


class HomeMemory:
    """All lines homed at one node: directory entries + memory data image."""

    def __init__(self, node):
        self.node = node
        self._entries = {}

    def entry(self, addr):
        """The directory entry for ``addr`` (created UNOWNED on first use)."""
        entry = self._entries.get(addr)
        if entry is None:
            entry = DirectoryEntry(addr=addr)
            self._entries[addr] = entry
        return entry

    def known_lines(self):
        return self._entries.keys()

    def __len__(self):
        return len(self._entries)
