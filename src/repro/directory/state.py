"""Directory states and the per-line directory entry kept by home nodes.

The home node's memory holds the authoritative directory information for
every line it homes (SGI-style full directory in DRAM); the directory
*cache* (:mod:`repro.directory.dircache`) is a fast subset whose entries
additionally carry the producer-consumer detector bits.

Directory states:

``UNOWNED``
    No cached copies anywhere; memory is current.
``SHARED``
    One or more read-only copies; memory is current.
``EXCL``
    A single owner may hold a modified copy; memory may be stale.
``DELE``
    Directory authority is delegated to ``delegate``; requests are
    forwarded there (paper §2.3.2).

In-flight transactions (the SGI NACK/retry idiom, paper §2.3.4) are not a
separate directory state: the entry keeps its stable state and carries a
:class:`~repro.protocol.transactions.BusyRecord` in ``busy`` while a
transaction is pending, and new requests are NACKed off the record's
presence.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional, Set


class DirState(enum.Enum):
    UNOWNED = "UNOWNED"
    SHARED = "SHARED"
    EXCL = "EXCL"
    DELE = "DELE"


@dataclass
class DirectoryEntry:
    """Authoritative home-side record for one cache line.

    ``sharers`` always includes the owner while in EXCL (so the previous
    consumer set survives a SHARED -> EXCL transition, which is exactly the
    paper's "add an ownerID field and use the old sharing vector to track
    the nodes to send updates" trick — here ``owner`` is that field).
    """

    addr: int
    state: DirState = DirState.UNOWNED
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    value: int = 0
    delegate: Optional[int] = None
    busy: Optional[object] = None  # protocol-layer transaction record
    # Speculative-update bookkeeping (meaningful on delegated entries):
    # undelegation is deferred while pushed updates are unacknowledged.
    pending_updates: int = 0
    deferred_undelegate: Optional[str] = None
    # Selective-update pruning (§2.4.2 refinement): consumers whose acks
    # reported the previous push unconsumed accumulate strikes and stop
    # receiving updates; an actual read clears the strikes.
    update_strikes: dict = field(default_factory=dict)

    def snapshot(self):
        """A plain-dict image of directory info, as carried by DELEGATE and
        UNDELE messages (the paper's ``DirEntry`` payload)."""
        return {
            "state": self.state,
            "sharers": set(self.sharers),
            "owner": self.owner,
            "value": self.value,
        }

    def restore(self, snap):
        """Install directory info received in an UNDELE message."""
        self.state = snap["state"]
        self.sharers = set(snap["sharers"])
        self.owner = snap["owner"]
        self.value = snap["value"]
        self.delegate = None
        self.busy = None


class HomeMemory:
    """All lines homed at one node: directory entries + memory data image."""

    def __init__(self, node):
        self.node = node
        self._entries = {}

    def entry(self, addr):
        """The directory entry for ``addr`` (created UNOWNED on first use)."""
        entry = self._entries.get(addr)
        if entry is None:
            entry = DirectoryEntry(addr=addr)
            self._entries[addr] = entry
        return entry

    def known_lines(self):
        return self._entries.keys()

    def __len__(self):
        return len(self._entries)
