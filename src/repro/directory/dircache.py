"""The directory cache: a fast subset of recently shared directory entries.

Its role in this reproduction mirrors the paper's: the producer-consumer
detector bits exist *only* for lines currently resident in the directory
cache ("we only track the access histories of blocks whose directory
entries reside in the directory cache").  When an entry is evicted the
detector bits are lost — they are "not saved if the directory entry is
flushed" — so sharing-pattern detection restarts from scratch if a line
re-enters the cache.

Capacity (8K entries on SGI Altix) is configurable; MG-style workloads with
more live producer-consumer lines than the delegate cache can hold stress
exactly this hierarchy of capacities.
"""

from ..common.errors import ConfigError


class DirectoryCache:
    """Fully-associative-by-dict LRU cache of per-line detector records.

    SGI directory caches are set-associative SRAM, but at the fidelity this
    evaluation needs only *capacity* matters (what fraction of hot lines
    keep their detector bits); plain LRU over the whole capacity models
    that without set-conflict noise.
    """

    def __init__(self, entries, record_factory):
        if entries < 1:
            raise ConfigError("directory cache needs at least one entry")
        self.capacity = entries
        self._record_factory = record_factory
        self._records = {}  # addr -> record, dict order == LRU order
        self.evictions = 0

    def lookup(self, addr, create=True):
        """Return the detector record for ``addr``, refreshing its LRU slot.

        When absent and ``create`` is true a fresh record is installed
        (evicting the LRU record if at capacity); with ``create`` false,
        returns None for absent lines.
        """
        record = self._records.pop(addr, None)
        if record is None:
            if not create:
                return None
            if len(self._records) >= self.capacity:
                oldest = next(iter(self._records))
                del self._records[oldest]
                self.evictions += 1
            record = self._record_factory(addr)
        self._records[addr] = record
        return record

    def drop(self, addr):
        """Explicitly flush one entry (e.g. after undelegation)."""
        return self._records.pop(addr, None)

    def __contains__(self, addr):
        return addr in self._records

    def __len__(self):
        return len(self._records)
