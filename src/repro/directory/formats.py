"""Sharing-vector storage formats for the home directory.

The paper's SGI-style directory uses a full bit vector (one presence bit
per node — exact invalidations).  Real machines at larger scales compress
the vector, trading directory SRAM for extra invalidation traffic; this
module implements the two classic compressed formats so their interaction
with the producer-consumer mechanisms can be studied as an ablation
(``benchmarks/bench_ablation_directory.py``):

``full``
    One bit per node.  Invalidations go exactly to the sharers.
``coarse:G``
    One bit per group of G nodes.  A single sharer marks its whole group,
    so invalidations (and therefore update sets!) over-approximate by up
    to G-1 nodes per group.
``limited:K``
    K exact node pointers.  On overflow the entry degrades to
    broadcast-to-everyone until the next write resets it.

All formats are *conservative over-approximations*: they may invalidate
(and speculatively update) nodes without copies — extra traffic, never
incoherence.  The simulator keeps the exact sharer set as ground truth
and applies the format when the protocol acts on the vector, mirroring
what the hardware's lossy encoding would do.
"""

from dataclasses import dataclass

from ..common.errors import ConfigError


@dataclass(frozen=True)
class DirectoryFormat:
    """A sharing-vector encoding policy."""

    kind: str = "full"     # "full" | "coarse" | "limited"
    param: int = 0         # group size (coarse) or pointer count (limited)

    def __post_init__(self):
        if self.kind == "full":
            return
        if self.kind == "coarse":
            if self.param < 2:
                raise ConfigError("coarse vector needs group size >= 2")
        elif self.kind == "limited":
            if self.param < 1:
                raise ConfigError("limited pointers need >= 1 pointer")
        else:
            raise ConfigError("unknown directory format %r" % self.kind)

    @classmethod
    def parse(cls, spec):
        """Parse "full", "coarse:4" or "limited:2".

        Every malformed spec — unknown kind, missing/extra parameter,
        non-integer parameter ("coarse:x", "limited:2.5") — raises
        :class:`ConfigError` with a message naming the offending spec,
        never a bare ``ValueError``.
        """
        if not isinstance(spec, str):
            raise ConfigError(
                "directory format must be a string, got %r" % (spec,))
        if spec == "full":
            return cls("full", 0)
        kind, sep, param = spec.partition(":")
        if kind == "full":
            raise ConfigError(
                'directory format "full" takes no parameter (got %r)' % spec)
        if not sep or not param:
            raise ConfigError(
                "directory format %r needs a parameter: expected "
                '"coarse:G" or "limited:K"' % spec)
        if not param.isdigit():
            raise ConfigError(
                "directory format %r has a non-integer parameter %r: "
                'expected "coarse:G" or "limited:K" with a positive '
                "integer G/K" % (spec, param))
        return cls(kind, int(param))

    # -- semantics --------------------------------------------------------

    def observed_sharers(self, sharers, num_nodes):
        """The node set the hardware's encoding *reports* as sharers —
        always a superset of the true set."""
        if not sharers:
            return set()
        if self.kind == "full":
            return set(sharers)
        if self.kind == "coarse":
            group = self.param
            observed = set()
            for sharer in sharers:
                base = (sharer // group) * group
                observed.update(n for n in range(base, base + group)
                                if n < num_nodes)
            return observed
        # limited pointers: exact until overflow, then broadcast
        if len(sharers) <= self.param:
            return set(sharers)
        return set(range(num_nodes))

    def invalidation_targets(self, sharers, exclude, num_nodes):
        """Who receives INVs when ``exclude`` gains exclusive ownership."""
        return self.observed_sharers(sharers, num_nodes) - {exclude}

    def bits_per_entry(self, num_nodes):
        """Directory storage cost of the vector itself (for area studies)."""
        if self.kind == "full":
            return num_nodes
        if self.kind == "coarse":
            return -(-num_nodes // self.param)  # ceil
        import math
        pointer_bits = max(1, math.ceil(math.log2(max(num_nodes, 2))))
        return self.param * pointer_bits + 1  # +1 broadcast bit
