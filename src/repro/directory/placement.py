"""Address-to-home-node placement.

The paper places data with SGI's first-touch policy, "which tends to be
very effective in allocating data to processors that use them".  Our
workload generators know which processor logically owns each region, so
they register page homes explicitly — the same *outcome* first-touch
produces — and anything unregistered falls back to page-granularity
round-robin interleaving.
"""

from ..common.errors import ConfigError

#: Placement granularity (bytes).  SGI Altix uses 16 KB pages; any
#: power-of-two page works because workloads allocate region-aligned.
PAGE_SIZE = 4096


class AddressMap:
    """Maps line addresses to home nodes at page granularity."""

    def __init__(self, num_nodes, page_size=PAGE_SIZE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ConfigError("page size must be a power of two")
        self.num_nodes = num_nodes
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self._page_homes = {}

    def place_page(self, addr, home):
        """Pin the page containing ``addr`` to ``home`` (first-touch result)."""
        if not 0 <= home < self.num_nodes:
            raise ConfigError("home node %r out of range" % home)
        self._page_homes[addr // self.page_size] = home

    def place_range(self, start, length, home):
        """Pin every page overlapping ``[start, start+length)`` to ``home``."""
        page = start // self.page_size
        last = (start + max(length, 1) - 1) // self.page_size
        while page <= last:
            self.place_page(page * self.page_size, home)
            page += 1

    def home_of(self, addr):
        """Home node of the line containing ``addr``."""
        page = addr >> self._page_shift
        home = self._page_homes.get(page)
        if home is not None:
            return home
        return page % self.num_nodes

    def placed_pages(self):
        return dict(self._page_homes)
