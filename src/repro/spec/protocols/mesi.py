"""Guarded-action spec for the MESI arena baseline.

Unlike the adaptive spec (diffed against hand-written artifacts), this
spec *is* the model: :mod:`repro.spec.mcgen` compiles its transitions
into executable ``repro.mc`` rules, giving the MESI baseline a generated
``mc_twin``.  Guards are load-bearing — the generated model dispatches a
delivered message to exactly the transitions whose guards admit the
concrete state, and raises ``SpecExecutionError`` if none (or a
spec-declared-unreachable one) matches.  Each transition's ``effect``
names a kernel primitive in :data:`repro.spec.mcgen.EFFECTS`; every
message the kernel sends is checked at runtime against the transition's
declared ``emit`` set.

MESI deltas from the adaptive base (mirrored from ``MesiHub``):

* no delegation, updates, or read-ahead consumption — those messages are
  in ``stripped``;
* evicting a Shared line is a silent drop (no victim RAC entry);
* granting exclusivity from the Shared directory state *forgets* the
  invalidated readers (``entry.sharers = set()``) instead of preserving
  them as the paper's predicted-consumer set.
"""

from repro.spec.lang import Msg, ProtocolSpec, T

_EVICT_WHY = ("completing a miss can evict a victim line; the generated "
              "model explores evictions as the spontaneous rule_evict")
_WB_RACE_WHY = ("the owner's copy left via a writeback; the sim "
                "re-dispatches the buffered miss internally, the model "
                "re-queues it")
_WB_ACK_WHY = "the model applies writebacks atomically; no ack round-trip"

MESSAGES = (
    Msg("GETS", mc=("GETS",), role="request"),
    Msg("GETX", mc=("GETX",), role="request"),
    Msg("DATA_SHARED", mc=("DATA_S",), data=True, role="reply",
        reply_to=("GETS",)),
    Msg("DATA_EXCL", mc=("DATA_E",), data=True, role="reply",
        reply_to=("GETS", "GETX")),
    Msg("ACK_X", mc=("ACK_X",), role="ack", reply_to=("GETX",)),
    Msg("INV", mc=("INV",), role="request"),
    Msg("INV_ACK", mc=("INV_ACK",), role="ack", reply_to=("INV",)),
    Msg("WRITEBACK", mc=("WB",), data=True, role="request"),
    Msg("EVICT_CLEAN", mc=("EVC",), role="request"),
    Msg("WB_ACK", mc=(), role="ack", reply_to=("WRITEBACK", "EVICT_CLEAN"),
        note=_WB_ACK_WHY),
    Msg("NACK", mc=("NACK", "NACKI"), role="reply",
        reply_to=("GETS", "GETX", "INTERVENTION")),
    Msg("INTERVENTION", mc=("INT",), role="request"),
    Msg("SHARED_WB", mc=("SH_WB",), data=True, role="reply",
        reply_to=("INTERVENTION",)),
    Msg("SHARED_RESP", mc=("SH_RESP",), data=True, role="reply",
        reply_to=("INTERVENTION",)),
    Msg("EXCL_RESP", mc=("EX_RESP",), data=True, role="reply",
        reply_to=("INTERVENTION",)),
    Msg("XFER_OWNER", mc=("XFER",), role="reply",
        reply_to=("INTERVENTION",)),
)

DOMAINS = {
    "busy": ("none", "int_s", "int_x", "wb"),
    "dir": ("U", "S", "E"),
    "cpu": ("idle", "R", "W"),
    "cache": ("I", "S", "E", "M"),
    "raced": ("yes", "no"),
    "upgrade": ("yes", "no"),
    "owner_is_requester": ("yes", "no"),
    "owner_is_src": ("yes", "no"),
    "ireason": ("busy", "no_copy"),
    "wb_flag": ("yes", "no"),
    "mode": ("s", "x"),
}

TRANSITIONS = (
    # -- GETS -------------------------------------------------------------
    T("home", "GETS", (("busy", ("int_s", "int_x", "wb")),),
      emit=("NACK",), label="gets_busy_nack", effect="nack_requester"),
    T("home", "GETS", (("busy", ("none",)), ("dir", ("U",))),
      emit=("DATA_EXCL",), goes=(("dir", "E"),), label="gets_unowned",
      effect="gets_unowned"),
    T("home", "GETS", (("busy", ("none",)), ("dir", ("S",))),
      emit=("DATA_SHARED",), label="gets_shared", effect="gets_shared"),
    T("home", "GETS", (("busy", ("none",)), ("dir", ("E",)),
                       ("owner_is_requester", ("yes",))),
      emit=("NACK",), label="gets_own_wb_race", effect="nack_requester"),
    T("home", "GETS", (("busy", ("none",)), ("dir", ("E",)),
                       ("owner_is_requester", ("no",))),
      emit=("INTERVENTION",), goes=(("busy", "int_s"),),
      label="gets_intervene", effect="gets_intervene"),

    # -- GETX -------------------------------------------------------------
    T("home", "GETX", (("busy", ("int_s", "int_x", "wb")),),
      emit=("NACK",), label="getx_busy_nack", effect="nack_requester"),
    T("home", "GETX", (("busy", ("none",)), ("dir", ("U",))),
      emit=("DATA_EXCL",), goes=(("dir", "E"),), label="getx_unowned",
      effect="getx_unowned"),
    T("home", "GETX", (("busy", ("none",)), ("dir", ("S",)),
                       ("upgrade", ("yes",))),
      emit=("INV", "ACK_X"), goes=(("dir", "E"),), label="getx_upgrade",
      effect="getx_upgrade"),
    T("home", "GETX", (("busy", ("none",)), ("dir", ("S",)),
                       ("upgrade", ("no",))),
      emit=("INV", "DATA_EXCL"), goes=(("dir", "E"),),
      label="getx_shared", effect="getx_shared"),
    T("home", "GETX", (("busy", ("none",)), ("dir", ("E",)),
                       ("owner_is_requester", ("yes",))),
      emit=("NACK",), label="getx_own_wb_race", effect="nack_requester"),
    T("home", "GETX", (("busy", ("none",)), ("dir", ("E",)),
                       ("owner_is_requester", ("no",))),
      emit=("INTERVENTION",), goes=(("busy", "int_x"),),
      label="getx_intervene", effect="getx_intervene"),

    # -- data replies -----------------------------------------------------
    T("node", "DATA_SHARED", (("cpu", ("idle", "W")),),
      label="data_s_stale", effect="stale_drop"),
    T("node", "DATA_SHARED", (("cpu", ("R",)), ("raced", ("no",))),
      goes=(("cache", "S"),), label="data_s_install",
      effect="install_shared"),
    T("node", "DATA_SHARED", (("cpu", ("R",)), ("raced", ("yes",))),
      label="data_s_raced_drop", effect="raced_drop"),
    T("node", "DATA_SHARED", emit=("WRITEBACK", "EVICT_CLEAN"),
      label="data_s_victim_evict", tags=("also",),
      hoist="rule_evict", why=_EVICT_WHY),
    T("node", "DATA_EXCL", (("cpu", ("idle",)),), label="data_e_stale",
      effect="stale_drop"),
    T("node", "DATA_EXCL", (("cpu", ("R",)), ("raced", ("no",))),
      goes=(("cache", "E"),), label="data_e_install",
      effect="install_excl"),
    T("node", "DATA_EXCL", (("cpu", ("R",)), ("raced", ("yes",))),
      emit=("EVICT_CLEAN",), label="data_e_raced_drop",
      effect="raced_excl_drop"),
    T("node", "DATA_EXCL", (("cpu", ("W",)),),
      goes=(("cache", "M"),), label="data_e_grant", effect="grant_excl"),
    T("node", "DATA_EXCL", emit=("WRITEBACK", "EVICT_CLEAN"),
      label="data_e_victim_evict", tags=("also",),
      hoist="rule_evict", why=_EVICT_WHY),
    T("node", "ACK_X", (("cpu", ("idle", "R")),), label="ack_x_stale",
      effect="stale_drop"),
    T("node", "ACK_X", (("cpu", ("W",)),),
      goes=(("cache", "M"),), label="ack_x_grant", effect="grant_ack"),
    T("node", "ACK_X", emit=("WRITEBACK", "EVICT_CLEAN"),
      label="ack_x_victim_evict", tags=("also",),
      hoist="rule_evict", why=_EVICT_WHY),

    # -- invalidation -----------------------------------------------------
    T("node", "INV", emit=("INV_ACK",), goes=(("cache", "I"),),
      label="inv_apply", effect="apply_inv"),
    T("node", "INV_ACK", (("cpu", ("W",)),),
      goes=(("cache", "M"),), label="inv_ack_count",
      effect="count_inv_ack"),
    T("node", "INV_ACK", (("cpu", ("idle", "R")),),
      label="inv_ack_stale", tags=("unreachable",)),

    # -- interventions ----------------------------------------------------
    T("node", "INTERVENTION", (("cpu", ("R", "W")),),
      emit=("NACK",), label="int_busy_nack", effect="int_busy_nack"),
    T("node", "INTERVENTION", (("cpu", ("idle",)), ("cache", ("I", "S"))),
      emit=("NACK",), label="int_no_copy_nack",
      effect="int_no_copy_nack"),
    T("node", "INTERVENTION", (("cpu", ("idle",)), ("cache", ("E", "M")),
                               ("mode", ("s",))),
      emit=("SHARED_WB", "SHARED_RESP"), goes=(("cache", "S"),),
      label="int_serve_shared", effect="serve_int_shared"),
    T("node", "INTERVENTION", (("cpu", ("idle",)), ("cache", ("E", "M")),
                               ("mode", ("x",))),
      emit=("EXCL_RESP", "XFER_OWNER"), goes=(("cache", "I"),),
      label="int_serve_excl", effect="serve_int_excl"),

    # -- NACK family ------------------------------------------------------
    T("node", "NACK", (("cpu", ("R",)),), emit=("GETS",),
      via="NACK", label="nack_retry_read", effect="retry_read"),
    T("node", "NACK", (("cpu", ("W",)),), emit=("GETX",),
      via="NACK", label="nack_retry_write", effect="retry_write"),
    T("node", "NACK", (("cpu", ("idle",)),), via="NACK",
      label="nack_stale", effect="stale_drop"),
    T("home", "NACK", (("busy", ("none",)),), via="NACKI",
      label="nacki_stale", effect="stale_drop"),
    T("home", "NACK", (("busy", ("int_s", "int_x", "wb")),
                       ("ireason", ("busy",))),
      emit=("INTERVENTION",), via="NACKI",
      label="nacki_owner_busy_retry", effect="int_retry"),
    T("home", "NACK", (("busy", ("int_s", "int_x")),
                       ("ireason", ("no_copy",)), ("wb_flag", ("yes",))),
      emit=("GETS", "GETX"), via="NACKI", label="nacki_wb_race_resolve",
      replay="_resolve_wb_race", why=_WB_RACE_WHY,
      effect="wb_race_resolve"),
    T("home", "NACK", (("busy", ("int_s", "int_x")),
                       ("ireason", ("no_copy",)), ("wb_flag", ("no",))),
      via="NACKI", label="nacki_wait_writeback",
      effect="int_await_writeback"),
    T("home", "NACK", (("busy", ("wb",)), ("ireason", ("no_copy",))),
      via="NACKI", label="nacki_rebuffer", effect="stale_drop"),

    # -- writebacks -------------------------------------------------------
    T("home", "WRITEBACK", emit=("WB_ACK",), label="wb_ack_sim",
      tags=("also",), only="sim", why=_WB_ACK_WHY),
    T("home", "WRITEBACK", (("busy", ("wb",)),),
      emit=("GETS", "GETX"), label="wb_resolve_buffered",
      replay="_resolve_wb_race", why=_WB_RACE_WHY, effect="wb_resolve"),
    T("home", "WRITEBACK", (("busy", ("int_s", "int_x")),),
      label="wb_during_intervention", effect="wb_mark_during_int"),
    T("home", "WRITEBACK", (("busy", ("none",)), ("dir", ("E",)),
                            ("owner_is_src", ("yes",))),
      goes=(("dir", "U"),), label="wb_apply", effect="wb_apply"),
    T("home", "WRITEBACK", (("busy", ("none",)), ("dir", ("U", "S"))),
      label="wb_stale_dir", effect="wb_stale"),
    T("home", "WRITEBACK", (("busy", ("none",)), ("dir", ("E",)),
                            ("owner_is_src", ("no",))),
      label="wb_stale_owner", effect="wb_stale"),
    T("home", "EVICT_CLEAN", emit=("WB_ACK",), label="evc_ack_sim",
      tags=("also",), only="sim", why=_WB_ACK_WHY),
    T("home", "EVICT_CLEAN", (("busy", ("wb",)),),
      emit=("GETS", "GETX"), label="evc_resolve_buffered",
      replay="_resolve_wb_race", why=_WB_RACE_WHY, effect="wb_resolve"),
    T("home", "EVICT_CLEAN", (("busy", ("int_s", "int_x")),),
      label="evc_during_intervention", effect="wb_mark_during_int"),
    T("home", "EVICT_CLEAN", (("busy", ("none",)), ("dir", ("E",)),
                              ("owner_is_src", ("yes",))),
      goes=(("dir", "U"),), label="evc_apply", effect="evc_apply"),
    T("home", "EVICT_CLEAN", (("busy", ("none",)), ("dir", ("U", "S"))),
      label="evc_stale_dir", effect="stale_drop"),
    T("home", "EVICT_CLEAN", (("busy", ("none",)), ("dir", ("E",)),
                              ("owner_is_src", ("no",))),
      label="evc_stale_owner", effect="stale_drop"),
    T("node", "WB_ACK", label="wb_ack_retire", only="sim",
      why=_WB_ACK_WHY),

    # -- intervention replies at the home --------------------------------
    T("home", "SHARED_WB", (("busy", ("int_s",)),),
      goes=(("dir", "S"),), label="sh_wb_apply", effect="sh_wb_apply"),
    T("home", "SHARED_WB", (("busy", ("none", "int_x", "wb")),),
      label="sh_wb_stale", effect="stale_drop"),
    T("node", "SHARED_RESP", (("cpu", ("idle", "W")),),
      label="sh_resp_stale", effect="stale_drop"),
    T("node", "SHARED_RESP", (("cpu", ("R",)), ("raced", ("no",))),
      goes=(("cache", "S"),), label="sh_resp_install",
      effect="install_shared"),
    T("node", "SHARED_RESP", (("cpu", ("R",)), ("raced", ("yes",))),
      label="sh_resp_raced_drop", effect="raced_drop"),
    T("node", "SHARED_RESP", emit=("WRITEBACK", "EVICT_CLEAN"),
      label="sh_resp_victim_evict", tags=("also",),
      hoist="rule_evict", why=_EVICT_WHY),
    T("node", "EXCL_RESP", (("cpu", ("idle",)),), label="ex_resp_stale",
      effect="stale_drop"),
    T("node", "EXCL_RESP", (("cpu", ("R",)), ("raced", ("no",))),
      goes=(("cache", "E"),), label="ex_resp_install",
      effect="install_excl"),
    T("node", "EXCL_RESP", (("cpu", ("R",)), ("raced", ("yes",))),
      emit=("EVICT_CLEAN",), label="ex_resp_raced_drop",
      effect="raced_excl_drop"),
    T("node", "EXCL_RESP", (("cpu", ("W",)),),
      goes=(("cache", "M"),), label="ex_resp_grant",
      effect="grant_excl"),
    T("node", "EXCL_RESP", emit=("WRITEBACK", "EVICT_CLEAN"),
      label="ex_resp_victim_evict", tags=("also",),
      hoist="rule_evict", why=_EVICT_WHY),
    T("home", "XFER_OWNER", (("busy", ("int_x",)),),
      goes=(("dir", "E"),), label="xfer_apply", effect="xfer_apply"),
    T("home", "XFER_OWNER", (("busy", ("none", "int_s", "wb")),),
      label="xfer_stale", effect="stale_drop"),

    # -- spontaneous entry rules -----------------------------------------
    T("node", "!cpu_read", emit=("GETS",), mc_rule="rule_cpu_read",
      label="cpu_read", effect="cpu_read"),
    T("node", "!cpu_write", emit=("GETX",), mc_rule="rule_cpu_write",
      label="cpu_write", effect="cpu_write"),
    T("node", "!evict", emit=("WRITEBACK", "EVICT_CLEAN"),
      mc_rule="rule_evict", label="evict", effect="evict"),
)

SPEC = ProtocolSpec(
    name="mesi",
    description="textbook MESI directory baseline: no delegation, no "
                "updates, invalidated readers are forgotten",
    messages=MESSAGES,
    dir_states=("U", "S", "E"),
    cache_states=("I", "S", "E", "M"),
    domains=DOMAINS,
    transitions=TRANSITIONS,
    mc_model="generated",
    stripped=("DELEGATE", "UNDELE", "UNDELE_REQ", "HOME_CHANGED",
              "NACK_NOT_HOME", "UPDATE", "UPDATE_ACK"),
)
