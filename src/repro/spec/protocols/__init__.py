"""One guarded-action spec module per arena protocol.

Each module defines a single ``SPEC`` constant.  The modules import
:mod:`repro.spec.lang` absolutely so that :func:`repro.spec.registry.
load_spec_tree` can ``exec`` them out of an *analyzed* source tree (the
lint mutation tests copy trees around) while still resolving the IR
classes from the installed package.
"""
