"""Loading protocol specs — installed and from analyzed source trees.

Two access paths:

* :func:`get_spec` / :func:`all_specs` import the specs shipped with the
  installed package — the normal path for the CLI, the arena, and the
  generated model checker.
* :func:`load_spec_tree` loads spec modules *from an analyzed source
  tree* by ``exec``-ing ``<root>/spec/protocols/*.py``.  The lint
  pipeline analyzes a tree that is not necessarily the installed package
  (the mutation tests copy and mutate trees), so the specs checked must
  come from the same tree as the extracted sim/mc graphs.  A tree
  without a ``spec/protocols/`` directory (a legacy seed) yields ``{}``
  and the lint pipeline falls back to its name-map heuristic.
"""

from pathlib import Path
from typing import Dict

from .lang import ProtocolSpec, SpecError

SPEC_NAMES = ("adaptive", "wi", "mesi", "dragon")


def get_spec(name: str) -> ProtocolSpec:
    """Return the installed spec for ``name`` (validated)."""
    if name not in SPEC_NAMES:
        raise SpecError("no spec for protocol %r (have: %s)"
                        % (name, ", ".join(SPEC_NAMES)))
    from importlib import import_module
    module = import_module("repro.spec.protocols.%s" % name)
    spec = module.SPEC
    if not isinstance(spec, ProtocolSpec):  # pragma: no cover - defensive
        raise SpecError("repro.spec.protocols.%s.SPEC is not a "
                        "ProtocolSpec" % name)
    spec.validate()
    return spec


def all_specs() -> Dict[str, ProtocolSpec]:
    """All installed specs, keyed by protocol name."""
    return {name: get_spec(name) for name in SPEC_NAMES}


def load_spec_tree(root: Path) -> Dict[str, ProtocolSpec]:
    """Load every spec found under ``<root>/spec/protocols``.

    Spec modules are executed from source so that a mutated copy of the
    tree is analyzed as-is; their ``from repro.spec.lang import ...``
    still resolves against the installed IR, which is what defines the
    language, not the protocol.  Raises :class:`SpecError` for specs
    that fail structural validation — a broken spec is a configuration
    error, not a finding.
    """
    spec_dir = Path(root) / "spec" / "protocols"
    specs: Dict[str, ProtocolSpec] = {}
    if not spec_dir.is_dir():
        return specs
    for path in sorted(spec_dir.glob("*.py")):
        if path.name.startswith("_"):
            continue
        source = path.read_text(encoding="utf-8")
        namespace: Dict[str, object] = {"__name__": "repro_spec_tree_%s"
                                        % path.stem}
        try:
            exec(compile(source, str(path), "exec"), namespace)
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError("failed to load spec %s: %s" % (path, exc))
        spec = namespace.get("SPEC")
        if not isinstance(spec, ProtocolSpec):
            raise SpecError("%s defines no SPEC ProtocolSpec" % path)
        spec.validate()
        specs[spec.name] = spec
    return specs
