"""Spec-level static checks — the ``SPC0xx`` family.

These analyses run on a :class:`~repro.spec.lang.ProtocolSpec` alone (no
extracted source graphs needed), so they apply to all four protocols,
model twin or not:

======  =========================================================
SPC001  two guards in one trigger group overlap (ambiguous dispatch)
SPC002  a trigger group's guards are not exhaustive (stuck message)
SPC003  a declared directory/cache state is never installed
SPC004  a declared message is never emitted, or never handled
SPC005  a message cycle with no NACK-family edge (livelock shape)
SPC006  request/reply pairing: unpaired request, reply to non-request
======  =========================================================

A *trigger group* is the set of non-entry transitions sharing
``(on, via)`` — ``via`` splits payload-discriminated families (NACK) the
way the model's token dispatch does.  ``also``-tagged transitions are
accompanying consequences, not competing outcomes, and are excluded from
the overlap/exhaustiveness analyses; ``nondet`` excuses an overlapping
pair; ``unreachable`` transitions count as coverage (the spec asserts
the binding cannot occur, and generated models enforce that at runtime).
"""

from itertools import combinations, product
from typing import Dict, Iterator, List, Tuple

from ..lint.findings import Finding, Severity
from .lang import ProtocolSpec, T, guard_allows, guards_overlap


def _spec_file(spec: ProtocolSpec) -> str:
    return "spec/protocols/%s.py" % spec.name


def _finding(spec: ProtocolSpec, check_id: str, severity: Severity,
             message: str, fingerprint: str) -> Finding:
    return Finding(check_id=check_id, severity=severity, message=message,
                   fingerprint=fingerprint, file=_spec_file(spec), line=1,
                   side="spec")


def _trigger_groups(spec: ProtocolSpec) -> Dict[Tuple[str, str], List[T]]:
    groups: Dict[Tuple[str, str], List[T]] = {}
    for t in spec.transitions:
        if t.is_entry or t.has_tag("also"):
            continue
        groups.setdefault((t.on, t.via), []).append(t)
    return groups


def _group_name(key: Tuple[str, str]) -> str:
    on, via = key
    return "%s@%s" % (on, via) if via else on


def check_guard_overlap(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC001: two non-``nondet`` guards in one group can both fire."""
    for key, group in sorted(_trigger_groups(spec).items()):
        for a, b in combinations(group, 2):
            if a.has_tag("nondet") or b.has_tag("nondet"):
                continue
            if guards_overlap(a, b, spec.domains):
                labels = "+".join(sorted((a.label, b.label)))
                yield _finding(
                    spec, "SPC001", Severity.ERROR,
                    "%s: transitions %r and %r on %s admit a common "
                    "state — dispatch is ambiguous (tag one 'nondet' if "
                    "the choice is genuine)"
                    % (spec.name, a.label, b.label, _group_name(key)),
                    "%s:%s" % (_group_name(key), labels))


def check_guard_exhaustiveness(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC002: some reachable binding matches no guard in the group."""
    for key, group in sorted(_trigger_groups(spec).items()):
        variables = sorted({var for t in group for var, _ in t.when})
        if not variables:
            continue
        domains = [spec.domains[var] for var in variables]
        for values in product(*domains):
            env = dict(zip(variables, values))
            if any(guard_allows(t.when, env) for t in group):
                continue
            binding = "&".join("%s=%s" % (var, env[var])
                               for var in variables)
            yield _finding(
                spec, "SPC002", Severity.ERROR,
                "%s: no transition on %s handles the state %s — the "
                "message would be dropped on the floor (add a handler "
                "or an 'unreachable'-tagged assertion)"
                % (spec.name, _group_name(key), binding),
                "%s:%s" % (_group_name(key), binding))


def check_unreachable_states(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC003: a declared state no transition installs (nor initial)."""
    installed: Dict[str, set] = {"dir": set(), "cache": set()}
    for t in spec.transitions:
        for var, value in t.goes:
            if var in installed:
                installed[var].add(value)
    for var, declared, initial in (
            ("dir", spec.dir_states, spec.initial_dir),
            ("cache", spec.cache_states, spec.initial_cache)):
        for state in declared:
            if state == initial or state in installed[var]:
                continue
            yield _finding(
                spec, "SPC003", Severity.ERROR,
                "%s: declared %s state %r is never installed by any "
                "transition and is not the initial state"
                % (spec.name, var, state),
                "%s:%s" % (var, state))


def check_orphan_messages(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC004: a declared message nobody emits, or nobody handles."""
    emitted = spec.emitted()
    handled = spec.handled()
    for msg in spec.messages:
        if msg.name not in emitted:
            yield _finding(
                spec, "SPC004", Severity.ERROR,
                "%s: message %s is declared but no transition or entry "
                "rule emits it" % (spec.name, msg.name),
                "%s:never-emitted" % msg.name)
        if msg.name not in handled:
            yield _finding(
                spec, "SPC004", Severity.ERROR,
                "%s: message %s is declared but no transition handles "
                "it" % (spec.name, msg.name),
                "%s:never-handled" % msg.name)


def _is_nack_family(name: str) -> bool:
    return name.startswith("NACK")


def check_emission_cycles(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC005: message cycles that no NACK-family hop can break.

    Mirrors DLK001 at the spec level: a strongly-connected emission
    component is a retry/livelock *shape*; components that include a
    NACK-family message are the protocol's intended bounded retry loops
    and are excluded.  A direct self-forwarding edge must carry the
    ``bounded`` tag (with its ``why``) on the emitting transition.
    """
    edges: Dict[str, set] = {}
    bounded_self: set = set()
    for t in spec.transitions:
        if t.is_entry:
            continue
        for out in t.emit:
            edges.setdefault(t.on, set()).add(out)
            if out == t.on and t.has_tag("bounded"):
                bounded_self.add(t.on)

    # Tarjan is overkill at this scale: iterative DFS per node, looking
    # for a path back to the start.
    def reaches(start: str, goal: str) -> bool:
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            for nxt in edges.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    in_cycle = set()
    for name in sorted(edges):
        if name in edges.get(name, ()):
            if name not in bounded_self:
                in_cycle.add(frozenset((name,)))
        elif reaches(name, name):
            members = frozenset(
                m for m in edges
                if m == name or (reaches(name, m) and reaches(m, name)))
            in_cycle.add(members)
    for members in sorted(in_cycle, key=sorted):
        if any(_is_nack_family(m) for m in members):
            continue
        label = "+".join(sorted(members))
        yield _finding(
            spec, "SPC005", Severity.WARNING,
            "%s: messages {%s} form an emission cycle with no "
            "NACK-family hop — livelock shape with no retry bound "
            "(self-loops need a 'bounded' tag)"
            % (spec.name, ", ".join(sorted(members))),
            "cycle:%s" % label)


def check_request_reply_pairing(spec: ProtocolSpec) -> Iterator[Finding]:
    """SPC006: every request has a reply; replies target requests."""
    names = spec.message_names()
    answered = set()
    for msg in spec.messages:
        for req in msg.reply_to:
            answered.add(req)
            target = spec.message(req)
            if target is not None and target.role != "request":
                yield _finding(
                    spec, "SPC006", Severity.ERROR,
                    "%s: %s declares reply_to=%s but %s has role %r, "
                    "not 'request'"
                    % (spec.name, msg.name, req, req, target.role),
                    "%s:reply-to-non-request" % msg.name)
    for msg in spec.messages:
        if msg.role == "request" and msg.name in names \
                and msg.name not in answered:
            yield _finding(
                spec, "SPC006", Severity.ERROR,
                "%s: request %s has no declared reply (a requester "
                "waiting on it would hang)" % (spec.name, msg.name),
                "%s:unpaired-request" % msg.name)


SPEC_CHECKS = (
    check_guard_overlap,
    check_guard_exhaustiveness,
    check_unreachable_states,
    check_orphan_messages,
    check_emission_cycles,
    check_request_reply_pairing,
)


def run_spec_checks(spec: ProtocolSpec) -> Iterator[Finding]:
    """Run every SPC check over one spec."""
    for check in SPEC_CHECKS:
        for finding in check(spec):
            yield finding
