"""Declarative guarded-action protocol specs and their compilers.

``repro.spec`` holds one :class:`~repro.spec.lang.ProtocolSpec` per arena
protocol (``spec/protocols/``) plus the three consumers that compile or
diff them:

* :mod:`repro.spec.analyze` — spec-level static checks (``SPC0xx``);
* :mod:`repro.spec.conformance` — spec vs extracted sim/mc graph diffs
  (``CON0xx``), replacing the hand-maintained name map;
* :mod:`repro.spec.mcgen` — compiles a ``mc_model="generated"`` spec
  into an executable model for :mod:`repro.mc`.
"""

from .lang import Atom, Msg, ProtocolSpec, SpecError, T
from .registry import all_specs, get_spec, load_spec_tree

__all__ = [
    "Atom",
    "Msg",
    "ProtocolSpec",
    "SpecError",
    "T",
    "all_specs",
    "get_spec",
    "load_spec_tree",
]
