"""Spec ↔ extracted-source conformance — the spec-driven ``CON0xx``.

The adaptive :class:`~repro.spec.lang.ProtocolSpec` is the arbiter: the
AST-extracted simulator graph and the hand-written model checker are both
diffed against *it* (they used to be diffed against each other through a
hand-maintained name map).  What used to be allowlist glob entries are
now structured annotations on the spec transitions:

* ``only="sim"`` — emission with no model counterpart (the old
  ``CON003:*->X`` globs);
* ``hoist="rule_x"`` — the model realises the emission in a spontaneous
  rule; it is validated against *that rule's* closure (the old
  ``CON004:X->Y`` globs);
* ``replay="_func"`` — the simulator realises the edge by internal
  re-dispatch; the edge is not required in the sim graph but the named
  function must exist;
* a message with ``mc=()`` plus a ``note`` — deliberately unmodeled
  (the old ``CON001:WB_ACK`` entry).

Check ids (CON001-004 keep their legacy meaning and fingerprints so the
allowlist and mutation tests carry over; CON005/CON006 and SPC007 are
new):

=======  ==========================================================
CON001   vocabulary: sim message unknown to the spec, spec message
         that is no MsgType (``spec:NAME``), mc tokens unhandled by
         the model, or a data-bearing flag mismatch (``NAME:data``)
CON002   model token no spec message claims
CON003   sim transition (handled msg -> emitted msg) the spec does
         not allow
CON004   model transition (incl. ``!rule->X`` entry rules) the spec
         does not allow
CON005   spec-required sim transition absent from the sim graph
         (replay edges instead require the named function to exist)
CON006   spec-required model transition absent from the model
         (hoisted edges are checked in the named rule's closure)
SPC007   spec handled-set vs dispatch-table mismatch, for *every*
         protocol (adaptive vs the hub table, baselines vs their
         arena tables)
=======  ==========================================================
"""

from typing import Dict, Iterator, List, Optional, Set

from ..lint.findings import Finding, Severity
from .lang import ProtocolSpec, T


def _spec_file(spec: ProtocolSpec) -> str:
    return "spec/protocols/%s.py" % spec.name


def _handler_groups(spec: ProtocolSpec) -> Dict[str, List[T]]:
    groups: Dict[str, List[T]] = {}
    for t in spec.transitions:
        if not t.is_entry:
            groups.setdefault(t.on, []).append(t)
    return groups


# -- vocabulary (CON001 / CON002) ---------------------------------------------


def check_vocabulary(spec, sim, mc) -> Iterator[Finding]:
    """CON001/CON002 with the spec as the name map."""
    spec_names = spec.message_names()
    for name in sorted(sim.messages):
        decl = sim.messages[name]
        msg = spec.message(name)
        if msg is None:
            yield Finding(
                check_id="CON001", severity=Severity.ERROR, side="both",
                fingerprint=name,
                message="MsgType.%s is not declared in the %s spec"
                        % (name, spec.name),
                file=decl.file, line=decl.line)
            continue
        if msg.mc:
            handled = [t for t in msg.mc if t in mc.handlers]
            if not handled:
                yield Finding(
                    check_id="CON001", severity=Severity.ERROR,
                    side="both", fingerprint=name,
                    message="MsgType.%s maps to %s, none of which the "
                            "model handles"
                            % (name, "/".join(msg.mc)),
                    file=decl.file, line=decl.line)
        # mc=() with a note is the spec's structured justification for
        # an unmodeled message — no finding (formerly allowlisted).
        if (decl.data_bearing is not None
                and decl.data_bearing != msg.data):
            yield Finding(
                check_id="CON001", severity=Severity.ERROR, side="both",
                fingerprint="%s:data" % name,
                message="MsgType.%s data-bearing flag is %s but the "
                        "spec declares data=%s"
                        % (name, decl.data_bearing, msg.data),
                file=decl.file, line=decl.line)
    for name in sorted(spec_names - set(sim.messages)):
        yield Finding(
            check_id="CON001", severity=Severity.ERROR, side="both",
            fingerprint="spec:%s" % name,
            message="spec message %s is not a declared MsgType" % name,
            file=_spec_file(spec), line=1)
    claimed = {token for msg in spec.messages for token in msg.mc}
    for token in sorted(set(mc.messages) - claimed):
        decl = mc.messages[token]
        yield Finding(
            check_id="CON002", severity=Severity.ERROR, side="both",
            fingerprint=token,
            message="model token %s is claimed by no %s spec message"
                    % (token, spec.name),
            file=decl.file, line=decl.line)


# -- transition relation (CON003 - CON006) ------------------------------------


def _mc_closure_names(spec, mc, tokens) -> Set[str]:
    """Sim-named emission closure of the given handled mc tokens."""
    out: Set[str] = set()
    for token in tokens:
        for emitted in mc.emitted_names(token):
            name = spec.sim_name_of(emitted)
            if name is not None:
                out.add(name)
    return out


def _mc_rule_names(spec, mc, rule) -> Set[str]:
    """Sim-named emission closure of one spontaneous model rule."""
    out: Set[str] = set()
    for emission in mc.closure_emissions((rule,)):
        if emission.mtype is None:
            continue
        name = spec.sim_name_of(emission.mtype)
        if name is not None:
            out.add(name)
    return out


def check_transitions(spec, sim, mc) -> Iterator[Finding]:
    """CON003-CON006: both graphs against the spec's transition relation."""
    groups = _handler_groups(spec)

    # Sim side.  CON003: everything the sim can emit while handling M
    # must be allowed by some spec transition on M (only="mc" edges are
    # model artefacts and don't license sim behaviour).
    for name in sorted(set(sim.handlers) & set(groups)):
        allowed = {out for t in groups[name] if t.only != "mc"
                   for out in t.emit}
        decl = sim.messages.get(name)
        for out in sorted(sim.emitted_names(name)):
            if spec.message(out) is None:
                continue  # vocabulary gap: CON001's business
            if out not in allowed:
                yield Finding(
                    check_id="CON003", severity=Severity.WARNING,
                    side="both", fingerprint="%s->%s" % (name, out),
                    message="sim handling of %s can emit %s, which no "
                            "%s spec transition allows"
                            % (name, out, spec.name),
                    file=decl.file if decl else None,
                    line=decl.line if decl else None)
        # CON005: spec-required sim edges.  Replay edges are realised by
        # internal re-dispatch — the named function must exist instead.
        sim_out = sim.emitted_names(name)
        for t in groups[name]:
            if t.only == "mc":
                continue
            if t.replay:
                if t.replay not in sim.funcs:
                    yield Finding(
                        check_id="CON005", severity=Severity.ERROR,
                        side="sim",
                        fingerprint="replay:%s" % t.replay,
                        message="spec transition %r claims the sim "
                                "replays via %s, but no such function "
                                "exists" % (t.label, t.replay),
                        file=_spec_file(spec), line=1)
                continue
            for out in t.emit:
                if out not in sim_out:
                    yield Finding(
                        check_id="CON005", severity=Severity.ERROR,
                        side="sim", fingerprint="%s->%s" % (name, out),
                        message="spec transition %r requires sim "
                                "handling of %s to be able to emit %s, "
                                "but its handler closure never does"
                                % (t.label, name, out),
                        file=_spec_file(spec), line=1)

    # Model side.  Aggregate per handled message, in sim names.
    for name in sorted(groups):
        msg = spec.message(name)
        if msg is None or not msg.mc:
            continue
        handled = [tok for tok in msg.mc if tok in mc.handlers]
        if not handled:
            continue  # vocabulary gap already reported
        allowed = {out for t in groups[name] if t.only != "sim"
                   for out in t.emit}
        mc_out = _mc_closure_names(spec, mc, handled)
        # CON004: model emits something the spec does not allow.
        for out in sorted(mc_out - allowed):
            yield Finding(
                check_id="CON004", severity=Severity.WARNING, side="both",
                fingerprint="%s->%s" % (name, out),
                message="model handling of %s can emit %s, which no %s "
                        "spec transition allows"
                        % ("/".join(handled), out, spec.name),
                file=_spec_file(spec), line=1)
        # CON006: spec-required model edges.
        for t in groups[name]:
            if t.only == "sim":
                continue
            closure = mc_out
            where = "its handler closure"
            if t.hoist:
                closure = _mc_rule_names(
                    spec, mc, t.hoist) if t.hoist in mc.funcs else set()
                where = "rule %s" % t.hoist
            elif t.via:
                closure = _mc_closure_names(spec, mc, (t.via,)) \
                    if t.via in mc.handlers else set()
                where = "the %s handler" % t.via
            for out in t.emit:
                out_msg = spec.message(out)
                if out_msg is None or not out_msg.mc:
                    continue  # unmodeled output, justified by its note
                if out not in closure:
                    yield Finding(
                        check_id="CON006", severity=Severity.ERROR,
                        side="mc", fingerprint="%s->%s" % (name, out),
                        message="spec transition %r requires the model "
                                "to emit %s while handling %s, but %s "
                                "never does"
                                % (t.label, out, name, where),
                        file=_spec_file(spec), line=1)

    # Entry rules: each spec entry names the model rule realising it;
    # hoisted edges extend what that rule is expected to emit.
    expected: Dict[str, Set[str]] = {}
    for t in spec.entry_transitions():
        if t.mc_rule:
            expected.setdefault(t.mc_rule, set()).update(t.emit)
    for t in spec.transitions:
        if t.hoist:
            expected.setdefault(t.hoist, set()).update(t.emit)
    for rule in sorted(set(mc.entry_points) | set(expected)):
        if rule not in mc.funcs:
            yield Finding(
                check_id="CON006", severity=Severity.ERROR, side="mc",
                fingerprint="!%s" % rule,
                message="the %s spec names model rule %s, which does "
                        "not exist" % (spec.name, rule),
                file=_spec_file(spec), line=1)
            continue
        actual = _mc_rule_names(spec, mc, rule)
        for out in sorted(actual - expected.get(rule, set())):
            yield Finding(
                check_id="CON004", severity=Severity.WARNING, side="mc",
                fingerprint="!%s->%s" % (rule, out),
                message="model rule %s can emit %s, which the %s spec "
                        "does not attribute to it"
                        % (rule, out, spec.name),
                file=_spec_file(spec), line=1)
        for out in sorted(expected.get(rule, set()) - actual):
            out_msg = spec.message(out)
            if out_msg is None or not out_msg.mc:
                continue
            yield Finding(
                check_id="CON006", severity=Severity.ERROR, side="mc",
                fingerprint="!%s->%s" % (rule, out),
                message="the %s spec attributes an %s emission to model "
                        "rule %s, which never emits it"
                        % (spec.name, out, rule),
                file=_spec_file(spec), line=1)


# -- dispatch tables (SPC007) -------------------------------------------------


def check_handler_tables(specs, sim, protocols) -> Iterator[Finding]:
    """SPC007: every protocol's dispatch table vs its spec's handled set.

    The adaptive hub's table comes from the extracted sim graph; the
    baseline hubs' tables come from the arena registry extraction.  A
    protocol with no extracted table (legacy tree) is skipped.
    """
    for name in sorted(specs):
        spec = specs[name]
        if name == "adaptive":
            table: Optional[Dict[str, List[str]]] = sim.handlers
            where = "the hub dispatch table"
            anchor = "protocol/hub.py"
        else:
            decl = protocols.get(name) if protocols else None
            table = decl.handlers if decl else None
            where = "its arena handler table"
            anchor = "protocol/arena.py"
        if not table:
            continue
        handled = spec.handled()
        for msg in sorted(handled - set(table)):
            yield Finding(
                check_id="SPC007", severity=Severity.ERROR, side="sim",
                fingerprint="%s:%s:missing-handler" % (name, msg),
                message="the %s spec handles %s but %s registers no "
                        "handler for it" % (name, msg, where),
                file=anchor, line=1)
        for msg in sorted(set(table) - handled):
            yield Finding(
                check_id="SPC007", severity=Severity.ERROR, side="sim",
                fingerprint="%s:%s:unspecified-handler" % (name, msg),
                message="%s registers a handler for %s but the %s spec "
                        "has no transition for it (stripped: %s)"
                        % (where, msg, name,
                           ", ".join(spec.stripped) or "none"),
                file=anchor, line=1)


def run_conformance(specs, sim, mc, protocols=None) -> List[Finding]:
    """All spec-driven conformance checks over one analyzed tree."""
    findings: List[Finding] = []
    adaptive = specs.get("adaptive")
    if adaptive is not None and adaptive.mc_model == "hand":
        findings.extend(check_vocabulary(adaptive, sim, mc))
        findings.extend(check_transitions(adaptive, sim, mc))
    findings.extend(check_handler_tables(specs, sim, protocols or {}))
    return findings
