"""Compile a ``mc_model="generated"`` spec into an executable model.

:class:`SpecModel` gives the MESI arena baseline a model-checker twin
*generated from its spec* instead of hand-written: the spec's guarded
transitions become the message dispatch, and each transition's ``effect``
names a kernel primitive in :data:`EFFECTS` (ported from
:class:`repro.mc.model.ProtocolModel` with the MESI semantic deltas —
silent Shared evictions, forgotten readers on exclusivity grants, no
delegation/update machinery).

The spec is load-bearing at runtime, in three ways:

* **dispatch** — a delivered message executes exactly the one transition
  whose guard admits the concrete state; zero or several matches raise
  :class:`SpecExecutionError` (the SPC001/SPC002 analyses prove this
  cannot happen for a clean spec, and the model enforces it anyway);
* **reachability** — an ``unreachable``-tagged transition that fires
  raises (the spec's "cannot happen" claims become runtime assertions);
* **emissions** — every message the kernel sends is checked against the
  executing transition's declared ``emit`` set, so the spec's transition
  relation and the explored behaviour cannot drift apart.

State layout, network and value canonicalisation are shared with the
hand model (same 8-tuple, ``racs``/``deleg``/``hints`` permanently
empty), so :data:`repro.mc.invariants.ALL_INVARIANTS` apply unchanged.
"""

from typing import Any, Callable, Dict, Iterator, List, Tuple

from ..common.errors import ReproError
from ..mc.model import (HOME, ProtocolModel, _net_add, _net_pop_msg,
                        _tup_set, initial_state)
from .lang import ProtocolSpec, T, guard_allows

#: One model state (the hand model's 8-tuple) and one network message.
State = Tuple[Any, ...]
McMsg = Tuple[Any, ...]


class SpecExecutionError(ReproError):
    """The generated model diverged from its spec at runtime."""


class SpecModel:
    """Executable model compiled from a guarded-action protocol spec."""

    def __init__(self, spec: ProtocolSpec, num_nodes: int = 3,
                 writers: Tuple[int, ...] = (1,),
                 readers: Tuple[int, ...] = (2,),
                 allow_evictions: bool = True,
                 ordered_channels: bool = True) -> None:
        if spec.mc_model != "generated":
            raise SpecExecutionError(
                "spec %r has mc_model=%r; only 'generated' specs compile"
                % (spec.name, spec.mc_model))
        spec.validate()
        self.spec = spec
        self.num_nodes = num_nodes
        self.writers = tuple(writers)
        self.readers = tuple(readers)
        self.allow_evictions = allow_evictions
        self.ordered_channels = ordered_channels
        # The hand model supplies value freshness, canonicalisation and
        # quiescence — state layout is shared, so they apply verbatim.
        self._base = ProtocolModel(
            num_nodes=num_nodes, writers=writers, readers=readers,
            enable_delegation=False, enable_updates=False,
            allow_evictions=allow_evictions,
            ordered_channels=ordered_channels)
        self._dispatch = self._build_dispatch()
        self._entries = {t.mc_rule: t for t in spec.entry_transitions()}
        for rule in ("rule_cpu_read", "rule_cpu_write", "rule_evict"):
            if rule not in self._entries:
                raise SpecExecutionError(
                    "spec %r declares no entry transition for %s"
                    % (spec.name, rule))

    def _build_dispatch(self) -> Dict[str, List[T]]:
        """``{mc token: candidate transitions}`` from the spec.

        Hoisted edges are realised by entry rules, ``only="sim"`` edges
        have no model counterpart, and ``also``-tagged accompaniments
        are not competing outcomes — none of them dispatch.
        ``unreachable``-tagged transitions *are* kept: them matching is
        the runtime violation this model exists to detect.
        """
        dispatch: Dict[str, List[T]] = {}
        for msg in self.spec.messages:
            group = [t for t in self.spec.handler_transitions(msg.name)
                     if not (t.hoist or t.only == "sim"
                             or t.has_tag("also"))]
            for token in msg.mc:
                dispatch[token] = [t for t in group
                                   if not t.via or t.via == token]
        return dispatch

    # -- engine interface --------------------------------------------------

    def initial_states(self) -> List[State]:
        return [initial_state(self.num_nodes)]

    def rules(self) -> List[Callable[[State], Any]]:
        rules: List[Callable[[State], Any]] = [
            self.rule_cpu_read, self.rule_cpu_write, self.rule_deliver]
        if self.allow_evictions:
            rules.append(self.rule_evict)
        return rules

    def quiescent(self, state: State) -> bool:
        return self._base.quiescent(state)

    def canonical(self, state: State) -> State:
        return self._base.canonical(state)

    # -- spec-checked emission ---------------------------------------------

    def _send(self, t: T, net: Any, *msgs: McMsg) -> Any:
        """``_net_add`` that asserts each message against ``t.emit``."""
        for msg in msgs:
            name = self.spec.sim_name_of(msg[0])
            if name is None or name not in t.emit:
                raise SpecExecutionError(
                    "transition %r emitted %s, outside its declared emit "
                    "set %s" % (t.label, msg[0], list(t.emit)))
        return _net_add(net, *msgs)

    # -- guard environment -------------------------------------------------

    def _env(self, state: State, msg: McMsg) -> Dict[str, str]:
        """Bind every guard variable the spec's domains declare."""
        token, src, dst, payload = msg[0], msg[1], msg[2], msg[3]
        caches, cpus, home = state[1], state[3], state[4]
        hstate, sharers, owner, _memval, busy = home
        cpu = cpus[dst]
        env = {
            "busy": "none" if busy is None else busy[0],
            "dir": hstate,
            "cache": caches[dst][0],
            "cpu": "idle" if cpu is None else cpu[0],
            "raced": "yes" if (cpu is not None and cpu[0] == "R"
                              and cpu[1]) else "no",
        }
        if token in ("GETS", "GETX"):
            requester = payload[0]
            env["owner_is_requester"] = ("yes" if owner == requester
                                         else "no")
            if token == "GETX":
                env["upgrade"] = ("yes" if requester in sharers
                                  and payload[1] else "no")
        if token in ("WB", "EVC", "SH_WB", "XFER"):
            env["owner_is_src"] = "yes" if owner == src else "no"
        if token == "NACKI":
            env["ireason"] = payload[0]
            env["wb_flag"] = ("yes" if busy is not None
                              and busy[0] in ("int_s", "int_x")
                              and busy[2] else "no")
        if token == "INT":
            env["mode"] = payload[0]
        return env

    # -- spontaneous rules (the spec's entry transitions) -------------------

    def rule_cpu_read(self, state: State) -> Iterator[Tuple[str, State]]:
        t = self._entries["rule_cpu_read"]
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in self.readers:
            if cpus[node] is not None or caches[node][0] != "I":
                continue
            new_cpus = _tup_set(cpus, node, ("R", False))
            new_net = self._send(t, net, ("GETS", node, HOME, (node,)))
            yield ("read_%d" % node,
                   (cur, caches, racs, new_cpus, home, deleg, hints,
                    new_net))

    def rule_cpu_write(self, state: State) -> Iterator[Tuple[str, State]]:
        t = self._entries["rule_cpu_write"]
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in self.writers:
            if cpus[node] is not None or caches[node][0] in "EM":
                continue
            has_copy = caches[node][0] == "S"
            new_cpus = _tup_set(cpus, node, ("W", False, None, 0))
            new_net = self._send(t, net,
                                 ("GETX", node, HOME, (node, has_copy)))
            yield ("write_%d" % node,
                   (cur, caches, racs, new_cpus, home, deleg, hints,
                    new_net))

    def rule_evict(self, state: State) -> Iterator[Tuple[str, State]]:
        t = self._entries["rule_evict"]
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in range(self.num_nodes):
            cstate, cvalue = caches[node]
            if cstate == "I" or cpus[node] is not None:
                continue
            new_caches = _tup_set(caches, node, ("I", 0))
            if cstate == "S":
                # MESI delta: a Shared eviction is a silent drop — no
                # read-ahead-consumption entry, nothing on the wire.
                yield ("evict_s_%d" % node,
                       (cur, new_caches, racs, cpus, home, deleg, hints,
                        net))
            elif cstate == "E":
                new_net = self._send(t, net, ("EVC", node, HOME, ()))
                yield ("evict_e_%d" % node,
                       (cur, new_caches, racs, cpus, home, deleg, hints,
                        new_net))
            else:
                new_net = self._send(t, net, ("WB", node, HOME, (cvalue,)))
                yield ("evict_m_%d" % node,
                       (cur, new_caches, racs, cpus, home, deleg, hints,
                        new_net))

    # -- message delivery ---------------------------------------------------

    def rule_deliver(self, state: State) -> Iterator[Tuple[str, State]]:
        net = state[7]
        for pair, queue in net:
            deliverable = (queue[0],) if self.ordered_channels \
                else tuple(queue)
            for msg in deliverable:
                base = state[:7] + (_net_pop_msg(net, pair, msg),)
                for label, nxt in self._dispatch_msg(base, msg):
                    yield (label, nxt)

    def _dispatch_msg(self, state: State,
                      msg: McMsg) -> Iterator[Tuple[str, State]]:
        token = msg[0]
        candidates = self._dispatch.get(token)
        if not candidates:
            raise SpecExecutionError(
                "model emitted token %s, which no %s spec transition "
                "handles" % (token, self.spec.name))
        env = self._env(state, msg)
        matches = [t for t in candidates if guard_allows(t.when, env)]
        if len(matches) != 1:
            raise SpecExecutionError(
                "%d spec transitions match %s in state env %s: %s"
                % (len(matches), token, env,
                   [t.label for t in matches]))
        t = matches[0]
        if t.has_tag("unreachable"):
            raise SpecExecutionError(
                "spec-unreachable transition %r fired for %s (env %s)"
                % (t.label, token, env))
        effect = EFFECTS.get(t.effect)
        if effect is None:
            raise SpecExecutionError(
                "transition %r names unknown effect %r"
                % (t.label, t.effect))
        for nxt in effect(self, state, msg, t):
            yield ("%s_%d" % (t.label, msg[2]), nxt)

    # -- commit kernel ------------------------------------------------------

    def _commit_write(self, state: State, node: int) -> State:
        cur, caches, racs, cpus, home, deleg, hints, net = state
        new_value = self._base._fresh_value(state)
        caches = _tup_set(caches, node, ("M", new_value))
        cpus = _tup_set(cpus, node, None)
        return (new_value, caches, racs, cpus, home, deleg, hints, net)

    def _maybe_commit(self, state: State, node: int) -> State:
        cpu = state[3][node]
        if (cpu is not None and cpu[0] == "W" and cpu[1]
                and cpu[3] >= cpu[2]):
            return self._commit_write(state, node)
        return state


# -- effect kernel -------------------------------------------------------------
#
# Each effect is the executable body of one (or a family of) spec
# transition(s): ``effect(model, state, msg, t) -> iterable[next_state]``.
# ``state`` already has the message consumed.  Ported from the hand
# model's handlers with the MESI deltas noted inline.


def _memval_after(home: Any, msg: McMsg) -> Any:
    """WRITEBACK data always lands in memory, even on stale paths."""
    return msg[3][0] if msg[0] == "WB" else home[3]


def _eff_stale_drop(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    yield state


def _eff_nack_requester(model: SpecModel, state: State, msg: McMsg,
                        t: T) -> Iterator[State]:
    requester = msg[3][0]
    net = model._send(t, state[7], ("NACK", HOME, requester, ()))
    yield state[:7] + (net,)


def _eff_gets_unowned(model: SpecModel, state: State, msg: McMsg,
                      t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    memval = home[3]
    new_home = ("E", frozenset(), requester, memval, None)
    net = model._send(t, net, ("DATA_E", HOME, requester, (memval, 0)))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_gets_shared(model: SpecModel, state: State, msg: McMsg,
                     t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    _h, sharers, _o, memval, _b = home
    new_home = ("S", sharers | {requester}, None, memval, None)
    net = model._send(t, net, ("DATA_S", HOME, requester, (memval, False)))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_gets_intervene(model: SpecModel, state: State, msg: McMsg,
                        t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    hstate, sharers, owner, memval, _b = home
    new_home = (hstate, sharers, owner, memval, ("int_s", requester, False))
    net = model._send(t, net, ("INT", HOME, owner, ("s", requester)))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_getx_unowned(model: SpecModel, state: State, msg: McMsg,
                      t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    memval = home[3]
    new_home = ("E", frozenset(), requester, memval, None)
    net = model._send(t, net, ("DATA_E", HOME, requester, (memval, 0)))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _getx_from_shared(model: SpecModel, state: State, msg: McMsg, t: T,
                      grant_ack: bool) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    _h, sharers, _o, memval, _b = home
    targets = sharers - {requester}
    for target in sorted(targets):
        net = model._send(t, net, ("INV", HOME, target, (requester,)))
    if grant_ack:
        grant: McMsg = ("ACK_X", HOME, requester, (len(targets),))
    else:
        grant = ("DATA_E", HOME, requester, (memval, len(targets)))
    net = model._send(t, net, grant)
    # MESI delta: the invalidated readers are *forgotten* — the adaptive
    # protocol preserves them here as the predicted-consumer set.
    new_home = ("E", frozenset(), requester, memval, None)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_getx_upgrade(model: SpecModel, state: State, msg: McMsg,
                      t: T) -> Iterator[State]:
    yield from _getx_from_shared(model, state, msg, t, grant_ack=True)


def _eff_getx_shared(model: SpecModel, state: State, msg: McMsg,
                     t: T) -> Iterator[State]:
    yield from _getx_from_shared(model, state, msg, t, grant_ack=False)


def _eff_getx_intervene(model: SpecModel, state: State, msg: McMsg,
                        t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    requester = msg[3][0]
    hstate, sharers, owner, memval, _b = home
    new_home = (hstate, sharers, owner, memval, ("int_x", requester, False))
    net = model._send(t, net, ("INT", HOME, owner, ("x", requester)))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_install_shared(model: SpecModel, state: State, msg: McMsg,
                        t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst, value = msg[2], msg[3][0]
    caches = _tup_set(caches, dst, ("S", value))
    cpus = _tup_set(cpus, dst, None)
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_raced_drop(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    cpus = _tup_set(state[3], msg[2], None)
    yield state[:3] + (cpus,) + state[4:]


def _eff_install_excl(model: SpecModel, state: State, msg: McMsg,
                      t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst, value = msg[2], msg[3][0]
    caches = _tup_set(caches, dst, ("E", value))
    cpus = _tup_set(cpus, dst, None)
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_raced_excl_drop(model: SpecModel, state: State, msg: McMsg,
                         t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst = msg[2]
    cpus = _tup_set(cpus, dst, None)
    # An exclusively granted line dropped unread is a clean eviction the
    # directory must hear about.
    net = model._send(t, net, ("EVC", dst, HOME, ()))
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_grant_excl(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    dst = msg[2]
    n_acks = msg[3][1] if msg[0] == "DATA_E" else 0
    cpu = state[3][dst]
    cpus = _tup_set(state[3], dst, ("W", True, n_acks, cpu[3]))
    yield model._maybe_commit(state[:3] + (cpus,) + state[4:], dst)


def _eff_grant_ack(model: SpecModel, state: State, msg: McMsg,
                   t: T) -> Iterator[State]:
    dst, n_acks = msg[2], msg[3][0]
    cpu = state[3][dst]
    cpus = _tup_set(state[3], dst, ("W", True, n_acks, cpu[3]))
    yield model._maybe_commit(state[:3] + (cpus,) + state[4:], dst)


def _eff_apply_inv(model: SpecModel, state: State, msg: McMsg,
                   t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst, collector = msg[2], msg[3][0]
    cpu = cpus[dst]
    if cpu is not None and cpu[0] == "R":
        cpus = _tup_set(cpus, dst, ("R", True))  # raced: drop after use
    caches = _tup_set(caches, dst, ("I", 0))
    net = model._send(t, net, ("INV_ACK", dst, collector, ()))
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_count_inv_ack(model: SpecModel, state: State, msg: McMsg,
                       t: T) -> Iterator[State]:
    dst = msg[2]
    kind, granted, needed, got = state[3][dst]
    cpus = _tup_set(state[3], dst, (kind, granted, needed, got + 1))
    yield model._maybe_commit(state[:3] + (cpus,) + state[4:], dst)


def _eff_int_busy_nack(model: SpecModel, state: State, msg: McMsg,
                       t: T) -> Iterator[State]:
    dst, mode = msg[2], msg[3][0]
    net = model._send(t, state[7], ("NACKI", dst, HOME, ("busy", mode)))
    yield state[:7] + (net,)


def _eff_int_no_copy_nack(model: SpecModel, state: State, msg: McMsg,
                          t: T) -> Iterator[State]:
    dst, mode = msg[2], msg[3][0]
    net = model._send(t, state[7], ("NACKI", dst, HOME, ("no_copy", mode)))
    yield state[:7] + (net,)


def _eff_serve_int_shared(model: SpecModel, state: State, msg: McMsg,
                          t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst, requester = msg[2], msg[3][1]
    cvalue = caches[dst][1]
    caches = _tup_set(caches, dst, ("S", cvalue))
    net = model._send(t, net,
                      ("SH_WB", dst, HOME, (cvalue,)),
                      ("SH_RESP", dst, requester, (cvalue,)))
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_serve_int_excl(model: SpecModel, state: State, msg: McMsg,
                        t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    dst, requester = msg[2], msg[3][1]
    cvalue = caches[dst][1]
    caches = _tup_set(caches, dst, ("I", 0))
    net = model._send(t, net,
                      ("EX_RESP", dst, requester, (cvalue,)),
                      ("XFER", dst, HOME, (requester,)))
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _eff_retry_read(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    dst = msg[2]
    net = model._send(t, state[7], ("GETS", dst, HOME, (dst,)))
    yield state[:7] + (net,)


def _eff_retry_write(model: SpecModel, state: State, msg: McMsg,
                     t: T) -> Iterator[State]:
    dst = msg[2]
    has_copy = state[1][dst][0] == "S"
    net = model._send(t, state[7], ("GETX", dst, HOME, (dst, has_copy)))
    yield state[:7] + (net,)


def _eff_int_retry(model: SpecModel, state: State, msg: McMsg,
                   t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    mode = msg[3][1]
    _h, _s, owner, _m, busy = home
    net = model._send(t, net, ("INT", HOME, owner, (mode, busy[1])))
    yield (cur, caches, racs, cpus, home, deleg, hints, net)


def _resolve_wb_race(model: SpecModel, state: State, t: T) -> State:
    """Reset to UNOWNED and replay the buffered request (hand model's
    ``_resolve_wb_race``, minus the delegation arm)."""
    cur, caches, racs, cpus, home, deleg, hints, net = state
    _h, _s, _o, memval, busy = home
    kind, requester, extra = busy
    if kind == "int_s":
        replay: McMsg = ("GETS", requester, HOME, (requester,))
    elif kind == "wb" and extra[0] == "GETS":
        replay = ("GETS", extra[1], HOME, (extra[1],))
    else:
        req = extra[1] if kind == "wb" else requester
        replay = ("GETX", req, HOME, (req, False))
    new_home = ("U", frozenset(), None, memval, None)
    net = model._send(t, net, replay)
    return (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_wb_race_resolve(model: SpecModel, state: State, msg: McMsg,
                         t: T) -> Iterator[State]:
    yield _resolve_wb_race(model, state, t)


def _eff_int_await_writeback(model: SpecModel, state: State, msg: McMsg,
                             t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    hstate, sharers, owner, memval, busy = home
    req = busy[1]
    buffered = ("GETS", req) if busy[0] == "int_s" else ("GETX", req)
    new_home = (hstate, sharers, owner, memval, ("wb", req, buffered))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_wb_resolve(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    hstate, sharers, owner, _m, busy = home
    home = (hstate, sharers, owner, _memval_after(home, msg), busy)
    yield _resolve_wb_race(
        model, (cur, caches, racs, cpus, home, deleg, hints, net), t)


def _eff_wb_mark_during_int(model: SpecModel, state: State, msg: McMsg,
                            t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    hstate, sharers, owner, _m, busy = home
    new_home = (hstate, sharers, owner, _memval_after(home, msg),
                (busy[0], busy[1], True))
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_wb_apply(model: SpecModel, state: State, msg: McMsg,
                  t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    _h, sharers, _o, _m, _b = home
    new_home = ("U", sharers, None, _memval_after(home, msg), None)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_wb_stale(model: SpecModel, state: State, msg: McMsg,
                  t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    hstate, sharers, owner, _m, busy = home
    new_home = (hstate, sharers, owner, _memval_after(home, msg), busy)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_evc_apply(model: SpecModel, state: State, msg: McMsg,
                   t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    _h, sharers, _o, memval, _b = home
    new_home = ("U", sharers, None, memval, None)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_sh_wb_apply(model: SpecModel, state: State, msg: McMsg,
                     t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    value = msg[3][0]
    _h, _s, owner, _m, busy = home
    new_home = ("S", frozenset({owner, busy[1]}), None, value, None)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


def _eff_xfer_apply(model: SpecModel, state: State, msg: McMsg,
                    t: T) -> Iterator[State]:
    cur, caches, racs, cpus, home, deleg, hints, net = state
    new_owner = msg[3][0]
    hstate, sharers, _o, memval, _b = home
    new_home = ("E", sharers, new_owner, memval, None)
    yield (cur, caches, racs, cpus, new_home, deleg, hints, net)


#: effect name (as referenced by spec transitions) -> kernel primitive.
EFFECTS: Dict[str, Callable[[SpecModel, State, McMsg, T],
                            Iterator[State]]] = {
    "stale_drop": _eff_stale_drop,
    "nack_requester": _eff_nack_requester,
    "gets_unowned": _eff_gets_unowned,
    "gets_shared": _eff_gets_shared,
    "gets_intervene": _eff_gets_intervene,
    "getx_unowned": _eff_getx_unowned,
    "getx_upgrade": _eff_getx_upgrade,
    "getx_shared": _eff_getx_shared,
    "getx_intervene": _eff_getx_intervene,
    "install_shared": _eff_install_shared,
    "raced_drop": _eff_raced_drop,
    "install_excl": _eff_install_excl,
    "raced_excl_drop": _eff_raced_excl_drop,
    "grant_excl": _eff_grant_excl,
    "grant_ack": _eff_grant_ack,
    "apply_inv": _eff_apply_inv,
    "count_inv_ack": _eff_count_inv_ack,
    "int_busy_nack": _eff_int_busy_nack,
    "int_no_copy_nack": _eff_int_no_copy_nack,
    "serve_int_shared": _eff_serve_int_shared,
    "serve_int_excl": _eff_serve_int_excl,
    "retry_read": _eff_retry_read,
    "retry_write": _eff_retry_write,
    "int_retry": _eff_int_retry,
    "wb_race_resolve": _eff_wb_race_resolve,
    "int_await_writeback": _eff_int_await_writeback,
    "wb_resolve": _eff_wb_resolve,
    "wb_mark_during_int": _eff_wb_mark_during_int,
    "wb_apply": _eff_wb_apply,
    "wb_stale": _eff_wb_stale,
    "evc_apply": _eff_evc_apply,
    "sh_wb_apply": _eff_sh_wb_apply,
    "xfer_apply": _eff_xfer_apply,
}
