"""The guarded-action protocol specification language (IR).

One :class:`ProtocolSpec` is the single declarative ground truth for one
coherence protocol: its message vocabulary, its state domains, and its
transition relation as *guarded actions* — following Meunier et al.,
"Modeling a Cache Coherence Protocol with the Guarded Action Language"
(PAPERS.md).  The spec is pure data (frozen dataclasses); three consumers
compile or diff it:

* :mod:`repro.spec.analyze` — spec-level static checks (``SPC0xx``):
  guard overlap/exhaustiveness, unreachable states, orphan messages,
  unbroken transition cycles, request/reply pairing;
* :mod:`repro.spec.conformance` — diffs the spec transition relation
  against the AST-extracted simulator and model-checker graphs
  (``CON0xx``), replacing the hand-maintained sim<->mc name map;
* :mod:`repro.spec.mcgen` — compiles a spec (``mc_model="generated"``)
  into executable ``repro.mc`` transition rules.

Structured justifications live *in the spec*: a transition that the
simulator realises by internal re-dispatch carries ``replay=...``, one the
model hoists into a nondeterministic rule carries ``hoist=...``, and a
simulator-only emission carries ``only="sim"`` — each with a mandatory
``why``.  These annotations replace the CON003/CON004 glob entries that
used to live in ``lint_allowlist.txt``.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..common.errors import ConfigError

#: A guard atom: the named variable must take one of the listed values.
#: A transition's ``when`` tuple is a conjunction of atoms; the empty
#: tuple is the catch-all guard (always true).
Atom = Tuple[str, Tuple[str, ...]]

#: Transition tags with defined semantics (anything else is rejected).
#:
#: ``nondet``
#:     A genuine nondeterministic alternative (e.g. the delegation
#:     decision): overlapping guards inside one trigger group are legal
#:     when at least one side of the pair carries this tag.
#: ``also``
#:     An *accompanying* consequence of the trigger (e.g. the victim
#:     eviction a miss completion can force), not a competing outcome:
#:     excluded from the guard overlap/exhaustiveness analyses.
#: ``bounded``
#:     A self-forwarding emission whose loop is bounded by protocol
#:     structure; requires a ``why`` (mirrors the DLK001 allowlist bar).
#: ``unreachable``
#:     The spec asserts this guard combination cannot occur; a generated
#:     model raises :class:`SpecExecutionError` if it ever fires.
#: ``latent``
#:     Statically present via shared base-hub code but unreachable under
#:     this protocol's normalized configuration; requires a ``why``.
KNOWN_TAGS = frozenset(
    {"nondet", "also", "bounded", "unreachable", "latent"})

#: Message roles for the SPC006 request/reply pairing analysis.
KNOWN_ROLES = frozenset({"request", "reply", "ack", "hint", "other"})

KNOWN_ACTORS = frozenset({"home", "node", "producer"})


class SpecError(ConfigError):
    """A malformed protocol spec (caught at load/validate time)."""


@dataclass(frozen=True)
class Msg:
    """One declared message type.

    ``mc`` lists the model-checker tokens the message corresponds to
    (empty = deliberately unmodeled, which then *requires* ``note`` — the
    in-spec replacement for an allowlist justification line).  ``data``
    mirrors the MsgType data-bearing flag.  ``reply_to`` names the
    request(s) this message can retire, for the pairing analysis.
    """

    name: str
    mc: Tuple[str, ...] = ()
    data: bool = False
    role: str = "other"
    reply_to: Tuple[str, ...] = ()
    note: str = ""


@dataclass(frozen=True)
class T:
    """One guarded-action transition.

    ``on`` is the triggering message name, or ``"!rule"`` for a
    spontaneous entry rule (CPU read/write, eviction, ...).  ``when`` is a
    conjunction of :data:`Atom` guards over the spec's declared variable
    domains; ``emit`` the messages the action may send; ``goes`` the state
    installs it performs (``(("dir", "E"), ...)``).

    Conformance annotations (each requires ``why``):

    ``hoist``
        The model realises these emissions in the named spontaneous rule
        rather than in its message handler — the emissions are verified
        against that rule's closure instead.
    ``replay``
        The simulator realises this edge by internal re-dispatch inside
        the named function; the model re-queues the message.  The edge is
        not required in the sim graph, but the function must exist.
    ``only``
        ``"sim"``: the emission has no model counterpart at all (e.g. the
        WB_ACK round-trip the model applies atomically); ``"mc"``: a
        model-only artefact.

    ``via`` optionally names the single mc token this transition
    dispatches under when the trigger fans out to several tokens (the
    payload-discriminated NACK family).  ``effect`` names the kernel
    effect :mod:`repro.spec.mcgen` executes for generated models.
    """

    actor: str
    on: str
    when: Tuple[Atom, ...] = ()
    emit: Tuple[str, ...] = ()
    goes: Tuple[Tuple[str, str], ...] = ()
    label: str = ""
    tags: Tuple[str, ...] = ()
    via: str = ""
    hoist: str = ""
    replay: str = ""
    only: str = ""
    why: str = ""
    effect: str = ""
    mc_rule: str = ""  # entry transitions: the model rule realising them

    @property
    def is_entry(self) -> bool:
        return self.on.startswith("!")

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol, fully declared."""

    name: str
    description: str
    messages: Tuple[Msg, ...]
    dir_states: Tuple[str, ...]
    cache_states: Tuple[str, ...]
    #: Guard-variable domains; every variable a guard mentions must be
    #: declared here (exhaustiveness enumerates these domains).
    domains: Mapping[str, Tuple[str, ...]]
    transitions: Tuple[T, ...]
    #: Directory / cache states the system starts in (exempt from the
    #: "never entered" reachability check).
    initial_dir: str = "U"
    initial_cache: str = "I"
    #: "" (no model), "hand" (hand-written twin in mc/model.py), or
    #: "generated" (compiled by repro.spec.mcgen).
    mc_model: str = ""
    #: Adaptive-protocol messages statically reachable through shared hub
    #: code but config-stripped under this protocol (must not be handled).
    stripped: Tuple[str, ...] = ()

    # -- lookups -----------------------------------------------------------

    def message(self, name: str) -> Optional[Msg]:
        for msg in self.messages:
            if msg.name == name:
                return msg
        return None

    def message_names(self) -> FrozenSet[str]:
        return frozenset(msg.name for msg in self.messages)

    def handled(self) -> FrozenSet[str]:
        """Messages some transition handles (entry rules excluded)."""
        return frozenset(t.on for t in self.transitions if not t.is_entry)

    def handler_transitions(self, name: str) -> Tuple[T, ...]:
        return tuple(t for t in self.transitions if t.on == name)

    def entry_transitions(self) -> Tuple[T, ...]:
        return tuple(t for t in self.transitions if t.is_entry)

    def emitted(self) -> FrozenSet[str]:
        out = set()
        for t in self.transitions:
            out.update(t.emit)
        return frozenset(out)

    def mc_token_map(self) -> Dict[str, Tuple[str, ...]]:
        """``{message name: mc tokens}`` — the derived sim<->mc name map."""
        return {msg.name: msg.mc for msg in self.messages}

    def sim_name_of(self, token: str) -> Optional[str]:
        for msg in self.messages:
            if token in msg.mc:
                return msg.name
        return None

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Structural validation; raises :class:`SpecError`.

        This is the load-time bar (like the allowlist's mandatory
        justification): unknown names, undeclared guard variables, and
        annotations without a ``why`` are configuration errors, not
        findings.
        """
        names = self.message_names()
        if len(names) != len(self.messages):
            raise SpecError("%s: duplicate message declaration" % self.name)
        seen_tokens: Dict[str, str] = {}
        for msg in self.messages:
            if msg.role not in KNOWN_ROLES:
                raise SpecError("%s: message %s has unknown role %r"
                                % (self.name, msg.name, msg.role))
            if not msg.mc and self.mc_model and not msg.note:
                raise SpecError(
                    "%s: message %s maps to no mc token but carries no "
                    "justifying note" % (self.name, msg.name))
            for token in msg.mc:
                if token in seen_tokens:
                    raise SpecError(
                        "%s: mc token %s claimed by both %s and %s"
                        % (self.name, token, seen_tokens[token], msg.name))
                seen_tokens[token] = msg.name
            for req in msg.reply_to:
                if req not in names:
                    raise SpecError(
                        "%s: message %s replies to undeclared %s"
                        % (self.name, msg.name, req))
        for t in self.transitions:
            where = "%s transition %r (on %s)" % (self.name,
                                                  t.label or "?", t.on)
            if t.actor not in KNOWN_ACTORS:
                raise SpecError("%s: unknown actor %r" % (where, t.actor))
            if not t.label:
                raise SpecError("%s: transitions must be labelled" % where)
            if not t.is_entry and t.on not in names:
                raise SpecError("%s: triggers undeclared message" % where)
            if t.is_entry and not t.mc_rule and self.mc_model:
                raise SpecError("%s: entry transition names no mc_rule"
                                % where)
            for name in t.emit:
                if name not in names:
                    raise SpecError("%s: emits undeclared message %s"
                                    % (where, name))
            for tag in t.tags:
                if tag not in KNOWN_TAGS:
                    raise SpecError("%s: unknown tag %r" % (where, tag))
            for var, values in t.when:
                domain = self.domains.get(var)
                if domain is None:
                    raise SpecError("%s: guard variable %r has no "
                                    "declared domain" % (where, var))
                for value in values:
                    if value not in domain:
                        raise SpecError(
                            "%s: guard value %r outside %r's domain %r"
                            % (where, value, var, tuple(domain)))
                if not values:
                    raise SpecError("%s: empty guard value set for %r"
                                    % (where, var))
            for state_var, value in t.goes:
                pool = (self.dir_states if state_var == "dir"
                        else self.cache_states if state_var == "cache"
                        else None)
                if pool is not None and value not in pool:
                    raise SpecError("%s: installs undeclared %s state %r"
                                    % (where, state_var, value))
            if t.only not in ("", "sim", "mc"):
                raise SpecError("%s: only=%r is not ''/'sim'/'mc'"
                                % (where, t.only))
            needs_why = (bool(t.hoist) or bool(t.replay) or bool(t.only)
                         or t.has_tag("bounded") or t.has_tag("latent"))
            if needs_why and not t.why:
                raise SpecError(
                    "%s: hoist/replay/only/bounded/latent annotations "
                    "require a 'why' justification" % where)
            if t.via:
                owner = self.message(t.on)
                if owner is None or t.via not in owner.mc:
                    raise SpecError("%s: via token %r is not one of %s's "
                                    "mc tokens" % (where, t.via, t.on))
        stripped = set(self.stripped)
        if stripped & names:
            raise SpecError(
                "%s: %s declared both as messages and as stripped"
                % (self.name, sorted(stripped & names)))


def guard_allows(when: Tuple[Atom, ...], env: Mapping[str, str]) -> bool:
    """Evaluate a guard conjunction against a concrete variable binding.

    Variables the guard does not mention are unconstrained; a mentioned
    variable missing from ``env`` fails the guard (generated models bind
    every variable their spec's guards use).
    """
    for var, values in when:
        if env.get(var) not in values:
            return False
    return True


def guards_overlap(a: T, b: T, domains: Mapping[str, Tuple[str, ...]]) -> bool:
    """Whether two guards admit a common binding (both could fire)."""
    constraints: Dict[str, set] = {}
    for var, values in a.when + b.when:
        allowed = set(values)
        if var in constraints:
            constraints[var] &= allowed
        else:
            constraints[var] = allowed & set(domains.get(var, values))
    return all(constraints.values())
