"""The per-node hub controller.

The hub is the node's external directory controller (Figure 2): it owns the
RAC, the directory (home memory + directory cache with detector bits), the
delegate cache, and the network interface.  All of the paper's mechanisms
live here — nothing requires processor changes, exactly as the paper
stipulates.

The class is assembled from three mixins that mirror the protocol roles:

* :class:`~repro.protocol.requester.RequesterMixin` — cache-side logic
  (processor misses, replies, NACK/retry, inbound INV/INTERVENTION).
* :class:`~repro.protocol.home.HomeMixin` — home-directory logic (base
  write-invalidate protocol, delegation initiation, DELE forwarding).
* :class:`~repro.protocol.producer.ProducerMixin` — delegated-home logic
  (acting-home service, undelegation, delayed intervention, updates).
"""

from sys import getrefcount

from ..cache.hierarchy import PrivateCacheHierarchy
from ..cache.rac import RemoteAccessCache
from ..common.errors import ProtocolError, UnhandledMessageError
from ..common.rng import stream
from ..directory.dircache import DirectoryCache
from ..directory.formats import DirectoryFormat
from ..directory.state import HomeMemory
from ..network.message import Message, MsgType
from .delegate_cache import ConsumerTable, ProducerTable
from .home import HomeMixin
from .predictors import make_detector
from .producer import ProducerMixin
from .requester import RequesterMixin


class Hub(RequesterMixin, HomeMixin, ProducerMixin):
    """One node's directory/coherence controller."""

    def __init__(self, node, system):
        self.node = node
        self.system = system
        self.config = system.config
        self.events = system.events
        self.fabric = system.fabric
        self.stats = system.stats
        self.address_map = system.address_map
        self.checker = getattr(system, "checker", None)
        self.tracer = getattr(system, "tracer", None)

        protocol = self.config.protocol
        self.hierarchy = PrivateCacheHierarchy(self.config)
        self.rac = None
        if protocol.enable_rac:
            self.rac = RemoteAccessCache(
                self.config.rac,
                rng=stream(self.config.seed, "rac-%d" % node),
                stats=self.stats)
        self.home_memory = HomeMemory(node)
        self.dir_format = DirectoryFormat.parse(self.config.directory_format)
        self.detector = make_detector(protocol, self.stats)
        self.dircache = DirectoryCache(self.config.directory_cache_entries,
                                       self.detector.new_entry)
        self.producer_table = None
        self.consumer_table = None
        if protocol.enable_delegation:
            self.producer_table = ProducerTable(self.config.delegate.entries)
            self.consumer_table = ConsumerTable(
                self.config.delegate,
                rng=stream(self.config.seed, "ct-%d" % node),
                line_size=self.config.line_size)

        self.miss = None
        self._retry_rng = stream(self.config.seed, "retry-%d" % node)
        self._intervention_epoch = {}
        self._enable_updates = protocol.enable_updates

        self._handlers = {
            MsgType.GETS: self._route_request,
            MsgType.GETX: self._route_request,
            MsgType.DATA_SHARED: self._on_data_shared,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.ACK_X: self._on_ack_x,
            MsgType.INV: self._on_inv,
            MsgType.INV_ACK: self._on_inv_ack,
            MsgType.INTERVENTION: self._on_intervention,
            MsgType.SHARED_WB: self._on_shared_wb,
            MsgType.SHARED_RESP: self._on_shared_resp,
            MsgType.EXCL_RESP: self._on_excl_resp,
            MsgType.XFER_OWNER: self._on_xfer_owner,
            MsgType.WRITEBACK: self._home_writeback,
            MsgType.EVICT_CLEAN: self._home_writeback,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.NACK: self._on_nack,
            MsgType.NACK_NOT_HOME: self._on_nack_not_home,
            MsgType.DELEGATE: self._on_delegate,
            MsgType.UNDELE: self._on_undele,
            MsgType.UNDELE_REQ: self._on_undele_req,
            MsgType.HOME_CHANGED: self._on_home_changed,
            MsgType.UPDATE: self._on_update,
            MsgType.UPDATE_ACK: self._on_update_ack,
        }
        # Pre-bound dispatch array indexed by the dense MsgType.index; the
        # dict above stays the single source of truth (repro.lint's
        # protocol-graph extractor parses it) and this is its compiled
        # form.  All 23 types are handled today, but the array is built
        # defensively so a future unhandled type still raises the
        # structured error via _unhandled.
        self._handler_array = [
            self._handlers.get(mtype, self._unhandled) for mtype in MsgType
        ]
        self.send = self.fabric.send
        self.fabric.attach(node, self.dispatch, table=self._handler_array)

    # -- plumbing -----------------------------------------------------------

    # Bound through to the fabric in __init__ (one frame per message saved
    # on the hottest call in the simulator); the def remains as the
    # class-level fallback and documentation of the interface.
    def send(self, msg):
        self.fabric.send(msg)

    def dispatch(self, msg):
        """Entry point for every message delivered to this node."""
        try:
            handler = self._handler_array[msg.mtype.index]
        except (AttributeError, TypeError, IndexError):
            # Anything that is not a real MsgType lands here (note that a
            # str mtype resolves .index to the str method -> TypeError).
            self._unhandled(msg)
            return
        handler(msg)

    def _redispatch(self, msg):
        """Re-run dispatch for a message retained past its delivery frame.

        Messages parked in a BusyRecord (WB races, undelegation) were
        retained when first delivered, so the fabric's refcount gate left
        them out of the pool.  When the busy resolves and the pending
        request finally runs to completion, this frame is the new
        quiescence point: if the handler did not retain the message again,
        recycle it here — otherwise such messages leak from the pool for
        the rest of the run.  ``_pooled`` guards the fuzz-replay /
        repeated-redispatch paths against a double release.
        """
        before = getrefcount(msg)
        self.dispatch(msg)
        if getrefcount(msg) == before and not msg._pooled:
            msg.release()

    def _unhandled(self, msg):
        dir_state = None
        if self.address_map.home_of(msg.addr) == self.node:
            dir_state = self.home_memory.entry(msg.addr).state.value
        raise UnhandledMessageError(self.node, msg.mtype, dir_state,
                                    msg, cycle=self.events.now)

    def _route_request(self, msg):
        """GETS/GETX routing: acting home, real home, or stale-hint bounce."""
        addr = msg.addr
        if self.producer_table is not None and addr in self.producer_table:
            if msg.mtype is MsgType.GETS:
                self._acting_home_gets(msg)
            else:
                self._acting_home_getx(msg)
        elif self.address_map.home_of(addr) == self.node:
            if msg.mtype is MsgType.GETS:
                self._home_gets(msg)
            else:
                self._home_getx(msg)
        else:
            # A stale consumer-table hint pointed here; the requester drops
            # its hint and retries at the real home.
            self.send(Message(MsgType.NACK_NOT_HOME, src=self.node,
                              dst=msg.payload["requester"], addr=addr))

    def _on_home_changed(self, msg):
        if self.consumer_table is not None:
            self.consumer_table.insert(msg.addr, msg.payload["delegate"])

    def _protocol_error(self, text):
        return ProtocolError("[node %d @ cycle %d] %s"
                             % (self.node, self.events.now, text))

    # -- introspection (used by tests and invariant checks) --------------------

    def snapshot_line(self, addr):
        """A debugging/verification view of this node's state for ``addr``."""
        view = {
            "l2": self.hierarchy.state_of(addr).value,
            "dir": None,
            "delegated_here": False,
            "rac": None,
        }
        if self.address_map.home_of(addr) == self.node:
            entry = self.home_memory.entry(addr)
            view["dir"] = entry.state.value
        if self.producer_table is not None and addr in self.producer_table:
            view["delegated_here"] = True
        if self.rac is not None:
            line = self.rac.probe(addr)
            if line is not None:
                view["rac"] = line.kind.value
        return view
