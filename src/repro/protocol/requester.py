"""Requester-side (cache-side) hub logic.

Handles processor misses from issue to completion: target resolution
through the delegate cache, the RAC fast path, reply/ack collection,
NACK/retry with backoff, and servicing of inbound invalidations and
interventions against the local caches.

Race handling follows the SGI idiom the paper adopts (§2.3.4):

* A request that finds its target busy is NACKed and retried.
* An INV that arrives while a read miss is outstanding for the same line is
  acknowledged immediately, and the eventually filled line is dropped right
  after its single use (the read it satisfies is ordered before the
  invalidating write, which is sequentially consistent).
* An INTERVENTION that arrives while a miss is outstanding for the same
  line is NACKed back to the home, which retries it.
"""

from ..cache.line import LineState, RacKind
from ..common import stats as S
from ..network.message import Message, MsgType
from .transactions import MissKind, OutstandingMiss, PathClass


class RequesterMixin:
    """Mixin for :class:`repro.protocol.hub.Hub`: processor-side logic."""

    # -- issue ------------------------------------------------------------

    def request_read(self, addr, callback):
        """Processor read miss.  ``callback(path_class)`` fires when the
        line is readable in the local hierarchy."""
        self._start_miss(MissKind.READ, addr, 0, callback)

    def request_write(self, addr, value, callback):
        """Processor write miss (cold or upgrade).  After the callback the
        line is writable locally and the processor replays its store."""
        self._start_miss(MissKind.WRITE, addr, value, callback)

    def _start_miss(self, kind, addr, value, callback):
        if self.miss is not None:
            raise self._protocol_error("second outstanding miss (blocking CPU)")
        miss = OutstandingMiss(addr=addr, kind=kind, callback=callback,
                               store_value=value, start_time=self.events.now)
        self.miss = miss
        if self.tracer is not None:
            self.tracer.miss_begin(self.node, addr, kind.value,
                                   self.events.now)
        if kind is MissKind.READ and self.rac is not None:
            rac_line = self.rac.lookup_data(addr)
            if rac_line is not None:
                self.stats.inc(S.HIT_RAC)
                if self.tracer is not None:
                    self.tracer.rac_hit(self.node, addr, self.events.now,
                                        rac_line.kind.value)
                if rac_line.kind is RacKind.UPDATE:
                    self.stats.inc(S.HIT_RAC_UPDATE)
                miss.granted = True
                miss.grant_state = LineState.SHARED
                miss.grant_value = rac_line.value
                miss.acks_needed = 0
                self.events.schedule(self.rac.latency, self._complete_miss,
                                     miss, PathClass.LOCAL)
                return
            if self.tracer is not None:
                self.tracer.rac_miss(self.node, addr, self.events.now)
        self._issue_miss(miss)

    def _issue_miss(self, miss):
        if miss.done:
            return
        target = self._resolve_target(miss.addr)
        miss.target = target
        payload = {"requester": self.node}
        if miss.kind is MissKind.WRITE:
            # A data-less upgrade (ACK_X) is only valid if our L2 really
            # holds the line; being a sharer through a RAC copy alone is
            # not enough, so tell the home what we have.
            payload["has_copy"] = (
                self.hierarchy.state_of(miss.addr) is LineState.SHARED)
            mtype = MsgType.GETX
        else:
            mtype = MsgType.GETS
        if self.tracer is not None:
            self.tracer.miss_issue(self.node, miss.addr, self.events.now,
                                   target, mtype.label)
        self.send(Message(mtype, src=self.node, dst=target, addr=miss.addr,
                          payload=payload))

    def _resolve_target(self, addr):
        """Where to send a request: self if delegated here, the hinted
        delegated home, or the real home node."""
        if self.producer_table is not None and addr in self.producer_table:
            return self.node
        if self.consumer_table is not None:
            hint = self.consumer_table.lookup(addr)
            if hint is not None:
                return hint
        return self.address_map.home_of(addr)

    # -- replies ----------------------------------------------------------

    def _active_miss(self, addr, kind=None):
        miss = self.miss
        if miss is None or miss.done or miss.addr != addr:
            return None
        if kind is not None and miss.kind is not kind:
            return None
        return miss

    def _on_data_shared(self, msg):
        miss = self._active_miss(msg.addr, MissKind.READ)
        if miss is None:
            return  # duplicate reply (e.g. an UPDATE already completed us)
        miss.granted = True
        miss.grant_state = LineState.SHARED
        miss.grant_value = msg.value
        miss.acks_needed = 0
        if msg.payload.get("acting_home") and self.consumer_table is not None:
            self.consumer_table.insert(msg.addr, msg.src)
        self._complete_miss(miss, self._classify(msg))

    def _on_data_excl(self, msg):
        miss = self._active_miss(msg.addr)
        if miss is None:
            return
        miss.granted = True
        miss.grant_state = LineState.EXCLUSIVE
        miss.grant_value = msg.value
        miss.acks_needed = msg.payload.get("n_acks", 0)
        miss.path = self._classify(msg)
        self._maybe_finish_write(miss)

    def _on_ack_x(self, msg):
        miss = self._active_miss(msg.addr, MissKind.WRITE)
        if miss is None:
            return
        miss.granted = True
        miss.grant_state = LineState.EXCLUSIVE
        miss.grant_value = self.hierarchy.value_of(msg.addr)
        miss.acks_needed = msg.payload.get("n_acks", 0)
        miss.path = self._classify(msg)
        self._maybe_finish_write(miss)

    def _on_inv_ack(self, msg):
        miss = self._active_miss(msg.addr)
        if miss is None:
            raise self._protocol_error("INV_ACK with no outstanding miss: %r" % msg)
        if msg.payload.get("wasted_update"):
            entry = self._acting_home_entry(msg.addr)
            if entry is not None:
                entry.update_strikes[msg.src] = (
                    entry.update_strikes.get(msg.src, 0) + 1)
                self.stats.inc("update.strike")
        miss.acks_got += 1
        self._maybe_finish_write(miss)

    def _maybe_finish_write(self, miss):
        if miss.complete_when_ready():
            self._complete_miss(miss, miss.path)

    def _classify(self, msg):
        """Path class of a completed miss, from the responder's hop count."""
        hops = msg.payload.get("hops", 2)
        n_acks = msg.payload.get("n_acks", 0)
        if msg.src == self.node:
            # Served by our own hub (we are home or acting home).  Crossing
            # the network only for invalidations+acks is the paper's 2-hop
            # producer-side write; with no remote party at all it is local.
            return PathClass.TWO_HOP if n_acks else PathClass.LOCAL
        return PathClass.THREE_HOP if hops >= 3 else PathClass.TWO_HOP

    def _complete_miss(self, miss, path):
        if miss.done:
            return
        miss.done = True
        self.miss = None
        self._account_miss(path)
        if self.tracer is not None:
            self.tracer.miss_end(self.node, miss.addr, self.events.now,
                                 path.value, miss.retries, miss.start_time)
        if miss.kind is MissKind.WRITE and self.rac is not None:
            # Any RAC copy of a line we now own exclusively is stale; pinned
            # delegated entries are refreshed by the delayed intervention.
            rac_line = self.rac.probe(miss.addr)
            if rac_line is not None and not rac_line.pinned:
                self.rac.invalidate(miss.addr)
        if miss.granted:
            if (miss.grant_state is LineState.EXCLUSIVE
                    and self.hierarchy.state_of(miss.addr) is LineState.SHARED):
                self.hierarchy.grant_exclusive(miss.addr)
            else:
                notice = self.hierarchy.fill(miss.addr, miss.grant_state,
                                             miss.grant_value)
                if notice is not None:
                    self._handle_eviction(notice)
            if miss.kind is MissKind.READ and miss.path is PathClass.LOCAL:
                pass  # RAC-satisfied; nothing further
        # An invalidation raced with this read: the fill above may use its
        # value exactly once (the blocked read), then the copy must go.
        if miss.kind is MissKind.READ and miss.pending_inv:
            self._drop_after_use(miss.addr)
        producer_entry = (self.producer_table.lookup(miss.addr, touch=True)
                          if self.producer_table is not None else None)
        if producer_entry is not None and producer_entry.busy is not None:
            producer_entry.busy = None
        if (producer_entry is not None
                and producer_entry.deferred_undelegate is not None):
            self._run_deferred_undelegation(miss.addr, producer_entry)
            if miss.addr not in self.producer_table:
                producer_entry = None  # undelegation happened; no updates
        if miss.kind is MissKind.WRITE and self._enable_updates:
            if producer_entry is not None:
                self._schedule_intervention(miss.addr)
            elif (self.address_map.home_of(miss.addr) == self.node
                    and self._update_worthy_at_home(miss.addr)):
                # Producer == home: no delegation needed, but the update
                # mechanism applies identically from the home directory.
                self._schedule_intervention(miss.addr)
        if self.checker is not None:
            self.checker.on_miss_complete(self.node, miss)
        miss.callback(path)

    def _drop_after_use(self, addr):
        """Self-invalidate a line whose fill raced with an invalidation."""
        self.events.schedule(1, self._late_invalidate, addr)

    def _late_invalidate(self, addr):
        state = self.hierarchy.state_of(addr)
        self.hierarchy.invalidate(addr)
        if self.rac is not None:
            self.rac.invalidate(addr)
        if state is LineState.EXCLUSIVE:
            # The raced read was granted ownership (MESI E on a read to an
            # unowned line); dropping it is a clean eviction the directory
            # must hear about, or it will wait forever for our writeback.
            self.send(Message(MsgType.EVICT_CLEAN, src=self.node,
                              dst=self.address_map.home_of(addr), addr=addr))

    def _account_miss(self, path):
        counters = self.stats._counters
        if path is PathClass.LOCAL:
            counters[S.MISS_LOCAL] += 1
        elif path is PathClass.TWO_HOP:
            counters[S.MISS_2HOP] += 1
        elif path is PathClass.THREE_HOP:
            counters[S.MISS_3HOP] += 1
        else:
            raise self._protocol_error("unclassified miss path %r" % path)

    # -- flow control ---------------------------------------------------------

    def _on_nack(self, msg):
        purpose = msg.payload.get("for", "miss")
        if purpose == "intervention":
            self._home_intervention_nacked(msg)
            return
        if purpose == "recall":
            self._home_recall_nacked(msg)
            return
        miss = self._active_miss(msg.addr)
        if miss is None:
            return  # NACK for a transaction that already completed elsewhere
        self._retry_miss(miss)

    def _on_nack_not_home(self, msg):
        if self.consumer_table is not None:
            self.consumer_table.remove(msg.addr)
        miss = self._active_miss(msg.addr)
        if miss is None:
            return
        self._retry_miss(miss, reason="stale_hint")

    def _retry_miss(self, miss, reason="nack"):
        self.stats.inc(S.NACKS)
        if self.tracer is not None:
            self.tracer.miss_nack(self.node, miss.addr, self.events.now,
                                  reason)
        miss.retries += 1
        if miss.retries > self.config.protocol.max_retries:
            raise self._protocol_error(
                "miss for 0x%x exceeded %d retries (livelock?)"
                % (miss.addr, self.config.protocol.max_retries))
        self.stats.inc(S.RETRIES)
        self.events.schedule(self._retry_delay(miss.retries),
                             self._issue_miss, miss)

    def _retry_delay(self, attempt):
        """Back-off delay before re-issuing a miss after its ``attempt``-th
        NACK (1-based).

        The default ("fixed", no jitter) is the flat ``nack_retry_delay``
        the paper implies.  "exp" doubles per consecutive NACK up to
        ``retry_backoff_cap``; jitter adds a seeded random fraction on top.
        Either knob desynchronises two requesters whose flat retry periods
        would otherwise keep them NACKing each other in lock-step forever.
        """
        protocol = self.config.protocol
        delay = protocol.nack_retry_delay
        if protocol.retry_backoff == "exp":
            delay = min(delay << min(attempt - 1, 16),
                        protocol.retry_backoff_cap)
        if protocol.retry_jitter_frac:
            spread = int(delay * protocol.retry_jitter_frac)
            if spread:
                delay += self._retry_rng.randrange(spread + 1)
        return delay

    # -- inbound coherence actions against local caches -------------------------

    def _on_inv(self, msg):
        collector = msg.payload.get("collector", msg.src)
        miss = self._active_miss(msg.addr, MissKind.READ)
        if miss is not None:
            # Read outstanding for this very line: ack now, use the data at
            # most once when it arrives, then drop it (see module docstring).
            miss.pending_inv = True
        self.hierarchy.invalidate(msg.addr)
        wasted_update = False
        if self.rac is not None:
            rac_line = self.rac.probe(msg.addr)
            wasted_update = (rac_line is not None
                             and rac_line.kind is RacKind.UPDATE
                             and not rac_line.consumed)
            self.rac.invalidate(msg.addr)
        # The ack reports a push that died unread — the producer's
        # selective-update filter prunes persistent non-consumers on it.
        self.send(Message(MsgType.INV_ACK, src=self.node, dst=collector,
                          addr=msg.addr,
                          payload={"wasted_update": wasted_update}))

    def _on_intervention(self, msg):
        mode = msg.payload.get("mode", "shared")
        requester = msg.payload["requester"]
        home = msg.src
        if self._active_miss(msg.addr) is not None:
            # Our own transaction for this line is still in flight; tell the
            # home to retry the intervention once we have settled.
            self.send(Message(MsgType.NACK, src=self.node, dst=home,
                              addr=msg.addr,
                              payload={"for": "intervention",
                                       "reason": "busy"}))
            return
        state = self.hierarchy.state_of(msg.addr)
        if not state.writable:
            # Copy already evicted: the writeback/evict notice is in flight.
            self.send(Message(MsgType.NACK, src=self.node, dst=home,
                              addr=msg.addr,
                              payload={"for": "intervention",
                                       "reason": "no_copy"}))
            return
        hops = msg.payload.get("hops", 3)
        if mode == "shared":
            value = self.hierarchy.downgrade(msg.addr)
            self.send(Message(MsgType.SHARED_WB, src=self.node, dst=home,
                              addr=msg.addr, value=value))
            self.send(Message(MsgType.SHARED_RESP, src=self.node,
                              dst=requester, addr=msg.addr, value=value,
                              payload={"hops": hops}))
        else:
            _had, value = self.hierarchy.invalidate(msg.addr)
            self.send(Message(MsgType.EXCL_RESP, src=self.node, dst=requester,
                              addr=msg.addr, value=value,
                              payload={"hops": hops, "n_acks": 0}))
            self.send(Message(MsgType.XFER_OWNER, src=self.node, dst=home,
                              addr=msg.addr, payload={"new_owner": requester}))

    def _on_excl_resp(self, msg):
        self._on_data_excl(msg)

    def _on_shared_resp(self, msg):
        self._on_data_shared(msg)

    def _on_wb_ack(self, msg):
        pass  # writebacks are fire-and-forget at the requester

    # -- evictions ----------------------------------------------------------

    def _handle_eviction(self, notice):
        """React to an L2 line falling out of the private hierarchy."""
        addr = notice.addr
        if self.producer_table is not None and addr in self.producer_table:
            # Paper undelegation reason 2: the delegated home flushed the
            # line from its local caches.
            if notice.state is LineState.MODIFIED:
                self.rac.update_value(addr, notice.value, dirty=True)
            self._undelegate(addr, reason="flush")
            return
        if notice.state is LineState.MODIFIED:
            self.send(Message(MsgType.WRITEBACK, src=self.node,
                              dst=self.address_map.home_of(addr), addr=addr,
                              value=notice.value))
        elif notice.state is LineState.EXCLUSIVE:
            self.send(Message(MsgType.EVICT_CLEAN, src=self.node,
                              dst=self.address_map.home_of(addr), addr=addr))
        else:  # SHARED: silent; remote data may be worth keeping in the RAC
            if (self.rac is not None
                    and self.address_map.home_of(addr) != self.node):
                self.rac.insert_victim(addr, notice.value)
