"""The pluggable protocol arena: baselines the adaptive protocol races.

The paper's headline claim is that adaptive delegation/update beats plain
write-invalidate on producer-consumer sharing.  This module supplies the
competitors, each behind one small :class:`Protocol` interface:

``adaptive``
    The paper's protocol — delegation, speculative updates, the detector —
    exactly as :class:`~repro.protocol.hub.Hub` implements it.  The only
    protocol with a model-checker twin (``mc/model.py``).
``wi``
    Explicit write-invalidate: the implicit ``enable_updates=False``
    baseline promoted to a first-class protocol.  Delegation and updates
    are stripped from the config; the RAC (if configured) stays.
``mesi``
    Textbook directory MESI: no RAC, no detector, and no preserved
    sharing vector — a GETX clears the old reader set instead of keeping
    it as the paper's "most recent consumer" approximation (§2.4.2).
``dragon``
    A Dragon-style update protocol adapted to this directory fabric:
    writes still invalidate (the memory model is checked against
    sequential consistency, so consumers may never observe a store early),
    but after every write commits the writer pushes the new value to the
    just-invalidated readers, ack-gated so an update can never be
    overtaken by a later invalidation.  Unconditional updates — no
    producer-consumer detector, no pruning.

Each hub subclass declares its *own* ``_handlers`` table and re-binds the
pre-bound ``_handler_array`` dispatch, so the PR 6 hot path (dense
per-``MsgType`` array indexing, construction-time fast paths) is
preserved untouched.  Message types a protocol strips (e.g. DELEGATE
under ``wi``) fall through to ``_unhandled`` and raise the structured
:class:`~repro.common.errors.UnhandledMessageError` — receiving one is a
protocol violation, not a silent no-op.

This file is deliberately *not* in ``repro.lint``'s
``SIM_PROTOCOL_FILES``: the lint graph models the adaptive protocol (the
one with an mc twin); arena baselines are covered by per-protocol
conformance status in the lint report instead (see
:func:`repro.lint.run_lint`).
"""

from ..common import stats as S
from ..common.errors import ConfigError
from ..directory.state import DirState
from ..network.message import Message, MsgType
from .hub import Hub
from .transactions import MissKind


class Protocol:
    """One pluggable coherence protocol.

    ``normalize_config`` maps an arbitrary :class:`SystemConfig` onto the
    feature set the protocol actually implements (e.g. ``wi`` strips
    delegation); the identity for ``adaptive``, so default configs are
    byte-for-byte untouched.  ``make_hub`` builds the per-node controller.
    ``mc_twin`` marks protocols with a model-checker twin: ``True`` for
    the hand-written model in ``mc/model.py``, ``"spec"`` for a twin
    compiled from the protocol's guarded-action spec by
    ``repro.spec.mcgen`` — lint's sim<->mc conformance checks and
    ``repro verify`` only apply to those.
    """

    def __init__(self, name, hub_class, description, mc_twin=False,
                 normalize=None):
        self.name = name
        self.hub_class = hub_class
        self.description = description
        self.mc_twin = mc_twin
        self._normalize = normalize

    def normalize_config(self, config):
        if self._normalize is None:
            return config
        return self._normalize(config)

    def make_hub(self, node, system):
        return self.hub_class(node, system)

    def __repr__(self):
        return "Protocol(%r)" % self.name


# ---------------------------------------------------------------------------
# Write-invalidate: the promoted baseline.
# ---------------------------------------------------------------------------


class WriteInvalidateHub(Hub):
    """Explicit write-invalidate: the adaptive hub with the delegation and
    update machinery unreachable *by construction* — its handler table has
    no entry for the stripped message families, so receiving one raises
    instead of silently doing adaptive work.  Behaviour on a
    delegation-free config is bit-for-bit identical to the adaptive hub's
    (same code paths, same RNG streams, same event order)."""

    def __init__(self, node, system):
        super().__init__(node, system)
        self._handlers = {
            MsgType.GETS: self._route_request,
            MsgType.GETX: self._route_request,
            MsgType.DATA_SHARED: self._on_data_shared,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.ACK_X: self._on_ack_x,
            MsgType.INV: self._on_inv,
            MsgType.INV_ACK: self._on_inv_ack,
            MsgType.INTERVENTION: self._on_intervention,
            MsgType.SHARED_WB: self._on_shared_wb,
            MsgType.SHARED_RESP: self._on_shared_resp,
            MsgType.EXCL_RESP: self._on_excl_resp,
            MsgType.XFER_OWNER: self._on_xfer_owner,
            MsgType.WRITEBACK: self._home_writeback,
            MsgType.EVICT_CLEAN: self._home_writeback,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.NACK: self._on_nack,
            MsgType.NACK_NOT_HOME: self._on_nack_not_home,
        }
        self._handler_array = [
            self._handlers.get(mtype, self._unhandled) for mtype in MsgType
        ]
        self.fabric.attach(node, self.dispatch, table=self._handler_array)


def _normalize_wi(config):
    protocol = config.protocol
    if not (protocol.enable_delegation or protocol.enable_updates):
        return config
    return config.with_protocol(enable_delegation=False,
                                enable_updates=False)


# ---------------------------------------------------------------------------
# MESI: the textbook reference point.
# ---------------------------------------------------------------------------


class MesiHub(WriteInvalidateHub):
    """Textbook directory MESI.  Differs from ``wi`` in what the home
    *remembers*: a GETX over a SHARED line clears the sharing vector
    (invalidated readers are forgotten), where the paper's protocols keep
    it as the predicted consumer set.  The detector never observes
    requests, so no line is ever marked producer-consumer."""

    def __init__(self, node, system):
        super().__init__(node, system)
        self._handlers = {
            MsgType.GETS: self._route_request,
            MsgType.GETX: self._route_request,
            MsgType.DATA_SHARED: self._on_data_shared,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.ACK_X: self._on_ack_x,
            MsgType.INV: self._on_inv,
            MsgType.INV_ACK: self._on_inv_ack,
            MsgType.INTERVENTION: self._on_intervention,
            MsgType.SHARED_WB: self._on_shared_wb,
            MsgType.SHARED_RESP: self._on_shared_resp,
            MsgType.EXCL_RESP: self._on_excl_resp,
            MsgType.XFER_OWNER: self._on_xfer_owner,
            MsgType.WRITEBACK: self._home_writeback,
            MsgType.EVICT_CLEAN: self._home_writeback,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.NACK: self._on_nack,
        }
        self._handler_array = [
            self._handlers.get(mtype, self._unhandled) for mtype in MsgType
        ]
        self.fabric.attach(node, self.dispatch, table=self._handler_array)

    # -- home side, without the detector or the preserved vector ----------

    def _home_gets(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        entry = self.home_memory.entry(addr)
        if entry.busy is not None:
            self._nack(requester, addr)
            return
        if entry.state is DirState.UNOWNED:
            # The E state: exclusive-clean grant on a read to an unowned
            # line, exactly as the base protocol does.
            entry.state = DirState.EXCL
            entry.owner = requester
            entry.sharers = set()
            self._send_after_dram(Message(
                MsgType.DATA_EXCL, src=self.node, dst=requester, addr=addr,
                value=entry.value, payload={"hops": 2, "n_acks": 0}))
        elif entry.state is DirState.SHARED:
            entry.sharers.add(requester)
            self._send_after_dram(Message(
                MsgType.DATA_SHARED, src=self.node, dst=requester, addr=addr,
                value=entry.value, payload={"hops": 2}))
        elif entry.state is DirState.EXCL:
            self._home_gets_from_owner_state(entry, msg, requester)
        else:
            raise self._protocol_error("GETS in state %s" % entry.state)

    def _home_getx(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        entry = self.home_memory.entry(addr)
        if entry.busy is not None:
            self._nack(requester, addr)
            return
        if entry.state is DirState.UNOWNED:
            entry.state = DirState.EXCL
            entry.owner = requester
            self._send_after_dram(Message(
                MsgType.DATA_EXCL, src=self.node, dst=requester, addr=addr,
                value=entry.value, payload={"hops": 2, "n_acks": 0}))
        elif entry.state is DirState.SHARED:
            targets = self.dir_format.invalidation_targets(
                entry.sharers, requester, self.config.num_nodes)
            upgrade = (requester in entry.sharers
                       and msg.payload.get("has_copy", False))
            for target in sorted(targets):
                self.send(Message(MsgType.INV, src=self.node, dst=target,
                                  addr=addr,
                                  payload={"collector": requester}))
            hops = 3 if targets else 2
            entry.state = DirState.EXCL
            entry.owner = requester
            entry.sharers = set()  # MESI forgets invalidated readers
            if upgrade:
                self.send(Message(MsgType.ACK_X, src=self.node,
                                  dst=requester, addr=addr,
                                  payload={"hops": hops,
                                           "n_acks": len(targets)}))
            else:
                self._send_after_dram(Message(
                    MsgType.DATA_EXCL, src=self.node, dst=requester,
                    addr=addr, value=entry.value,
                    payload={"hops": hops, "n_acks": len(targets)}))
        elif entry.state is DirState.EXCL:
            self._home_getx_from_owner_state(entry, msg, requester)
        else:
            raise self._protocol_error("GETX in state %s" % entry.state)


def _normalize_mesi(config):
    protocol = config.protocol
    if not (protocol.enable_rac or protocol.enable_delegation
            or protocol.enable_updates):
        return config
    return config.with_protocol(enable_rac=False, enable_delegation=False,
                                enable_updates=False)


# ---------------------------------------------------------------------------
# Dragon-style updates: invalidate on write, publish after commit.
# ---------------------------------------------------------------------------


class DragonHub(Hub):
    """A Dragon-style update protocol on the directory fabric.

    Classic snooping Dragon never invalidates — every write broadcasts the
    new word to all sharers.  On this fabric stores commit only after all
    invalidation acks (that is what the online SC checker enforces), so
    the adaptation keeps the invalidate-on-write backbone and recovers
    Dragon's character by *publishing* after commit, unconditionally:

    * home-local writes reuse the adaptive delayed-intervention push
      (``_update_worthy_at_home`` returns True for every line — no
      detector gate, no strike pruning for remote writers);
    * a remote writer records which nodes acked its invalidations, and
      ``intervention_delay`` cycles after the write commits it downgrades
      its own copy and pushes the value to exactly those nodes;
    * each push demands an UPDATE_ACK; only when all consumers have acked
      does the writer report the downgrade home (a ``publish`` SHARED_WB
      that flips the directory EXCL->SHARED and replays any waiting
      request).  The ack gate is what makes a stale update unable to
      overtake a later invalidation: the home cannot invalidate the
      consumers again before it has heard the publish, which exists only
      after every consumer holds the pushed value.
    """

    def __init__(self, node, system):
        super().__init__(node, system)
        self._enable_updates = True  # config keeps delegation off; see below
        self._dragon_acks = {}    # addr -> nodes that acked our INVs
        self._publish_wait = {}   # addr -> {"missing": n, "value": v}
        self._publish_epoch = {}  # addr -> generation of scheduled publish
        self._handlers = {
            MsgType.GETS: self._route_request,
            MsgType.GETX: self._route_request,
            MsgType.DATA_SHARED: self._on_data_shared,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.ACK_X: self._on_ack_x,
            MsgType.INV: self._on_inv,
            MsgType.INV_ACK: self._on_inv_ack,
            MsgType.INTERVENTION: self._on_intervention,
            MsgType.SHARED_WB: self._on_shared_wb,
            MsgType.SHARED_RESP: self._on_shared_resp,
            MsgType.EXCL_RESP: self._on_excl_resp,
            MsgType.XFER_OWNER: self._on_xfer_owner,
            MsgType.WRITEBACK: self._home_writeback,
            MsgType.EVICT_CLEAN: self._home_writeback,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.NACK: self._on_nack,
            MsgType.NACK_NOT_HOME: self._on_nack_not_home,
            MsgType.UPDATE: self._on_update,
            MsgType.UPDATE_ACK: self._on_update_ack,
        }
        self._handler_array = [
            self._handlers.get(mtype, self._unhandled) for mtype in MsgType
        ]
        self.fabric.attach(node, self.dispatch, table=self._handler_array)

    # -- home-local writes: the adaptive push, ungated ---------------------

    def _update_worthy_at_home(self, addr):
        return True  # Dragon updates unconditionally; no detector gate

    # -- remote writes: record the invalidated readers ---------------------

    def _on_inv_ack(self, msg):
        miss = self._active_miss(msg.addr, MissKind.WRITE)
        if miss is not None:
            self._dragon_acks.setdefault(msg.addr, set()).add(msg.src)
        super()._on_inv_ack(msg)

    def _complete_miss(self, miss, path):
        if miss.done:
            return
        addr, kind = miss.addr, miss.kind
        super()._complete_miss(miss, path)
        if kind is not MissKind.WRITE:
            return
        targets = self._dragon_acks.pop(addr, None)
        if not targets or self.address_map.home_of(addr) == self.node:
            return  # home-local writes publish via _fire_intervention
        epoch = self._publish_epoch.get(addr, 0) + 1
        self._publish_epoch[addr] = epoch
        self.events.schedule(self.config.protocol.intervention_delay,
                             self._dragon_publish, addr, sorted(targets),
                             epoch)

    def _dragon_publish(self, addr, targets, epoch):
        if self._publish_epoch.get(addr) != epoch:
            return
        if not self.hierarchy.state_of(addr).writable:
            # Evicted (writeback in flight) or intervened away: the home
            # learns the value through that path instead.
            return
        self.stats.inc(S.INTERVENTIONS)
        value = self.hierarchy.downgrade(addr)
        if self.tracer is not None:
            self.tracer.update_push(self.node, addr, self.events.now,
                                    targets=len(targets), pruned=0)
        self._publish_wait[addr] = {"missing": len(targets), "value": value}
        for consumer in targets:
            self.stats.inc(S.UPDATES_SENT)
            self.send(Message(MsgType.UPDATE, src=self.node, dst=consumer,
                              addr=addr, value=value,
                              payload={"hops": 2, "ack": True}))

    def _on_update_ack(self, msg):
        wait = self._publish_wait.get(msg.addr)
        if wait is None:
            super()._on_update_ack(msg)
            return
        wait["missing"] -= 1
        if wait["missing"] <= 0:
            del self._publish_wait[msg.addr]
            self.send(Message(
                MsgType.SHARED_WB, src=self.node,
                dst=self.address_map.home_of(msg.addr), addr=msg.addr,
                value=wait["value"], payload={"publish": True}))

    # -- home side of a publish --------------------------------------------

    def _on_shared_wb(self, msg):
        if not msg.payload.get("publish"):
            super()._on_shared_wb(msg)
            return
        entry = self.home_memory.entry(msg.addr)
        entry.value = msg.value
        if entry.state is not DirState.EXCL or entry.owner != msg.src:
            return  # ownership moved on; the new owner's path carries truth
        entry.state = DirState.SHARED
        # The preserved vector (inherited _home_getx) is exactly the set
        # the writer just updated; they hold fresh copies again.
        entry.sharers = set(entry.sharers) | {msg.src}
        entry.owner = None
        busy = entry.busy
        if busy is not None:
            # An intervention raced the publish window (the writer NACKed
            # it "no_copy" after downgrading): the publish resolves it.
            pending = busy.req_msg
            entry.busy = None
            self._redispatch(pending)

    def _home_intervention_nacked(self, msg):
        entry = self.home_memory.entry(msg.addr)
        if entry.busy is not None and entry.owner != msg.src:
            # A stale NACK from a previous owner whose publish already
            # resolved that busy record; the current busy belongs to a
            # newer transaction with a different owner.
            return
        super()._home_intervention_nacked(msg)


def _normalize_dragon(config):
    protocol = config.protocol
    if (protocol.enable_rac and not protocol.enable_delegation
            and not protocol.enable_updates):
        return config
    # The RAC is where consumers keep pushed values; delegation stays off
    # (the hub re-enables the update machinery internally).
    return config.with_protocol(enable_rac=True, enable_delegation=False,
                                enable_updates=False)


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

PROTOCOLS = {
    "adaptive": Protocol(
        "adaptive", Hub,
        "paper's adaptive delegation/update protocol (mc-model twin)",
        mc_twin=True),
    "wi": Protocol(
        "wi", WriteInvalidateHub,
        "explicit write-invalidate baseline (no delegation, no updates)",
        normalize=_normalize_wi),
    "mesi": Protocol(
        "mesi", MesiHub,
        "textbook directory MESI (no RAC, no preserved sharing vector)",
        mc_twin="spec", normalize=_normalize_mesi),
    "dragon": Protocol(
        "dragon", DragonHub,
        "Dragon-style update protocol (unconditional ack-gated publish)",
        normalize=_normalize_dragon),
}

#: Arena sweep order: the paper's protocol first, then the baselines.
ARENA_PROTOCOLS = ("adaptive", "wi", "mesi", "dragon")


def protocol_names():
    return list(PROTOCOLS)


def resolve_protocol(name):
    """Look up a protocol by name; raises ConfigError on unknown names."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ConfigError("unknown protocol %r (known: %s)"
                          % (name, ", ".join(sorted(PROTOCOLS)))) from None


__all__ = [
    "ARENA_PROTOCOLS", "DragonHub", "MesiHub", "PROTOCOLS", "Protocol",
    "WriteInvalidateHub", "protocol_names", "resolve_protocol",
]
