"""Home-node directory logic.

Implements the base directory-based write-invalidate protocol (GETS/GETX
processing, interventions, writebacks, the BUSY/NACK discipline) plus the
home's side of the paper's extensions: detector updates on every request
it processes, delegation initiation (Figure 4a), request forwarding while
in DELE (Figure 4b), and home-initiated undelegation on a remote exclusive
request (§2.3.3, reason 3).

Data-bearing replies that read memory pay the DRAM latency before hitting
the wire; directory-only actions (forwards, invalidations, NACKs) leave
immediately after the hub occupancy already charged by the fabric.
"""

from ..common import stats as S
from ..directory.state import DirState
from ..network.message import Message, MsgType
from .transactions import BusyKind, BusyRecord


class HomeMixin:
    """Mixin for :class:`repro.protocol.hub.Hub`: home-directory logic."""

    # -- request processing -------------------------------------------------

    def _home_gets(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        entry = self.home_memory.entry(addr)
        if entry.busy is not None:
            self._nack(requester, addr)
            return
        if entry.state is DirState.DELE:
            self._forward_to_delegate(entry, msg, requester)
            return
        det = self.dircache.lookup(addr)
        # Uniqueness filter: only the SHARED state's sharing vector lists
        # *actual* readers; in EXCL it holds the preserved previous-consumer
        # set (the update-set trick), which must not mask fresh readers.
        already_sharer = (entry.state is DirState.SHARED
                          and requester in entry.sharers)
        self.detector.observe_read(det, requester, already_sharer)
        if entry.state is DirState.UNOWNED:
            # MESI exclusive grant on a read to an unowned line.
            entry.state = DirState.EXCL
            entry.owner = requester
            entry.sharers = set()
            self._send_after_dram(Message(
                MsgType.DATA_EXCL, src=self.node, dst=requester, addr=addr,
                value=entry.value, payload={"hops": 2, "n_acks": 0}))
        elif entry.state is DirState.SHARED:
            entry.sharers.add(requester)
            entry.update_strikes.pop(requester, None)  # active reader again
            self._send_after_dram(Message(
                MsgType.DATA_SHARED, src=self.node, dst=requester, addr=addr,
                value=entry.value, payload={"hops": 2}))
        elif entry.state is DirState.EXCL:
            self._home_gets_from_owner_state(entry, msg, requester)
        else:
            raise self._protocol_error("GETS in state %s" % entry.state)

    def _home_gets_from_owner_state(self, entry, msg, requester):
        addr = entry.addr
        owner = entry.owner
        if owner == requester:
            # The owner's writeback must be in flight; retry until it lands.
            self._nack(requester, addr)
            return
        if owner == self.node:
            if self._active_miss(addr) is not None:
                # Our own CPU's grant for this line is still in flight; the
                # requester retries, exactly as a remote owner's NACK-busy
                # would make it do.
                self._nack(requester, addr)
                return
            # Home's own processor is the owner: a purely local intervention.
            if self.hierarchy.state_of(addr).writable:
                value = self.hierarchy.downgrade(addr)
                entry.value = value
                entry.state = DirState.SHARED
                entry.sharers = {owner, requester}  # fresh read: new vector
                entry.owner = None
                self.send(Message(MsgType.DATA_SHARED, src=self.node,
                                  dst=requester, addr=addr, value=value,
                                  payload={"hops": 2}))
                return
            # Local copy already evicted; wait for our own writeback.
            entry.busy = BusyRecord(BusyKind.WB_RACE, requester=requester,
                                    req_msg=msg)
            return
        entry.busy = BusyRecord(BusyKind.INTERVENTION, requester=requester,
                                req_msg=msg)
        self.send(Message(MsgType.INTERVENTION, src=self.node, dst=owner,
                          addr=addr,
                          payload={"mode": "shared", "requester": requester,
                                   "hops": 2 if requester == self.node else 3}))

    def _home_getx(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        entry = self.home_memory.entry(addr)
        if entry.busy is not None:
            self._nack(requester, addr)
            return
        if entry.state is DirState.DELE:
            if requester == entry.delegate:
                # The producer raced its own delegation; retry until its
                # DELEGATE message lands and it serves itself (§2.3.4).
                self._nack(requester, addr)
                return
            # Undelegation reason 3: another node wants exclusive ownership.
            entry.busy = BusyRecord(BusyKind.UNDELEGATE, requester=requester,
                                    req_msg=msg)
            self.send(Message(MsgType.UNDELE_REQ, src=self.node,
                              dst=entry.delegate, addr=addr))
            return
        det = self.dircache.lookup(addr)
        distinct_readers = len(entry.sharers - {requester})
        newly_marked = self.detector.observe_write(det, requester,
                                                   distinct_readers)
        delegate_now = (
            self.config.protocol.enable_delegation
            and (newly_marked or det.marked_pc)
            and requester != self.node
            and entry.state in (DirState.UNOWNED, DirState.SHARED)
        )
        if entry.state is DirState.UNOWNED:
            if delegate_now:
                self._initiate_delegation(entry, requester, n_acks=0)
            else:
                entry.state = DirState.EXCL
                entry.owner = requester
                self._send_after_dram(Message(
                    MsgType.DATA_EXCL, src=self.node, dst=requester,
                    addr=addr, value=entry.value,
                    payload={"hops": 2, "n_acks": 0}))
        elif entry.state is DirState.SHARED:
            # The hardware acts on its (possibly lossy) vector encoding:
            # compressed formats over-approximate, costing extra INVs.
            targets = self.dir_format.invalidation_targets(
                entry.sharers, requester, self.config.num_nodes)
            upgrade = (requester in entry.sharers
                       and msg.payload.get("has_copy", False))
            for target in sorted(targets):
                self.send(Message(MsgType.INV, src=self.node, dst=target,
                                  addr=addr,
                                  payload={"collector": requester}))
            hops = 3 if targets else 2
            if delegate_now:
                self._initiate_delegation(entry, requester,
                                          n_acks=len(targets), hops=hops)
                return
            # Keep the old sharing vector as the most-recent consumer set
            # (the paper's ownerID trick, §2.4.2); the owner field tells the
            # protocol who actually holds the line.  Preserve the *exact*
            # set, not the format-expanded ``targets``: storing the lossy
            # expansion back would compound across write rounds (a limited
            # vector that once overflowed to broadcast would stay broadcast
            # forever) — the encoding is re-applied at the next action point.
            entry.state = DirState.EXCL
            entry.owner = requester
            entry.sharers = entry.sharers - {requester}
            if upgrade:
                self.send(Message(MsgType.ACK_X, src=self.node,
                                  dst=requester, addr=addr,
                                  payload={"hops": hops,
                                           "n_acks": len(targets)}))
            else:
                self._send_after_dram(Message(
                    MsgType.DATA_EXCL, src=self.node, dst=requester,
                    addr=addr, value=entry.value,
                    payload={"hops": hops, "n_acks": len(targets)}))
        elif entry.state is DirState.EXCL:
            self._home_getx_from_owner_state(entry, msg, requester)
        else:
            raise self._protocol_error("GETX in state %s" % entry.state)

    def _home_getx_from_owner_state(self, entry, msg, requester):
        addr = entry.addr
        owner = entry.owner
        if owner == requester:
            self._nack(requester, addr)  # writeback in flight; retry
            return
        if owner == self.node:
            if self._active_miss(addr) is not None:
                self._nack(requester, addr)  # our own grant still in flight
                return
            if self.hierarchy.state_of(addr).writable:
                _had, value = self.hierarchy.invalidate(addr)
                entry.value = value
                entry.owner = requester
                self._send_after_dram(Message(
                    MsgType.DATA_EXCL, src=self.node, dst=requester,
                    addr=addr, value=value,
                    payload={"hops": 2, "n_acks": 0}))
                return
            entry.busy = BusyRecord(BusyKind.WB_RACE, requester=requester,
                                    req_msg=msg)
            return
        entry.busy = BusyRecord(BusyKind.INTERVENTION, requester=requester,
                                req_msg=msg)
        self.send(Message(MsgType.INTERVENTION, src=self.node, dst=owner,
                          addr=addr,
                          payload={"mode": "excl", "requester": requester,
                                   "hops": 2 if requester == self.node else 3}))

    # -- intervention completion ------------------------------------------------

    def _on_shared_wb(self, msg):
        entry = self.home_memory.entry(msg.addr)
        entry.value = msg.value
        busy = entry.busy
        if busy is None or busy.kind is not BusyKind.INTERVENTION:
            raise self._protocol_error("unexpected SHARED_WB %r" % msg)
        entry.state = DirState.SHARED
        entry.sharers = {entry.owner, busy.requester}  # fresh read vector
        entry.owner = None
        entry.busy = None

    def _on_xfer_owner(self, msg):
        entry = self.home_memory.entry(msg.addr)
        busy = entry.busy
        if busy is None or busy.kind is not BusyKind.INTERVENTION:
            raise self._protocol_error("unexpected XFER_OWNER %r" % msg)
        entry.owner = msg.payload["new_owner"]
        entry.busy = None

    def _home_intervention_nacked(self, msg):
        """The owner had no copy (writeback racing) or was mid-transaction."""
        entry = self.home_memory.entry(msg.addr)
        busy = entry.busy
        if busy is None or busy.kind not in (BusyKind.INTERVENTION,
                                             BusyKind.WB_RACE):
            return  # already resolved by an arriving writeback
        if msg.payload.get("reason") == "busy":
            # The owner's own miss is still completing; retry shortly.
            mode = "excl" if busy.req_msg.mtype is MsgType.GETX else "shared"
            self.events.schedule(
                self.config.protocol.nack_retry_delay,
                self._retry_intervention, entry.addr, msg.src, mode)
            return
        if busy.info.get("wb_arrived"):
            self._resolve_wb_race(entry)
        else:
            busy.kind = BusyKind.WB_RACE

    def _retry_intervention(self, addr, owner, mode):
        entry = self.home_memory.entry(addr)
        busy = entry.busy
        if busy is None or busy.kind is not BusyKind.INTERVENTION:
            return
        if entry.owner != owner:
            return
        self.send(Message(MsgType.INTERVENTION, src=self.node, dst=owner,
                          addr=addr,
                          payload={"mode": mode, "requester": busy.requester}))

    # -- writebacks ---------------------------------------------------------------

    def _home_writeback(self, msg):
        entry = self.home_memory.entry(msg.addr)
        if msg.mtype is MsgType.WRITEBACK:
            entry.value = msg.value
        busy = entry.busy
        if busy is not None:
            if busy.kind is BusyKind.WB_RACE:
                self._resolve_wb_race(entry)
            elif busy.kind is BusyKind.INTERVENTION:
                busy.info["wb_arrived"] = True
            # UNDELEGATE busy cannot see writebacks: a delegated line's only
            # possible owner is the producer, whose flush undelegates.
        elif entry.state is DirState.EXCL and entry.owner == msg.src:
            entry.state = DirState.UNOWNED
            entry.owner = None
        self.send(Message(MsgType.WB_ACK, src=self.node, dst=msg.src,
                          addr=msg.addr))

    def _resolve_wb_race(self, entry):
        """The data came home while a requester was waiting: replay them."""
        pending = entry.busy.req_msg
        entry.busy = None
        entry.state = DirState.UNOWNED
        entry.owner = None
        entry.sharers = set()
        self._redispatch(pending)

    # -- delegation (home side) --------------------------------------------------

    def _initiate_delegation(self, entry, producer, n_acks, hops=2):
        """Figure 4a: pack directory info and data into a DELEGATE message
        that doubles as the producer's exclusive reply."""
        self.stats.inc(S.DELEGATIONS)
        if self.tracer is not None:
            self.tracer.event("dele.initiate", self.node, entry.addr,
                              self.events.now, producer=producer)
        snapshot = {
            "state": DirState.EXCL,
            "owner": producer,
            "sharers": entry.sharers - {producer},
            "value": entry.value,
        }
        entry.state = DirState.DELE
        entry.delegate = producer
        entry.owner = None
        entry.sharers = set()
        self._send_after_dram(Message(
            MsgType.DELEGATE, src=self.node, dst=producer, addr=entry.addr,
            value=entry.value,
            payload={"dir": snapshot, "hops": hops, "n_acks": n_acks}))

    def _forward_to_delegate(self, entry, msg, requester):
        """Figure 4b: forward to the delegated home and hint the requester."""
        if requester == entry.delegate:
            self._nack(requester, entry.addr)
            return
        self.send(Message(msg.mtype, src=self.node, dst=entry.delegate,
                          addr=entry.addr,
                          payload={"requester": requester, "forwarded": True}))
        self.send(Message(MsgType.HOME_CHANGED, src=self.node, dst=requester,
                          addr=entry.addr,
                          payload={"delegate": entry.delegate}))

    def _on_undele(self, msg):
        """The producer returned directory authority (any undelegation)."""
        entry = self.home_memory.entry(msg.addr)
        if self.tracer is not None:
            self.tracer.event("dele.returned", self.node, msg.addr,
                              self.events.now, producer=msg.src)
        pending = entry.busy  # capture before restore() clears it
        entry.restore(msg.payload["dir"])
        entry.value = msg.value
        det = self.dircache.lookup(msg.addr, create=False)
        if det is not None:
            # Detection restarts from scratch, as if the entry was flushed.
            det.marked_pc = False
            det.write_repeat = 0
            det.reader_count = 0
        if pending is not None and pending.kind is BusyKind.UNDELEGATE:
            self._redispatch(pending.req_msg)

    def _home_recall_nacked(self, msg):
        """The producer NACKed our UNDELE_REQ."""
        entry = self.home_memory.entry(msg.addr)
        busy = entry.busy
        if busy is None or busy.kind is not BusyKind.UNDELEGATE:
            return
        if msg.payload.get("reason") == "gone":
            # A voluntary UNDELE is already in flight and will resolve this.
            return
        self.events.schedule(self.config.protocol.nack_retry_delay,
                             self._retry_recall, msg.addr)

    def _retry_recall(self, addr):
        entry = self.home_memory.entry(addr)
        busy = entry.busy
        if (busy is None or busy.kind is not BusyKind.UNDELEGATE
                or entry.state is not DirState.DELE):
            return
        self.send(Message(MsgType.UNDELE_REQ, src=self.node,
                          dst=entry.delegate, addr=addr))

    # -- helpers ---------------------------------------------------------------

    def _nack(self, requester, addr):
        self.send(Message(MsgType.NACK, src=self.node, dst=requester,
                          addr=addr, payload={"for": "miss"}))

    def _send_after_dram(self, msg):
        self.events.schedule(self.config.dram_latency, self.send, msg)
