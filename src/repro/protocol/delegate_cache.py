"""The delegate cache: producer table + consumer table (paper §2.3, Fig. 3).

* The **producer table** holds the directory entries of lines delegated *to*
  this node (valid bit, tag, age, DirEntry — 10 bytes in hardware).  Its
  capacity bounds how many lines a node can act as home for; inserting into
  a full table evicts the oldest entry, which forces an undelegation
  (undelegation reason 1).
* The **consumer table** holds hints about lines delegated to *other* nodes
  (valid bit, tag, new home — 6 bytes).  It is 4-way set associative with
  random replacement; entries are pure hints, so eviction or staleness only
  costs extra messages (NACK_NOT_HOME + retry), never correctness.
"""

from ..common.errors import ProtocolError
from ..directory.state import DirectoryEntry


class ProducerTable:
    """Delegated-directory storage at a producer node (LRU by age field)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = {}  # addr -> DirectoryEntry; dict order tracks age

    def lookup(self, addr, touch=True):
        """The delegated directory entry for ``addr``, or None.

        ``touch`` refreshes the age field (moves the entry to youngest).
        """
        entry = self._entries.get(addr)
        if entry is not None and touch:
            self._entries.pop(addr)
            self._entries[addr] = entry
        return entry

    @property
    def has_room(self):
        """Whether an insert can proceed without evicting first."""
        return len(self._entries) < self.capacity

    def victim_if_full(self):
        """The entry that must be undelegated before a new insert, if any.

        Prefers the oldest entry that is not mid-transaction; returns None
        when there is room (check :attr:`has_room`) *or* when every entry
        is busy — in which case the caller must decline the new delegation
        instead of inserting.
        """
        if self.has_room:
            return None
        for entry in self._entries.values():  # oldest first
            if (entry.busy is None and entry.pending_updates == 0
                    and entry.deferred_undelegate is None):
                return entry
        return None

    def insert(self, addr, dir_entry):
        """Install a delegated entry; the table must have room (the caller
        evicts via :meth:`victim_if_full` + undelegation first)."""
        if addr in self._entries:
            raise ProtocolError("line 0x%x already delegated here" % addr)
        if len(self._entries) >= self.capacity:
            raise ProtocolError("producer table full; evict before insert")
        if not isinstance(dir_entry, DirectoryEntry):
            raise ProtocolError("producer table stores DirectoryEntry records")
        self._entries[addr] = dir_entry

    def remove(self, addr):
        """Invalidate the entry for ``addr`` (undelegation); returns it."""
        return self._entries.pop(addr, None)

    def __contains__(self, addr):
        return addr in self._entries

    def __len__(self):
        return len(self._entries)

    def addresses(self):
        return list(self._entries.keys())


class ConsumerTable:
    """Set-associative hint store: line address -> delegated home node."""

    def __init__(self, config, rng, line_size=128):
        self.capacity = config.entries
        self.assoc = config.consumer_assoc
        self.num_sets = config.entries // config.consumer_assoc
        self._rng = rng
        # Index by line number: with a shift narrower than the line (e.g. a
        # hard-coded >>7 at 256-byte lines) consecutive lines land only on
        # every other set, halving the table's effective capacity.
        self._shift = line_size.bit_length() - 1
        self._sets = [dict() for _ in range(self.num_sets)]

    def _set_for(self, addr):
        return self._sets[(addr >> self._shift) % self.num_sets]

    def lookup(self, addr):
        """The hinted delegated home for ``addr``, or None."""
        return self._set_for(addr).get(addr)

    def insert(self, addr, delegate):
        """Record (or refresh) a delegation hint; random replacement."""
        hint_set = self._set_for(addr)
        if addr not in hint_set and len(hint_set) >= self.assoc:
            victim = self._rng.choice(list(hint_set.keys()))
            del hint_set[victim]
        hint_set[addr] = delegate

    def remove(self, addr):
        """Drop a stale hint (after a NACK_NOT_HOME)."""
        return self._set_for(addr).pop(addr, None)

    def __contains__(self, addr):
        return addr in self._set_for(addr)

    def __len__(self):
        return sum(len(s) for s in self._sets)
