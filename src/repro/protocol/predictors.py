"""Alternative sharing-pattern predictors (the paper's §5 future work).

The shipped detector (:mod:`repro.protocol.detector`) is deliberately
simple and conservative: any change of writer resets it, so multi-writer
lines and false sharing are never optimised.  The paper's conclusion
proposes "more sophisticated predictors, e.g., one that can detect
producer-consumer behavior in the face of false sharing and multiple
writers" — this module implements that extension so the trade-off can be
measured (``benchmarks/bench_ablation_detector.py``):

* :class:`MultiWriterDetector` tolerates a small set of alternating
  writers: a line is marked producer-consumer when writes from *within a
  stable writer set* repeat with intervening reads.  Delegation then goes
  to the most recent writer, and the ablation shows the cost the paper
  avoided — lines bouncing between writers cause delegation churn and
  wasted updates (CG's false-shared lines are the cautionary case).

Detector aggressiveness is a separate, orthogonal knob: the saturation
threshold is already configurable via ``ProtocolConfig.write_repeat_bits``
(1 bit marks after a single repeat write; 3 bits require seven).
"""

from dataclasses import dataclass, field
from typing import Tuple

from ..common.stats import PC_DETECTED
from .detector import DetectorEntry, ProducerConsumerDetector, consumer_bucket


@dataclass
class MultiWriterEntry(DetectorEntry):
    """Detector bits extended with a tiny writer-set history.

    ``writer_set`` would be two extra 4-bit fields in hardware (the paper's
    style of costing); everything else matches the simple detector.
    """

    writer_set: Tuple[int, ...] = field(default_factory=tuple)


class MultiWriterDetector(ProducerConsumerDetector):
    """Marks lines written by a *stable set* of up to ``max_writers``.

    The write-repeat counter advances when the writer is already in the
    observed writer set and readers intervened since the last write; a
    write from outside the set shrinks confidence instead of hard
    resetting, and only an overflowing writer set resets detection.
    """

    def __init__(self, protocol_config, stats, max_writers=2):
        super().__init__(protocol_config, stats)
        self.max_writers = max_writers

    def new_entry(self, addr):
        return MultiWriterEntry(addr=addr)

    def observe_write(self, entry, writer, distinct_readers):
        if entry is None:
            return False
        newly_marked = False
        in_set = writer in entry.writer_set
        if in_set and entry.reader_count >= 1:
            entry.write_repeat = min(entry.write_repeat + 1,
                                     self._repeat_max)
            if distinct_readers >= 1:
                self._stats.inc(
                    "detector.consumers.%s" % consumer_bucket(distinct_readers))
            if entry.write_repeat >= self._repeat_max and not entry.marked_pc:
                entry.marked_pc = True
                newly_marked = True
                self._stats.inc(PC_DETECTED)
        elif not in_set:
            if len(entry.writer_set) < self.max_writers:
                entry.writer_set = entry.writer_set + (writer,)
                # New member: lose some confidence but keep the pattern.
                entry.write_repeat = max(0, entry.write_repeat - 1)
            else:
                # Writer-set overflow: this is not a stable pattern.
                entry.writer_set = (writer,)
                entry.write_repeat = 0
                entry.marked_pc = False
        entry.last_writer = writer
        entry.reader_count = 0
        return newly_marked


#: name -> detector class, used by the hub to honour
#: ``ProtocolConfig.detector_kind``.
DETECTOR_KINDS = {
    "simple": ProducerConsumerDetector,
    "multiwriter": MultiWriterDetector,
}


def make_detector(protocol_config, stats):
    """Instantiate the configured detector."""
    kind = getattr(protocol_config, "detector_kind", "simple")
    try:
        cls = DETECTOR_KINDS[kind]
    except KeyError:
        raise ValueError("unknown detector kind %r (choose from %s)"
                         % (kind, sorted(DETECTOR_KINDS))) from None
    return cls(protocol_config, stats)
