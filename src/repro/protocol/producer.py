"""Producer-side (delegated home) logic and the speculative update engine.

Once a line is delegated here, this node *is* the directory for it: the
producer table holds the line's DirectoryEntry and all coherence requests
are served locally (2-hop for remote requesters, local for the producer's
own writes).  The pinned RAC entry acts as surrogate main memory.

Speculative updates (paper §2.4): after each exclusive grant to the local
processor on a delegated line, a *delayed intervention* fires
``intervention_delay`` cycles later, downgrading the processor's copy to
SHARED, capturing the data in the RAC, and pushing UPDATE messages to the
previous sharing vector — the consumers of the last round, who are the
nodes most likely to read the new data.  Update recipients are registered
as sharers, so the next invalidation reaches their RAC copies; that is why
the mechanism stays sequentially consistent.
"""

from ..cache.line import LineState
from ..common import stats as S
from ..directory.state import DirectoryEntry, DirState
from ..network.message import Message, MsgType
from .transactions import BusyKind, BusyRecord, MissKind


class ProducerMixin:
    """Mixin for :class:`repro.protocol.hub.Hub`: delegated-home logic."""

    # -- delegation acceptance (Figure 4a, steps 6-8) -------------------------

    def _on_delegate(self, msg):
        addr = msg.addr
        snapshot = msg.payload["dir"]
        miss = self._active_miss(addr, MissKind.WRITE)
        if miss is None:
            raise self._protocol_error(
                "DELEGATE without an outstanding write miss: %r" % msg)
        if self._accept_delegation(addr, snapshot, msg.value):
            self.stats.inc("dele.accepted")
            if self.tracer is not None:
                self.tracer.delegation_begin(self.node, addr, self.events.now)
        else:
            # No room to act as home: take the exclusive grant but hand the
            # directory straight back (an accept-and-immediately-undelegate).
            self.stats.inc("dele.declined")
            self.stats.inc(S.UNDELEGATIONS + "declined")
            if self.tracer is not None:
                self.tracer.event("dele.declined", self.node, addr,
                                  self.events.now)
            self.send(Message(
                MsgType.UNDELE, src=self.node, dst=msg.src, addr=addr,
                value=msg.value,
                payload={"dir": {"state": DirState.EXCL, "owner": self.node,
                                 "sharers": set(snapshot["sharers"]),
                                 "value": msg.value}}))
        # Step 8: convert the delegate message into an exclusive reply.
        self._on_data_excl(msg)

    def _accept_delegation(self, addr, snapshot, value):
        """Install producer-table and pinned-RAC entries; False if no room."""
        victim = None
        if not self.producer_table.has_room:
            victim = self.producer_table.victim_if_full()
            if victim is None:
                return False  # every entry is mid-transaction
        if not self.rac.can_pin(addr):
            pinned_victim = self._evictable_pinned_line(addr)
            if pinned_victim is None:
                return False
            self._undelegate(pinned_victim, reason="capacity")
        if victim is not None:
            self._undelegate(victim.addr, reason="capacity")
        if not self.producer_table.has_room:
            # The victim (or the pinned line) did not actually free a slot —
            # its undelegation deferred, or the two eviction paths picked
            # the same line.  Decline rather than hit insert's full-table
            # ProtocolError: a declined delegation is always protocol-legal.
            return False
        entry = DirectoryEntry(addr=addr, state=snapshot["state"],
                               sharers=set(snapshot["sharers"]),
                               owner=snapshot["owner"],
                               value=snapshot["value"])
        # Stay busy until our own write miss completes, so remote requests
        # racing the delegation are NACKed and retried (§2.3.4).
        entry.busy = BusyRecord(BusyKind.INVALIDATING)
        self.producer_table.insert(addr, entry)
        self.rac.pin_delegated(addr, value=value)
        return True

    def _evictable_pinned_line(self, addr):
        """A delegated line pinned in ``addr``'s RAC set that could be
        undelegated to free a pin slot, or None."""
        for pinned_addr in self.rac.pinned_conflicts(addr):
            pentry = self.producer_table.lookup(pinned_addr, touch=False)
            if (pentry is not None and pentry.busy is None
                    and pentry.pending_updates == 0
                    and pentry.deferred_undelegate is None):
                return pinned_addr
        return None

    # -- acting-home request service -----------------------------------------

    def _acting_home_gets(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        hops = 3 if msg.payload.get("forwarded") else 2
        pentry = self.producer_table.lookup(addr)
        if pentry.busy is not None:
            self._nack(requester, addr)
            return
        if pentry.state is DirState.EXCL:
            if pentry.owner != self.node:
                raise self._protocol_error(
                    "delegated line 0x%x owned by remote node %r"
                    % (addr, pentry.owner))
            if self.hierarchy.state_of(addr).writable:
                value = self.hierarchy.downgrade(addr)
                self._cancel_intervention(addr)
                self.rac.update_value(addr, value, dirty=True)
            else:
                value = self.rac.probe(addr).value
            pentry.state = DirState.SHARED
            pentry.owner = None
            pentry.sharers = {self.node, requester}  # fresh read vector
            pentry.update_strikes.pop(requester, None)  # it reads again
        elif pentry.state is DirState.SHARED:
            rac_line = self.rac.probe(addr)
            value = rac_line.value if rac_line is not None else pentry.value
            pentry.sharers.add(requester)
            pentry.update_strikes.pop(requester, None)  # active reader
        else:
            raise self._protocol_error(
                "acting-home GETS in state %s" % pentry.state)
        reply = Message(MsgType.DATA_SHARED, src=self.node, dst=requester,
                        addr=addr, value=value,
                        payload={"hops": hops, "acting_home": True})
        self.events.schedule(self.rac.latency, self.send, reply)

    def _acting_home_getx(self, msg):
        addr, requester = msg.addr, msg.payload["requester"]
        pentry = self.producer_table.lookup(addr)
        if pentry.busy is not None:
            self._nack(requester, addr)
            return
        if requester != self.node:
            if pentry.pending_updates > 0:
                # Updates still draining: the requester retries here until
                # the directory is allowed to move.
                self._nack(requester, addr)
                pentry.deferred_undelegate = "remote_getx"
                return
            # Undelegation reason 3, initiated here because the requester
            # reached us directly: bounce it to the real home and give the
            # directory back.
            self.send(Message(MsgType.NACK_NOT_HOME, src=self.node,
                              dst=requester, addr=addr))
            self._undelegate(addr, reason="remote_getx")
            return
        # The local producer is writing: a fully local directory operation,
        # plus one invalidation round trip if consumers hold copies.  The
        # delegated entry is stored in the same (possibly lossy) vector
        # encoding as the home directory, so invalidations act on the
        # format's observed set; the preserved sharing vector stays exact.
        targets = sorted(self.dir_format.invalidation_targets(
            pentry.sharers, self.node, self.config.num_nodes))
        pentry.busy = BusyRecord(BusyKind.INVALIDATING)
        for target in targets:
            self.send(Message(MsgType.INV, src=self.node, dst=target,
                              addr=addr, payload={"collector": self.node}))
        pentry.state = DirState.EXCL
        pentry.owner = self.node
        pentry.sharers = pentry.sharers - {self.node}  # preserved vector
        if self.hierarchy.state_of(addr) is LineState.SHARED:
            grant = Message(MsgType.ACK_X, src=self.node, dst=self.node,
                            addr=addr,
                            payload={"hops": 2, "n_acks": len(targets)})
        else:
            rac_line = self.rac.probe(addr)
            value = rac_line.value if rac_line is not None else pentry.value
            grant = Message(MsgType.DATA_EXCL, src=self.node, dst=self.node,
                            addr=addr, value=value,
                            payload={"hops": 2, "n_acks": len(targets)})
        self.events.schedule(self.rac.latency, self.send, grant)

    # -- undelegation (producer side) ------------------------------------------

    def _on_undele_req(self, msg):
        """Home-initiated recall (undelegation reason 3 at the home)."""
        pentry = self.producer_table.lookup(msg.addr, touch=False)
        if pentry is None:
            # No entry can mean two things.  If we hold an outstanding write
            # miss for the line, the home's DELEGATE may still be in flight
            # to us (it pays the DRAM latency; the recall does not), so the
            # home must keep retrying ("busy").  Only without such a miss is
            # the line truly gone — our voluntary UNDELE is already on its
            # way to the home and will resolve the recall.
            reason = ("busy" if self._active_miss(msg.addr, MissKind.WRITE)
                      is not None else "gone")
            self.send(Message(MsgType.NACK, src=self.node, dst=msg.src,
                              addr=msg.addr,
                              payload={"for": "recall", "reason": reason}))
            return
        if pentry.busy is not None or pentry.pending_updates > 0:
            self.send(Message(MsgType.NACK, src=self.node, dst=msg.src,
                              addr=msg.addr,
                              payload={"for": "recall", "reason": "busy"}))
            return
        self._undelegate(msg.addr, reason="recall")

    def _undelegate(self, addr, reason):
        """Flush local state for a delegated line and return the directory
        to the original home (paper §2.3.3).

        Deferred while pushed updates are unacknowledged: the directory must
        not move to the home before every update has landed, or a later INV
        from the home could be overtaken by a stale update (a race the model
        checker found; see MsgType.UPDATE_ACK).
        """
        pentry = self.producer_table.lookup(addr, touch=False)
        if pentry is None:
            return
        if pentry.pending_updates > 0:
            pentry.deferred_undelegate = reason
            self.stats.inc("dele.undelegate_deferred")
            return
        self.producer_table.remove(addr)
        if pentry.busy is not None:
            raise self._protocol_error(
                "undelegating busy line 0x%x (%s)" % (addr, reason))
        self.stats.inc(S.UNDELEGATIONS + reason)
        if self.tracer is not None:
            self.tracer.delegation_end(self.node, addr, self.events.now,
                                       reason)
        self._cancel_intervention(addr)
        notice = self.hierarchy.evict(addr)
        rac_line = self.rac.invalidate(addr)
        if notice is not None and notice.state is LineState.MODIFIED:
            value = notice.value
        elif rac_line is not None:
            value = rac_line.value
        elif notice is not None:
            value = notice.value
        else:
            value = pentry.value
        if pentry.state is DirState.EXCL:
            # Consumers were invalidated before our write: nobody else holds
            # a copy once our own is flushed.
            snapshot = {"state": DirState.UNOWNED, "owner": None,
                        "sharers": set(), "value": value}
        else:
            sharers = pentry.sharers - {self.node}
            snapshot = {
                "state": DirState.SHARED if sharers else DirState.UNOWNED,
                "owner": None, "sharers": sharers, "value": value,
            }
        self.send(Message(MsgType.UNDELE, src=self.node,
                          dst=self.address_map.home_of(addr), addr=addr,
                          value=value, payload={"dir": snapshot}))

    # -- delayed intervention + speculative updates (§2.4) -----------------------

    def _schedule_intervention(self, addr):
        """Arm the last-write predictor: after a fixed delay, assume the
        write burst is over and push the data out."""
        epoch = self._intervention_epoch.get(addr, 0) + 1
        self._intervention_epoch[addr] = epoch
        if self.tracer is not None:
            self.tracer.intervention_armed(self.node, addr, self.events.now)
        self.events.schedule(self.config.protocol.intervention_delay,
                             self._fire_intervention, addr, epoch)

    def _cancel_intervention(self, addr):
        if addr in self._intervention_epoch:
            self._intervention_epoch[addr] += 1
            if self.tracer is not None:
                self.tracer.intervention_resolved(
                    self.node, addr, self.events.now, "cancelled")

    def _fire_intervention(self, addr, epoch):
        if self._intervention_epoch.get(addr) != epoch:
            return
        entry = self._acting_home_entry(addr)
        if (entry is None or entry.busy is not None
                or entry.state is not DirState.EXCL
                or entry.owner != self.node
                or not self.hierarchy.state_of(addr).writable):
            if self.tracer is not None:
                self.tracer.intervention_resolved(self.node, addr,
                                                  self.events.now, "abandoned")
            return
        self.stats.inc(S.INTERVENTIONS)
        if self.tracer is not None:
            self.tracer.intervention_resolved(self.node, addr,
                                              self.events.now, "fired")
        value = self.hierarchy.downgrade(addr)
        delegated = (self.producer_table is not None
                     and addr in self.producer_table)
        if delegated:
            self.rac.update_value(addr, value, dirty=True)
        # The hardware reads the consumer set out of its (possibly lossy)
        # vector encoding, so compressed formats widen the push — the extra
        # updates are the format's cost, and their recipients really do end
        # up holding RAC copies (hence they join the sharer set below).
        consumers = sorted(self.dir_format.observed_sharers(
            entry.sharers, self.config.num_nodes) - {self.node})
        # Selective-update pruning: consumers whose last two pushes went
        # unread stop receiving updates (they are still invalidated as
        # sharers; a fresh read re-enrols them).
        targets = [c for c in consumers
                   if entry.update_strikes.get(c, 0) < 2]
        pruned = len(consumers) - len(targets)
        if pruned:
            self.stats.inc("update.pruned", pruned)
        if self.tracer is not None:
            self.tracer.update_push(self.node, addr, self.events.now,
                                    targets=len(targets), pruned=pruned)
        entry.value = value
        entry.state = DirState.SHARED
        entry.owner = None
        entry.sharers = set(consumers) | {self.node}
        if delegated:
            # Undelegation must wait for these updates to drain (see
            # MsgType.UPDATE_ACK); home-self updates need no acks because
            # the home's later INVs share the update's FIFO channel.
            entry.pending_updates += len(targets)
        for consumer in targets:
            self.stats.inc(S.UPDATES_SENT)
            # Acks gate undelegation draining, so only *delegated* lines
            # request them; home-self updates (the common first-touch case)
            # stay single-message, matching the paper's traffic model.
            self.send(Message(MsgType.UPDATE, src=self.node, dst=consumer,
                              addr=addr, value=value,
                              payload={"hops": 2, "ack": delegated}))

    def _acting_home_entry(self, addr):
        """The directory entry this node controls for ``addr``, if any.

        Either a delegated producer-table entry, or — when the producer is
        the real home (the common first-touch outcome for boundary data) —
        the home-memory entry itself: speculative updates apply equally,
        no delegation needed (delegating a line to its own home is a no-op).
        """
        if self.producer_table is not None and addr in self.producer_table:
            return self.producer_table.lookup(addr, touch=False)
        if self.address_map.home_of(addr) == self.node:
            return self.home_memory.entry(addr)
        return None

    def _update_worthy_at_home(self, addr):
        """True when the home (=this node) should push updates for its own
        line after a local write: the detector marked it producer-consumer."""
        det = self.dircache.lookup(addr, create=False)
        return det is not None and det.marked_pc

    # -- consumer side of updates ---------------------------------------------

    def _on_update(self, msg):
        addr = msg.addr
        if msg.payload.get("ack"):
            # Receipt ack (regardless of whether the data is kept): the
            # producer counts these before letting a delegated line's
            # directory move back to the home.
            self.send(Message(MsgType.UPDATE_ACK, src=self.node,
                              dst=msg.src, addr=addr))
        if self.consumer_table is not None:
            self.consumer_table.insert(addr, msg.src)
        miss = self._active_miss(addr, MissKind.READ)
        if miss is not None:
            # The paper treats an update that meets an outstanding read as
            # the response (§2.4.3).  We deliberately do NOT retire the miss
            # here: doing so orphans the real reply, and the model checker
            # showed an orphaned DATA_SHARED can later satisfy a *newer*
            # read with stale data.  The update still lands in the RAC, and
            # the in-flight reply (carrying the same data) completes the
            # miss moments later — every request keeps exactly one response.
            self.stats.inc("update.rendezvous")
            if self.tracer is not None:
                self.tracer.update_recv(self.node, addr, self.events.now,
                                        msg.src, "rendezvous")
            if self.rac is not None:
                self.rac.insert_update(addr, msg.value)
            return
        if self.hierarchy.state_of(addr).readable:
            self.stats.inc("update.stale")
            if self.tracer is not None:
                self.tracer.update_recv(self.node, addr, self.events.now,
                                        msg.src, "stale")
            return
        if self.tracer is not None:
            self.tracer.update_recv(self.node, addr, self.events.now,
                                    msg.src, "accepted")
        if self.rac is not None:
            self.rac.insert_update(addr, msg.value)

    def _on_update_ack(self, msg):
        entry = self._acting_home_entry(msg.addr)
        if entry is None or entry.pending_updates <= 0:
            return
        entry.pending_updates -= 1
        self._run_deferred_undelegation(msg.addr, entry)

    def _run_deferred_undelegation(self, addr, entry):
        """Execute an undelegation that waited for update acks (and for any
        local transaction) to finish."""
        if (entry.deferred_undelegate is None or entry.pending_updates > 0
                or entry.busy is not None):
            return
        if self.producer_table is None or addr not in self.producer_table:
            return
        reason = entry.deferred_undelegate
        entry.deferred_undelegate = None
        self._undelegate(addr, reason)
