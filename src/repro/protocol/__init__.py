"""The paper's coherence mechanisms: detector, delegation, updates, hub."""

from .delegate_cache import ConsumerTable, ProducerTable
from .detector import DetectorEntry, ProducerConsumerDetector, consumer_bucket
from .hub import Hub
from .transactions import (
    BusyKind,
    BusyRecord,
    MissKind,
    OutstandingMiss,
    PathClass,
)

__all__ = [
    "ConsumerTable",
    "ProducerTable",
    "DetectorEntry",
    "ProducerConsumerDetector",
    "consumer_bucket",
    "Hub",
    "BusyKind",
    "BusyRecord",
    "MissKind",
    "OutstandingMiss",
    "PathClass",
]
