"""Transaction records used by the hub controller.

Two kinds of in-flight bookkeeping exist:

* :class:`OutstandingMiss` — the requester side.  Processors are in-order
  and blocking, so each node has at most one processor-initiated miss in
  flight, plus possibly one local producer-side write transaction (which
  is the same record, since the processor is blocked on it).
* :class:`BusyRecord` — the home/acting-home side, attached to a directory
  entry while a multi-message transaction (intervention, undelegation) is
  pending.  Requests that find a BusyRecord are NACKed.
"""

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class MissKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class PathClass(enum.Enum):
    """Critical-path classification of a completed miss (paper's taxonomy)."""

    LOCAL = "local"       # no network messages on the critical path
    TWO_HOP = "2hop"      # requester <-> (acting) home only
    THREE_HOP = "3hop"    # a third party (owner/sharer/forward) intervened


@dataclass
class OutstandingMiss:
    """One processor-initiated miss from issue to completion."""

    addr: int
    kind: MissKind
    callback: Callable  # invoked as callback(path_class) when done
    store_value: int = 0
    start_time: int = 0
    target: Optional[int] = None
    acks_needed: Optional[int] = None  # None until the grant arrives
    acks_got: int = 0
    granted: bool = False
    grant_state: Optional[object] = None  # LineState to fill with
    grant_value: int = 0
    path: PathClass = PathClass.TWO_HOP
    retries: int = 0
    done: bool = False
    pending_inv: bool = False  # an INV raced this read; drop line after use

    def complete_when_ready(self):
        """True when both the grant and every expected ack have arrived."""
        return (self.granted and self.acks_needed is not None
                and self.acks_got >= self.acks_needed)


class BusyKind(enum.Enum):
    INTERVENTION = "intervention"   # waiting for owner downgrade/transfer
    WB_RACE = "wb_race"             # owner's copy gone; waiting for writeback
    UNDELEGATE = "undelegate"       # waiting for the producer's UNDELE
    INVALIDATING = "invalidating"   # producer collecting INV acks locally


@dataclass
class BusyRecord:
    """Attached to a DirectoryEntry while a home-side transaction runs."""

    kind: BusyKind
    requester: Optional[int] = None
    req_msg: Optional[object] = None   # buffered request to replay
    acks_needed: int = 0
    acks_got: int = 0
    info: dict = field(default_factory=dict)
