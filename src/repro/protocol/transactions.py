"""Transaction records used by the hub controller.

Two kinds of in-flight bookkeeping exist:

* :class:`OutstandingMiss` — the requester side.  Processors are in-order
  and blocking, so each node has at most one processor-initiated miss in
  flight, plus possibly one local producer-side write transaction (which
  is the same record, since the processor is blocked on it).
* :class:`BusyRecord` — the home/acting-home side, attached to a directory
  entry while a multi-message transaction (intervention, undelegation) is
  pending.  Requests that find a BusyRecord are NACKed.
"""

import enum


class MissKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class PathClass(enum.Enum):
    """Critical-path classification of a completed miss (paper's taxonomy)."""

    LOCAL = "local"       # no network messages on the critical path
    TWO_HOP = "2hop"      # requester <-> (acting) home only
    THREE_HOP = "3hop"    # a third party (owner/sharer/forward) intervened


class OutstandingMiss:
    """One processor-initiated miss from issue to completion.

    Slotted: one is allocated per processor miss and its fields are read
    on every reply/ack/NACK on the miss path.
    """

    __slots__ = ("addr", "kind", "callback", "store_value", "start_time",
                 "target", "acks_needed", "acks_got", "granted",
                 "grant_state", "grant_value", "path", "retries", "done",
                 "pending_inv")

    def __init__(self, addr, kind, callback, store_value=0, start_time=0,
                 target=None, acks_needed=None, acks_got=0, granted=False,
                 grant_state=None, grant_value=0, path=PathClass.TWO_HOP,
                 retries=0, done=False, pending_inv=False):
        self.addr = addr
        self.kind = kind
        self.callback = callback  # invoked as callback(path_class) when done
        self.store_value = store_value
        self.start_time = start_time
        self.target = target
        self.acks_needed = acks_needed  # None until the grant arrives
        self.acks_got = acks_got
        self.granted = granted
        self.grant_state = grant_state  # LineState to fill with
        self.grant_value = grant_value
        self.path = path
        self.retries = retries
        self.done = done
        self.pending_inv = pending_inv  # an INV raced this read; drop line after use

    def complete_when_ready(self):
        """True when both the grant and every expected ack have arrived."""
        return (self.granted and self.acks_needed is not None
                and self.acks_got >= self.acks_needed)


class BusyKind(enum.Enum):
    INTERVENTION = "intervention"   # waiting for owner downgrade/transfer
    WB_RACE = "wb_race"             # owner's copy gone; waiting for writeback
    UNDELEGATE = "undelegate"       # waiting for the producer's UNDELE
    INVALIDATING = "invalidating"   # producer collecting INV acks locally


class BusyRecord:
    """Attached to a DirectoryEntry while a home-side transaction runs."""

    __slots__ = ("kind", "requester", "req_msg", "acks_needed", "acks_got",
                 "info")

    def __init__(self, kind, requester=None, req_msg=None, acks_needed=0,
                 acks_got=0, info=None):
        self.kind = kind
        self.requester = requester
        self.req_msg = req_msg   # buffered request to replay
        self.acks_needed = acks_needed
        self.acks_got = acks_got
        self.info = {} if info is None else info
