"""The producer-consumer sharing-pattern detector (paper §2.2).

Each directory-cache entry is extended with three small fields:

* ``last_writer`` (4 bits) — last node to write the line;
* ``reader_count`` (2-bit saturating) — reads from unique nodes since the
  last write;
* ``write_repeat`` (2-bit saturating) — incremented each time two
  consecutive writes come from the *same* node with at least one
  intervening read from another node.

A line is marked producer-consumer when ``write_repeat`` saturates.  This
matches the paper's regular expression ``...(Wi)(R∀j≠i)+(Wi)(R∀k≠i)+...``:
the counter only advances through write→reads→write-by-same-node cycles,
so migratory sharing (different writers) and false sharing (interleaved
writers) reset it and are never optimised — deliberately conservative.

The detector observes only traffic that reaches the home directory (the
paper's constraint: an external predictor sees just the misses), and its
state lives only while the line's entry sits in the directory cache.
"""

from dataclasses import dataclass

from ..common.stats import PC_DETECTED


@dataclass
class DetectorEntry:
    """Per-line detector bits (8 bits of real hardware state + the mark)."""

    addr: int
    last_writer: int = -1  # -1 encodes "no write observed yet"
    reader_count: int = 0
    write_repeat: int = 0
    marked_pc: bool = False


def consumer_bucket(count):
    """Histogram bucket label used by Table 3: 1, 2, 3, 4, or 4+ (>=5)."""
    if count <= 4:
        return str(count)
    return "4+"


class ProducerConsumerDetector:
    """Updates detector entries on home-directory traffic.

    One instance per node, shared across all lines homed there; per-line
    state is stored in the directory cache's :class:`DetectorEntry` records.
    """

    def __init__(self, protocol_config, stats):
        self._reader_max = (1 << protocol_config.reader_count_bits) - 1
        self._repeat_max = protocol_config.write_repeat_threshold
        self._stats = stats

    def new_entry(self, addr):
        """The per-line record this detector stores in the directory cache
        (subclasses may extend the record type)."""
        return DetectorEntry(addr=addr)

    def observe_read(self, entry, reader, already_sharer):
        """Record a GETS processed at the home directory.

        ``already_sharer`` tells the detector whether the directory already
        listed this node — the hardware's free uniqueness filter.
        """
        if entry is None:
            return
        if reader == entry.last_writer or already_sharer:
            return
        entry.reader_count = min(entry.reader_count + 1, self._reader_max)

    def observe_write(self, entry, writer, distinct_readers):
        """Record a GETX processed at the home directory.

        ``distinct_readers`` is the number of distinct non-writer nodes that
        read since the previous write (taken from the sharing vector); it
        feeds the Table 3 consumer-count histogram whenever a repeat write
        with intervening readers is seen.

        Returns True if this write *newly* marked the line producer-consumer
        (the moment delegation should be initiated, Figure 4a).
        """
        if entry is None:
            return False
        newly_marked = False
        if entry.last_writer == writer and entry.reader_count >= 1:
            entry.write_repeat = min(entry.write_repeat + 1, self._repeat_max)
            if distinct_readers >= 1:
                self._stats.inc(
                    "detector.consumers.%s" % consumer_bucket(distinct_readers)
                )
            if entry.write_repeat >= self._repeat_max and not entry.marked_pc:
                entry.marked_pc = True
                newly_marked = True
                self._stats.inc(PC_DETECTED)
        elif entry.last_writer != writer:
            # A different writer breaks the pattern (multi-writer / false
            # sharing / migratory data); restart detection from scratch.
            entry.write_repeat = 0
            entry.marked_pc = False
        entry.last_writer = writer
        entry.reader_count = 0
        return newly_marked
