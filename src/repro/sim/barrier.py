"""Centralised barrier synchronisation for the simulated CPUs.

The paper's applications are barrier-synchronised (OpenMP / SPLASH-2
phases).  We model the barrier as a hardware/runtime primitive with a
fixed release latency rather than spinning on shared flags; the coherence
phenomena the paper studies (including the em3d "reload flurry" of
post-barrier reads NACKed at a busy home) arise from the data accesses
around the barrier, which the workloads issue explicitly.
"""

from ..common.errors import SimulationError


class BarrierManager:
    """Releases all participants once the last one arrives."""

    def __init__(self, events, participants, release_latency=100, stats=None):
        if participants < 1:
            raise SimulationError("barrier needs at least one participant")
        self.events = events
        self.participants = participants
        self.release_latency = release_latency
        self.stats = stats
        self._waiting = []  # (node, resume callback)
        self._current_bid = None
        self.episodes = 0

    def arrive(self, node, bid, resume):
        """CPU ``node`` reached barrier ``bid``; ``resume()`` fires on release."""
        if self._current_bid is None:
            self._current_bid = bid
        elif bid != self._current_bid:
            raise SimulationError(
                "node %d arrived at barrier %r while barrier %r is forming"
                % (node, bid, self._current_bid))
        if any(node == waiting_node for waiting_node, _ in self._waiting):
            raise SimulationError("node %d arrived twice at barrier %r"
                                  % (node, bid))
        self._waiting.append((node, resume))
        if self.stats is not None:
            self.stats.inc("barrier.arrivals")
        if len(self._waiting) == self.participants:
            released = self._waiting
            self._waiting = []
            self._current_bid = None
            self.episodes += 1
            for _node, callback in released:
                self.events.schedule(self.release_latency, callback)

    @property
    def stalled_nodes(self):
        """Nodes currently parked at the forming barrier (diagnostics)."""
        return [node for node, _ in self._waiting]
