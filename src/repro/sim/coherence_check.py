"""Online coherence / sequential-consistency checking.

This is the simulator-side half of the paper's verification story (§2.5):
invariants are checked as the simulation runs, bridging the gap between
the abstract model-checked protocol and the simulated implementation.

Two checks run online:

1. **Read-value legality** (per-location sequential consistency).  Every
   write installs a globally unique version number.  A completed read must
   return either the value of the last write that completed before the
   read began, or the value of a write that completed while the read was
   in flight (loads are allowed to bind anywhere inside their window).
2. **Single-writer** (the Murphi model's "single writer exists"): whenever
   a write miss completes, no other node may hold a writable (E/M) copy of
   that line.

Violations raise :class:`repro.common.errors.CoherenceViolation`
immediately, with enough context to debug the offending transaction.
"""

from collections import defaultdict, deque

from ..common.errors import CoherenceViolation

#: How many historical writes to retain per line.  Miss latencies are a few
#: thousand cycles at most, while writes to one line are spaced by whole
#: coherence transactions, so a short history always covers a read window.
_HISTORY = 128


class CoherenceChecker:
    """Records committed reads/writes and enforces the invariants above."""

    def __init__(self, system):
        self.system = system
        self._writes = defaultdict(deque)  # line -> deque[(t_complete, value)]
        self._version = 0
        self.reads_checked = 0
        self.writes_checked = 0
        # (node, l2._sets) pairs plus the shared set-index geometry,
        # cached on first use: hubs are attached to the system after the
        # checker is built, and the single-writer scan walks them on
        # every committed write.
        self._scan_targets = None
        self._scan_geometry = None

    def next_version(self):
        """A globally unique value for the next store."""
        self._version += 1
        return self._version

    # -- recording hooks (called by the processors) -------------------------

    def record_write(self, node, line_addr, value, t_start, t_complete):
        history = self._writes[line_addr]
        history.append((t_complete, value))
        if len(history) > _HISTORY:
            history.popleft()
        self.writes_checked += 1
        self._check_single_writer(node, line_addr)

    def record_read(self, node, line_addr, value, t_start, t_complete):
        self.reads_checked += 1
        history = self._writes.get(line_addr)
        if not history:
            if value != 0:
                raise CoherenceViolation(
                    "node %d read %r from never-written line 0x%x"
                    % (node, value, line_addr))
            return
        # Fast pass: legal iff the value matches the last write completed
        # before the read began, or any write overlapping the read window.
        # The legal *set* is only materialised on violation (error message).
        last_before = 0  # lines start zero-initialised
        overlapped = False
        for t_complete_w, written in history:
            if t_complete_w <= t_start:
                last_before = written
            elif t_complete_w <= t_complete and written == value:
                overlapped = True
        if overlapped or value == last_before:
            return
        legal = set()
        for t_complete_w, written in history:
            if t_start < t_complete_w <= t_complete:
                legal.add(written)
        legal.add(last_before)
        raise CoherenceViolation(
            "node %d read stale value %r from line 0x%x at [%d, %d]; "
            "legal values were %s (history tail: %s)"
            % (node, value, line_addr, t_start, t_complete,
               sorted(legal), list(history)[-4:]))

    # -- read-only views (the fuzz oracles inspect final state) --------------

    def written_lines(self):
        """Line addresses that have at least one committed write."""
        return [line for line, history in self._writes.items() if history]

    def last_write_value(self, line_addr):
        """Value of the last committed write to ``line_addr`` (None if
        the line was never written)."""
        history = self._writes.get(line_addr)
        return history[-1][1] if history else None

    def on_miss_complete(self, node, miss):
        """Hook invoked by the hub at every miss completion (no-op: the
        per-op hooks above carry the actual checks; kept as an extension
        point for custom instrumentation)."""

    # -- invariants -------------------------------------------------------------

    def _check_single_writer(self, writer, line_addr):
        # The scan probes every node's L2 on every committed write, so it
        # reaches into SetAssociativeCache internals (the per-set dict
        # list and its indexing geometry) instead of paying a probe()
        # frame per node.  ``_sets`` identity is stable: lazy set creation
        # replaces elements, never the list.  All nodes share one L2
        # geometry (one SystemConfig per run), so the set index is
        # computed once per write, not once per node.
        targets = self._scan_targets
        if targets is None:
            l2s = [(hub.node, hub.hierarchy.l2) for hub in self.system.hubs]
            geometry = {(l2._line_shift, l2._set_mask, l2._num_sets)
                        for _node, l2 in l2s}
            if len(geometry) != 1:  # defensive; cannot happen today
                raise CoherenceViolation(
                    "nodes disagree on L2 geometry: %r" % geometry)
            self._scan_geometry = geometry.pop()
            targets = self._scan_targets = [
                (node, l2._sets) for node, l2 in l2s]
        shift, mask, num_sets = self._scan_geometry
        index = line_addr >> shift
        index = index & mask if mask is not None else index % num_sets
        for node, sets in targets:
            if node == writer:
                continue
            cache_set = sets[index]
            line = cache_set.get(line_addr) if cache_set is not None else None
            if line is not None and line.state.writable:
                raise CoherenceViolation(
                    "single-writer violated on line 0x%x: node %d completed "
                    "a write while node %d holds %s"
                    % (line_addr, writer, node, line.state.value))
