"""The whole simulated machine and the run loop.

``System`` wires together the event queue, fabric, per-node hubs and
processors, the barrier manager, the address map and the online coherence
checker, then drains the event queue until every CPU retires its trace.

Typical use::

    from repro.common import small
    from repro.sim import System

    system = System(small())
    result = system.run(per_cpu_ops, placements={region_start: home_node})
    print(result.cycles, result.stats["miss.remote_3hop"])
"""

from dataclasses import dataclass, field
from typing import Dict, List

from ..common.errors import SimulationError
from ..common.events import EventQueue
from ..common.stats import Stats
from ..directory.placement import AddressMap
from ..network.chaos import ChaosPolicy
from ..network.fabric import Fabric
from ..network.message import reset_msg_ids
from ..protocol.arena import resolve_protocol
from .barrier import BarrierManager
from .coherence_check import CoherenceChecker
from .processor import Processor


@dataclass
class RunResult:
    """Everything a finished simulation reports."""

    cycles: int
    stats: Dict[str, int]
    cpu_finish_times: List[int]
    ops_executed: int
    events_processed: int
    extras: dict = field(default_factory=dict)

    def stat(self, name, default=0):
        return self.stats.get(name, default)


class System:
    """A ``num_nodes``-node cc-NUMA machine ready to execute one workload."""

    def __init__(self, config, check_coherence=True, tracer=None, chaos=None):
        reset_msg_ids()
        # The protocol registry maps config.protocol_name to a hub class
        # and may normalise the config onto the protocol's feature set
        # (identity for the default "adaptive", so existing configs are
        # untouched byte-for-byte).
        self.protocol = resolve_protocol(config.protocol_name)
        config = self.protocol.normalize_config(config)
        self.config = config
        self.events = EventQueue()
        self.stats = Stats()
        self.tracer = tracer  # None = tracing disabled (the no-op fast path)
        # ``chaos`` may be a ChaosConfig or an already-built ChaosPolicy;
        # None (or an all-zero config) keeps the unperturbed fast path.
        self.chaos = ChaosPolicy.resolve(chaos, stats=self.stats)
        self.address_map = AddressMap(config.num_nodes)
        self.fabric = Fabric(config, self.events, self.stats, tracer=tracer,
                             chaos=self.chaos)
        self.checker = CoherenceChecker(self) if check_coherence else None
        self.hubs = [self.protocol.make_hub(node, self)
                     for node in range(config.num_nodes)]
        self.processors = []
        self.barrier = None
        self._unfinished = 0

    def on_cpu_finished(self, node):
        self._unfinished -= 1

    def run(self, per_cpu_ops, placements=None, max_cycles=None,
            max_events=None):
        """Execute one op stream per CPU and return a :class:`RunResult`.

        ``per_cpu_ops`` is an iterable of at most ``num_nodes`` iterables of
        trace ops; CPU *i* runs stream *i*.  Streams are materialised once
        up front, so one-shot iterables (generators) are fine.
        ``placements`` is an iterable of ``(start, length, home)`` triples
        modelling the paper's first-touch placement; pass the triples
        produced by the workload's :meth:`placements` method.
        """
        if self.processors:
            raise SimulationError("a System instance runs exactly one workload")
        streams = [list(ops) for ops in per_cpu_ops]
        if not streams:
            raise SimulationError(
                "per_cpu_ops is empty: need at least one op stream")
        if len(streams) > self.config.num_nodes:
            raise SimulationError(
                "%d op streams for %d nodes"
                % (len(streams), self.config.num_nodes))
        # An empty placements list deliberately means the same as None
        # ("no explicit placement"): the falsy check covers both.
        if placements:
            for start, length, home in placements:
                self.address_map.place_range(start, length, home)
        self.barrier = BarrierManager(self.events, len(streams),
                                      stats=self.stats)
        self.processors = [
            Processor(node, self, self.hubs[node], ops)
            for node, ops in enumerate(streams)
        ]
        self._unfinished = len(self.processors)
        for processor in self.processors:
            processor.start()
        self.events.run(max_events=max_events, max_cycles=max_cycles)
        if self._unfinished:
            raise SimulationError(
                "simulation stalled at cycle %d with %d unfinished CPUs: %s"
                % (self.events.now, self._unfinished,
                   {p.node: p.describe() for p in self.processors
                    if not p.finished}))
        result = RunResult(
            cycles=max(p.finish_time for p in self.processors),
            stats=self.stats.as_dict(),
            cpu_finish_times=[p.finish_time for p in self.processors],
            ops_executed=sum(p.ops_executed for p in self.processors),
            events_processed=self.events.processed,
        )
        if self.tracer is not None:
            self.tracer.finalize(self.events.now)
            result.extras["obs"] = self.tracer.metrics.summary()
        return result
