"""Trace-driven in-order processor model.

Each simulated CPU executes its operation stream sequentially: compute
ops advance local time, loads/stores probe the private cache hierarchy
and block on misses until the hub completes the coherence transaction
(one outstanding miss per CPU), and barriers park the CPU until everyone
arrives.

This is a deliberate simplification of the paper's 4-issue out-of-order
CPUs (see DESIGN.md): the phenomena under study are hub/directory-level,
and a blocking CPU preserves the *relative* cost of local vs. 2-hop vs.
3-hop misses that drives every result being reproduced.
"""

from heapq import heappush

from ..common.errors import SimulationError
from . import trace


class Processor:
    """One trace-driven CPU bound to a node's hub and cache hierarchy."""

    def __init__(self, node, system, hub, ops):
        self.node = node
        self.system = system
        self.hub = hub
        self.events = system.events
        self.stats = system.stats
        self.checker = system.checker
        self.tracer = getattr(system, "tracer", None)
        self._ops = iter(ops)
        self.finished = False
        self.finish_time = None
        self.ops_executed = 0
        self._blocked_since = None
        # Hot-loop hoists: every op pays for these lookups otherwise.
        self._next_op = self._ops.__next__
        self._counters = system.stats._counters
        line_mask = ~(system.config.line_size - 1)
        self._line_mask = line_mask  # == config.line_of per op
        self._l1_latency = system.config.l1.latency
        self._hier_read = hub.hierarchy.read
        self._hier_write = hub.hierarchy.write
        checker = system.checker
        self._record_read = checker.record_read if checker else None
        self._record_write = checker.record_write if checker else None

    def start(self):
        self.events.schedule(0, self._step)

    # -- main loop ----------------------------------------------------------

    def _step(self):
        try:
            op = self._next_op()
        except StopIteration:
            self.finished = True
            self.finish_time = self.events.now
            self.system.on_cpu_finished(self.node)
            return
        self.ops_executed += 1
        cls = op.__class__
        if cls is trace.Compute:
            cycles = op.cycles
            events = self.events
            # Inlined push_at: delays are >= 1 by construction.
            heappush(events._heap,
                     (events._now + (cycles if cycles > 1 else 1),
                      events._seq, self._step, ()))
            events._seq += 1
        elif cls is trace.Read:
            self._do_read(op.addr & self._line_mask)
        elif cls is trace.Write:
            self._do_write(op.addr & self._line_mask)
        elif cls is trace.Barrier:
            self.system.barrier.arrive(self.node, op.bid, self._step)
        else:
            raise SimulationError("node %d: unknown op %r" % (self.node, op))

    # -- loads ----------------------------------------------------------------

    def _do_read(self, addr):
        result = self._hier_read(addr)
        if result.hit:
            latency = result.latency
            self._counters["hit.l1" if latency == self._l1_latency
                           else "hit.l2"] += 1
            events = self.events
            now = events._now
            if self._record_read is not None:
                self._record_read(self.node, addr, result.value,
                                  now, now + latency)
            heappush(events._heap,
                     (now + latency, events._seq, self._step, ()))
            events._seq += 1
            return
        start = self.events.now
        self._blocked_since = start
        self._counters["miss.read"] += 1
        self.hub.request_read(addr, lambda path: self._finish_read(addr, start))

    def _finish_read(self, addr, start):
        result = self.hub.hierarchy.read(addr)
        if not result.hit:
            # The freshly filled line was stolen before the CPU could replay
            # its load (possible only under extreme contention): miss again.
            self.stats.inc("miss.read_replay")
            self.hub.request_read(addr,
                                  lambda path: self._finish_read(addr, start))
            return
        self._blocked_since = None
        if self.tracer is not None:
            self.tracer.cpu_stall(self.node, addr, "read", start,
                                  self.events.now)
        if self.checker is not None:
            self.checker.record_read(self.node, addr, result.value,
                                     start, self.events.now)
        self.events.schedule(result.latency, self._step)

    # -- stores -----------------------------------------------------------------

    def _do_write(self, addr):
        value = (self.checker.next_version() if self.checker is not None
                 else self.events.now + self.node)
        result = self._hier_write(addr, value)
        if result.hit:
            latency = result.latency
            events = self.events
            now = events._now
            if self._record_write is not None:
                self._record_write(self.node, addr, value,
                                   now, now + latency)
            heappush(events._heap,
                     (now + latency, events._seq, self._step, ()))
            events._seq += 1
            return
        start = self.events.now
        self._blocked_since = start
        self._counters["miss.write"] += 1
        self.hub.request_write(
            addr, value, lambda path: self._finish_write(addr, value, start))

    def _finish_write(self, addr, value, start):
        result = self.hub.hierarchy.write(addr, value)
        if not result.hit:
            self.stats.inc("miss.write_replay")
            self.hub.request_write(
                addr, value,
                lambda path: self._finish_write(addr, value, start))
            return
        self._blocked_since = None
        if self.tracer is not None:
            self.tracer.cpu_stall(self.node, addr, "write", start,
                                  self.events.now)
        if self.checker is not None:
            self.checker.record_write(self.node, addr, value,
                                      start, self.events.now)
        self.events.schedule(result.latency, self._step)

    # -- diagnostics -------------------------------------------------------------

    def describe(self):
        if self.finished:
            return "finished@%d" % self.finish_time
        if self._blocked_since is not None:
            return "blocked since %d (miss %r)" % (
                self._blocked_since,
                self.hub.miss.addr if self.hub.miss else None)
        return "running (%d ops done)" % self.ops_executed
