"""Execution-driven simulator: processors, barriers, system, checker."""

from .barrier import BarrierManager
from .coherence_check import CoherenceChecker
from .processor import Processor
from .system import RunResult, System
from .trace import Barrier, Compute, Read, Write, count_ops

__all__ = [
    "BarrierManager",
    "CoherenceChecker",
    "Processor",
    "RunResult",
    "System",
    "Barrier",
    "Compute",
    "Read",
    "Write",
    "count_ops",
]
