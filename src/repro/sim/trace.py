"""Memory-operation traces executed by the simulated processors.

A workload is one operation stream per CPU.  Four operations exist:

* :class:`Compute` — local work, advances time without memory traffic;
* :class:`Read` / :class:`Write` — a load/store to a byte address (the
  coherence layer works on the containing 128-byte line);
* :class:`Barrier` — global synchronisation among all participating CPUs.

Streams may be any iterable (lists for small traces, generators for large
ones — the simulator pulls operations lazily, so generated workloads never
materialise in memory).
"""

# The four op classes are hand-rolled __slots__ types rather than frozen
# dataclasses: workload generators build one object per executed op, and
# the frozen-dataclass __init__ (object.__setattr__ per field) was
# measurable in whole-run profiles.  They keep dataclass-style value
# equality, hashing and repr; treat instances as immutable.


class Compute:
    """Spin the CPU for ``cycles`` cycles of local work."""

    __slots__ = ("cycles",)

    def __init__(self, cycles):
        self.cycles = cycles

    def __eq__(self, other):
        if other.__class__ is not Compute:
            return NotImplemented
        return other.cycles == self.cycles

    def __hash__(self):
        return hash((Compute, self.cycles))

    def __repr__(self):
        return "Compute(cycles=%r)" % (self.cycles,)


class Read:
    """Load from byte address ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr

    def __eq__(self, other):
        if other.__class__ is not Read:
            return NotImplemented
        return other.addr == self.addr

    def __hash__(self):
        return hash((Read, self.addr))

    def __repr__(self):
        return "Read(addr=%r)" % (self.addr,)


class Write:
    """Store to byte address ``addr`` (the value is a version number the
    simulator assigns at execution time for coherence checking)."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr

    def __eq__(self, other):
        if other.__class__ is not Write:
            return NotImplemented
        return other.addr == self.addr

    def __hash__(self):
        return hash((Write, self.addr))

    def __repr__(self):
        return "Write(addr=%r)" % (self.addr,)


class Barrier:
    """Synchronise with every other participating CPU.  ``bid`` is a
    sanity label: all CPUs must arrive at barriers in the same order."""

    __slots__ = ("bid",)

    def __init__(self, bid):
        self.bid = bid

    def __eq__(self, other):
        if other.__class__ is not Barrier:
            return NotImplemented
        return other.bid == self.bid

    def __hash__(self):
        return hash((Barrier, self.bid))

    def __repr__(self):
        return "Barrier(bid=%r)" % (self.bid,)


def count_ops(stream):
    """Length of a materialised op stream (for tests/diagnostics)."""
    return sum(1 for _ in stream)
