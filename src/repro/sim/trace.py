"""Memory-operation traces executed by the simulated processors.

A workload is one operation stream per CPU.  Four operations exist:

* :class:`Compute` — local work, advances time without memory traffic;
* :class:`Read` / :class:`Write` — a load/store to a byte address (the
  coherence layer works on the containing 128-byte line);
* :class:`Barrier` — global synchronisation among all participating CPUs.

Streams may be any iterable (lists for small traces, generators for large
ones — the simulator pulls operations lazily, so generated workloads never
materialise in memory).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Compute:
    """Spin the CPU for ``cycles`` cycles of local work."""

    cycles: int


@dataclass(frozen=True)
class Read:
    """Load from byte address ``addr``."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Store to byte address ``addr`` (the value is a version number the
    simulator assigns at execution time for coherence checking)."""

    addr: int


@dataclass(frozen=True)
class Barrier:
    """Synchronise with every other participating CPU.  ``bid`` is a
    sanity label: all CPUs must arrive at barriers in the same order."""

    bid: int


def count_ops(stream):
    """Length of a materialised op stream (for tests/diagnostics)."""
    return sum(1 for _ in stream)
