"""Workload trace serialisation.

Traces are the interface between workload generation and simulation, so
being able to persist them makes runs shareable and lets external tools
(or real-application instrumentation) feed the simulator.  The format is
a deliberately simple line-oriented text file:

::

    # repro-trace v1 cpus=4
    # placement 0x100000 128 3        (start length home)
    c 0 500          (cpu 0: compute 500 cycles)
    r 1 0x100000     (cpu 1: read)
    w 2 0x200000     (cpu 2: write)
    b 3 7            (cpu 3: barrier id 7)

Lines are (op, cpu, operand) triples; ordering *within one CPU* is the
program order, and interleaving between CPUs carries no meaning.
"""

import io

from ..common.errors import SimulationError
from .trace import Barrier, Compute, Read, Write

_HEADER = "# repro-trace v1 cpus=%d"


def dump_trace(per_cpu_ops, placements=None, fileobj=None):
    """Serialise op streams (and placements) to a text trace.

    Returns the string if ``fileobj`` is None, else writes to it.
    """
    out = fileobj if fileobj is not None else io.StringIO()
    streams = [list(ops) for ops in per_cpu_ops]
    out.write(_HEADER % len(streams) + "\n")
    for start, length, home in (placements or []):
        out.write("# placement 0x%x %d %d\n" % (start, length, home))
    for cpu, ops in enumerate(streams):
        for op in ops:
            if isinstance(op, Compute):
                out.write("c %d %d\n" % (cpu, op.cycles))
            elif isinstance(op, Read):
                out.write("r %d 0x%x\n" % (cpu, op.addr))
            elif isinstance(op, Write):
                out.write("w %d 0x%x\n" % (cpu, op.addr))
            elif isinstance(op, Barrier):
                out.write("b %d %d\n" % (cpu, op.bid))
            else:
                raise SimulationError("cannot serialise op %r" % (op,))
    if fileobj is None:
        return out.getvalue()
    return None


def load_trace(source):
    """Parse a trace produced by :func:`dump_trace`.

    ``source`` is a string or a file object.  Returns
    ``(per_cpu_ops, placements)``.
    """
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = [line.rstrip("\n") for line in source]
    if not lines or not lines[0].startswith("# repro-trace v1"):
        raise SimulationError("not a repro-trace v1 file")
    try:
        num_cpus = int(lines[0].split("cpus=")[1])
    except (IndexError, ValueError):
        raise SimulationError("malformed trace header: %r" % lines[0])
    ops = [[] for _ in range(num_cpus)]
    placements = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        if line.startswith("# placement "):
            _hash, _kw, start, length, home = line.split()
            placements.append((int(start, 16), int(length), int(home)))
            continue
        if line.startswith("#"):
            continue
        try:
            kind, cpu_text, operand = line.split()
            cpu = int(cpu_text)
            if kind == "c":
                ops[cpu].append(Compute(int(operand)))
            elif kind == "r":
                ops[cpu].append(Read(int(operand, 16)))
            elif kind == "w":
                ops[cpu].append(Write(int(operand, 16)))
            elif kind == "b":
                ops[cpu].append(Barrier(int(operand)))
            else:
                raise ValueError(kind)
        except (ValueError, IndexError):
            raise SimulationError("bad trace line %d: %r" % (lineno, line))
    return ops, placements


def save_trace(path, per_cpu_ops, placements=None):
    """Write a trace file to ``path``."""
    with open(path, "w") as fileobj:
        dump_trace(per_cpu_ops, placements, fileobj)


def read_trace(path):
    """Load a trace file from ``path``."""
    with open(path) as fileobj:
        return load_trace(fileobj)
