"""Execute one fuzz scenario and classify the outcome.

:func:`run_case` builds the scenario's workload mix, runs it through a
fresh :class:`~repro.sim.System` with online coherence checking, an obs
tracer and the scenario's chaos policy, then applies the post-run oracles
(:mod:`repro.fuzz.oracles`).  Everything that can go wrong maps to one
oracle name:

=============  ==========================================================
``coherence``  online CoherenceViolation (stale read, single-writer)
``termination``  stalled simulation / cycle-or-event cap hit
``liveness``   a miss exceeded the retry tripwire (livelock)
``protocol``   any other ProtocolError (handler invariant broke)
``oracle:*``   a post-run quiescence oracle (see oracles module)
=============  ==========================================================

The returned :class:`CaseResult` is JSON-safe and carries a sha256 digest
of its canonical encoding — two runs reproduce iff their digests match,
which is exactly what ``repro fuzz --replay`` asserts.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..common.errors import (
    CoherenceViolation,
    ProtocolError,
    SimulationError,
)
from ..obs import TraceConfig, Tracer
from ..sim.system import System
from ..sim.trace import Barrier
from ..workloads.base import WorkloadBuild
from ..workloads.migratory import MigratoryWorkload
from ..workloads.synthetic import synthetic
from .oracles import check_quiescence

#: Barrier-id offset between merged sub-workloads, so the combined trace
#: never reuses an id (BarrierManager checks arrival order per id).
_BARRIER_STRIDE = 100_000


@dataclass
class CaseResult:
    """Outcome of one scenario run (JSON-safe)."""

    seed: int
    ok: bool
    oracle: Optional[str] = None   # which oracle fired (None when ok)
    message: str = ""              # human-readable failure detail
    cycles: int = 0
    events: int = 0
    stats: dict = field(default_factory=dict)

    def to_dict(self):
        return asdict(self)

    @property
    def digest(self):
        """sha256 of the canonical encoding: the replay-equality token."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_workload(scenario):
    """Materialise the scenario's workload mix into one combined build."""
    builds = []
    for kind, kwargs in scenario.workloads:
        if kind == "pc":
            builds.append(synthetic(num_cpus=scenario.num_cpus,
                                    seed=scenario.seed,
                                    scale=scenario.scale, **kwargs).build())
        elif kind == "migratory":
            builds.append(MigratoryWorkload(num_cpus=scenario.num_cpus,
                                            seed=scenario.seed,
                                            scale=scenario.scale,
                                            **kwargs).build())
        else:
            raise ValueError("unknown fuzz workload kind %r" % kind)
    if len(builds) == 1:
        return builds[0]
    per_cpu_ops = [[] for _ in range(scenario.num_cpus)]
    placements, shared_lines = [], {}
    for index, build in enumerate(builds):
        offset = index * _BARRIER_STRIDE
        for cpu, ops in enumerate(build.per_cpu_ops):
            for op in ops:
                if offset and isinstance(op, Barrier):
                    op = Barrier(op.bid + offset)
                per_cpu_ops[cpu].append(op)
        placements.extend(build.placements)
        shared_lines.update(build.shared_lines)
    return WorkloadBuild(name="+".join(b.name for b in builds),
                         per_cpu_ops=per_cpu_ops, placements=placements,
                         shared_lines=shared_lines)


def run_seed_payload(job):
    """Module-level sweep-pool runner: seed+scale -> CaseResult dict.

    This is the worker-side entry point both the fuzz engine's pooled
    corpus runs and the repro.serve fuzz jobs submit (it pickles by
    reference).  The scenario is re-derived from the seed —
    :meth:`~repro.fuzz.scenarios.FuzzScenario.from_seed` is
    deterministic, so this reproduces exactly what the parent rolled.
    Its identity is hashed into the sweep :func:`~repro.harness.sweep.job_key`,
    which is what lets fuzz results share the result cache with
    simulation payloads without ever aliasing them.
    """
    from .scenarios import FuzzScenario

    scenario = FuzzScenario.from_seed(job.seed, scale=job.scale)
    return run_case(scenario).to_dict()


def run_case(scenario):
    """Run one scenario start-to-finish and return a :class:`CaseResult`."""
    build = build_workload(scenario)
    tracer = Tracer(TraceConfig(capture_messages=False))
    system = System(scenario.config, check_coherence=True, tracer=tracer,
                    chaos=scenario.chaos)

    def fail(oracle, exc):
        return CaseResult(seed=scenario.seed, ok=False, oracle=oracle,
                          message=str(exc), cycles=system.events.now,
                          events=system.events.processed,
                          stats=system.stats.as_dict())

    try:
        result = system.run(build.per_cpu_ops, placements=build.placements,
                            max_cycles=scenario.max_cycles,
                            max_events=scenario.max_events)
    except CoherenceViolation as exc:
        return fail("coherence", exc)
    except SimulationError as exc:
        return fail("termination", exc)
    except ProtocolError as exc:
        kind = "liveness" if "livelock" in str(exc) else "protocol"
        return fail(kind, exc)

    violation = check_quiescence(system, tracer, build)
    if violation is not None:
        oracle, message = violation
        return CaseResult(seed=scenario.seed, ok=False,
                          oracle="oracle:" + oracle, message=message,
                          cycles=result.cycles,
                          events=result.events_processed,
                          stats=dict(result.stats))
    return CaseResult(seed=scenario.seed, ok=True, cycles=result.cycles,
                      events=result.events_processed,
                      stats=dict(result.stats))
