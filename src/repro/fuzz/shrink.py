"""Greedy failure minimisation: drop faults first, then drop work.

Given a failing scenario, :func:`shrink_scenario` tries progressively
smaller variants, keeping each one only if it still fails with the *same
oracle* (so a shrink never silently trades one bug for another).  The
steps, in order:

1. **Drop faults** — zero each chaos knob individually, then drop chaos
   entirely.  A failure that survives fault removal is a plain sim bug and
   its repro no longer depends on the fault schedule at all.
2. **Drop work** — remove whole sub-workloads from a mix, then halve
   iteration/line counts toward their floors, then cut the node count.

Every step builds its candidate from the *current best* (the last accepted
shrink), so accepted reductions compose and the result is monotonically
smaller.  Every candidate costs one full simulation, so ``budget`` caps
the total; fuzz cases run in fractions of a second, and the walk is
strictly forward (no step ever reruns).

``rerun`` is injectable for tests (and so the engine can route candidate
runs anywhere); it must behave like :func:`repro.fuzz.runner.run_case`.
"""

from dataclasses import replace

from ..common.errors import ConfigError, ReproError


def shrink_scenario(scenario, failure, rerun, budget=24):
    """Minimise ``scenario`` while it keeps failing like ``failure``.

    Returns ``(shrunk_scenario, shrunk_result, attempts)`` — the smallest
    variant found (possibly the original), the :class:`CaseResult` it
    produced (None when no candidate was ever accepted; callers then rerun
    the original), and how many candidate runs were spent.
    """
    attempts = 0
    best, best_result = scenario, None
    for step in _fault_steps() + _work_steps():
        if attempts >= budget:
            break
        candidate = step(best)
        if candidate is None or candidate == best:
            continue
        attempts += 1
        try:
            result = rerun(candidate)
        except (ConfigError, ReproError):
            continue  # candidate was not even runnable; keep shrinking
        if not result.ok and result.oracle == failure.oracle:
            best, best_result = candidate, result
    return best, best_result, attempts


# -- step builders (each returns scenario -> candidate | None) --------------


def _fault_steps():
    def zero_knob(knob):
        def step(scenario):
            chaos = scenario.chaos
            if chaos is None or not getattr(chaos, knob):
                return None
            zeroed = {knob: 0 if knob == "delay_jitter" else 0.0}
            if knob == "reorder_prob":
                zeroed["reorder_window"] = 0
            return replace(scenario, chaos=replace(chaos, **zeroed))
        return step

    def drop_chaos(scenario):
        if scenario.chaos is None:
            return None
        return replace(scenario, chaos=None)

    return [zero_knob(knob) for knob in
            ("duplicate_prob", "force_nack_prob", "reorder_prob",
             "delay_jitter")] + [drop_chaos]


def _work_steps():
    def drop_workload(index):
        def step(scenario):
            if len(scenario.workloads) <= 1 or index >= len(scenario.workloads):
                return None
            remaining = (scenario.workloads[:index]
                         + scenario.workloads[index + 1:])
            return replace(scenario, workloads=remaining)
        return step

    def halve(scenario):
        shrunk = tuple((kind, _halved(kwargs))
                       for kind, kwargs in scenario.workloads)
        return replace(scenario, workloads=shrunk)

    def cut_nodes(nodes):
        def step(scenario):
            if scenario.config.num_nodes <= nodes:
                return None
            return replace(scenario,
                           config=replace(scenario.config, num_nodes=nodes))
        return step

    return [drop_workload(1), drop_workload(0), halve, halve,
            cut_nodes(4), cut_nodes(3)]


_SIZE_KEYS = {"iterations": 4, "lines_per_producer": 1, "lines": 1,
              "hot_lines": 0, "false_share_pairs": 0}


def _halved(kwargs):
    halved = dict(kwargs)
    for key, floor in _SIZE_KEYS.items():
        if key in halved:
            halved[key] = max(floor, halved[key] // 2)
    return halved
