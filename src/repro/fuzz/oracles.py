"""Post-run (quiescence) oracles for fuzzed simulations.

These run after a simulation drained its event queue successfully; the
online checks (:class:`~repro.sim.coherence_check.CoherenceChecker`) have
already validated every individual read, so what is left to assert is the
*final* state the protocol settled into:

* ``txn-terminate`` — no transaction span is still open ("unfinished");
  every miss that started also ended.  (A delegation still in place at the
  end of a run — outcome "still-delegated" — is legal.)
* ``bounded-retry`` — no single transaction needed an absurd number of
  NACK retries.  The bound is far above anything contention produces but
  far below the livelock tripwire, so it catches retry storms that would
  eventually terminate yet indicate a pathological schedule.
* ``single-writer`` — at most one node holds a writable copy per line.
* ``directory-agreement`` — no directory entry is stuck mid-transaction
  (busy record, pending update acks, deferred undelegation), every EXCL
  entry's owner really holds a writable copy, and every DELE entry's
  delegate really holds the delegated directory state.
* ``lost-update`` — the value the directory tree exposes for each written
  line equals the last value the coherence checker saw committed: home
  memory for UNOWNED/SHARED lines, the owner's cache for EXCL lines,
  following the delegation link for DELE lines.
* ``pool-invariant`` — the process-global message free list is still
  structurally sound (no aliased instances, no retained payloads, bounded
  size): a lifecycle bug on an exception or redispatch path corrupts the
  pool long before it corrupts a visible run.

Each check returns ``(name, message)`` on violation; ``None`` means the
run is clean.
"""

from ..directory.state import DirState
from ..network.message import Message

#: Retries one transaction may legitimately accumulate.  Real contention
#: on these small fuzz workloads stays in single digits; the forced-NACK
#: budget adds at most 64 across the whole run.
RETRY_BOUND = 1000


def check_quiescence(system, tracer, build):
    """Run every quiescence oracle; first violation wins (most specific
    ordering: span bookkeeping, then structure, then data)."""
    for check in (_check_spans, _check_single_writer,
                  _check_directory_agreement, _check_lost_update,
                  _check_pool):
        violation = check(system, tracer)
        if violation is not None:
            return violation
    return None


def _check_spans(system, tracer):
    for span in tracer.spans:
        if span.outcome == "unfinished":
            return ("txn-terminate",
                    "node %d %s span for 0x%x never completed (started "
                    "cycle %d)" % (span.node, span.kind, span.addr,
                                   span.start))
        if span.kind.startswith("miss.") and span.retries > RETRY_BOUND:
            return ("bounded-retry",
                    "node %d %s for 0x%x took %d retries (bound %d)"
                    % (span.node, span.kind, span.addr, span.retries,
                       RETRY_BOUND))
    return None


def _written_lines(system):
    return [] if system.checker is None else system.checker.written_lines()


def _check_single_writer(system, tracer):
    for line in _written_lines(system):
        writers = [hub.node for hub in system.hubs
                   if hub.hierarchy.state_of(line).writable]
        if len(writers) > 1:
            return ("single-writer",
                    "line 0x%x has %d writable copies at quiescence "
                    "(nodes %s)" % (line, len(writers), writers))
    return None


def _dir_entries(system):
    """Every materialised home-directory entry, with its home hub."""
    for hub in system.hubs:
        for line in hub.home_memory.known_lines():
            yield hub, hub.home_memory.entry(line)


def _entry_stuck(entry, where):
    if entry.busy is not None:
        return ("directory-agreement",
                "%s entry 0x%x still busy (%s) at quiescence"
                % (where, entry.addr, entry.busy.kind.name))
    if entry.pending_updates:
        return ("directory-agreement",
                "%s entry 0x%x has %d unacknowledged updates at quiescence"
                % (where, entry.addr, entry.pending_updates))
    if entry.deferred_undelegate is not None:
        return ("directory-agreement",
                "%s entry 0x%x has a deferred undelegation at quiescence"
                % (where, entry.addr))
    return None


def _check_directory_agreement(system, tracer):
    for hub, entry in _dir_entries(system):
        stuck = _entry_stuck(entry, "home")
        if stuck is not None:
            return stuck
        if entry.state is DirState.EXCL:
            if entry.owner is None:
                return ("directory-agreement",
                        "EXCL entry 0x%x has no owner" % entry.addr)
            if not system.hubs[entry.owner].hierarchy.state_of(
                    entry.addr).writable:
                return ("directory-agreement",
                        "EXCL entry 0x%x names owner %d but that node "
                        "holds no writable copy" % (entry.addr, entry.owner))
        elif entry.state is DirState.DELE:
            delegate = system.hubs[entry.delegate]
            pentry = (delegate.producer_table.lookup(entry.addr, touch=False)
                      if delegate.producer_table is not None else None)
            if pentry is None:
                return ("directory-agreement",
                        "DELE entry 0x%x names delegate %d but its producer "
                        "table has no entry" % (entry.addr, entry.delegate))
            stuck = _entry_stuck(pentry, "delegated")
            if stuck is not None:
                return stuck
    return None


def _visible_value(system, hub, entry):
    """The value the directory tree exposes for ``entry``'s line, or a
    ``(oracle, message)`` violation; follows one delegation link."""
    if entry.state is DirState.DELE:
        pentry = system.hubs[entry.delegate].producer_table.lookup(
            entry.addr, touch=False)
        # Agreement oracle already guaranteed pentry exists and is idle.
        return _visible_value(system, system.hubs[entry.delegate], pentry)
    if entry.state is DirState.EXCL:
        return system.hubs[entry.owner].hierarchy.value_of(entry.addr)
    return entry.value


def _check_pool(system, tracer):
    problems = Message.pool_audit()
    if problems:
        return ("pool-invariant", "; ".join(problems))
    return None


def _check_lost_update(system, tracer):
    if system.checker is None:
        return None
    for hub, entry in _dir_entries(system):
        last = system.checker.last_write_value(entry.addr)
        if last is None:
            continue  # never written (or not tracked): nothing to compare
        visible = _visible_value(system, hub, entry)
        if visible != last:
            return ("lost-update",
                    "line 0x%x settled at %r but the last committed write "
                    "was %r (dir state %s at home %d)"
                    % (entry.addr, visible, last, entry.state.name,
                       hub.node))
    return None
