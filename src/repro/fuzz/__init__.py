"""Fault injection and randomized protocol stress fuzzing.

The execution-level adversarial harness: seeded chaos at the network
layer (:mod:`repro.network.chaos`), randomized scenario generation
(:mod:`~repro.fuzz.scenarios`), oracle-checked runs
(:mod:`~repro.fuzz.runner`, :mod:`~repro.fuzz.oracles`), greedy failure
shrinking (:mod:`~repro.fuzz.shrink`) and deterministic repro artifacts
with byte-for-byte replay (:mod:`~repro.fuzz.engine`).  CLI:
``repro fuzz`` — see :doc:`docs/fault_injection.md`.
"""

from ..network.chaos import ChaosConfig, ChaosPolicy
from .engine import (
    FUZZ_DIR,
    FuzzEngine,
    FuzzFailure,
    FuzzReport,
    ReplayReport,
    replay_artifact,
)
from .oracles import check_quiescence
from .runner import CaseResult, build_workload, run_case
from .scenarios import FuzzScenario, scenario_from_dict, scenario_to_dict
from .shrink import shrink_scenario

__all__ = [
    "ChaosConfig",
    "ChaosPolicy",
    "FUZZ_DIR",
    "FuzzEngine",
    "FuzzFailure",
    "FuzzReport",
    "ReplayReport",
    "replay_artifact",
    "check_quiescence",
    "CaseResult",
    "build_workload",
    "run_case",
    "FuzzScenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink_scenario",
]
