"""The fuzz campaign driver: corpus runs, shrinking, artifacts, replay.

:class:`FuzzEngine` turns a list of seeds into scenario runs (optionally
fanned out over the sweep engine's worker pool), shrinks every failure
(:mod:`repro.fuzz.shrink`) and writes a deterministic repro artifact per
failing seed under ``.repro_cache/fuzz/<seed>.json``.  An artifact stores
the original and shrunk scenarios *and* their full results, so

* ``repro fuzz --replay <artifact>`` re-executes the shrunk scenario and
  compares the fresh result digest byte-for-byte against the recorded
  one — "reproduced" means the bug still exists, bit-identically;
* a fixed artifact replays as "no longer reproduces", which is how the CI
  fuzz-smoke job distinguishes a fixed bug from a flaky harness.
"""

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional

from .runner import CaseResult, run_case, run_seed_payload
from .scenarios import FuzzScenario, scenario_from_dict, scenario_to_dict

#: Default artifact directory (beside the sweep cache).
FUZZ_DIR = os.path.join(".repro_cache", "fuzz")

#: Artifact format version.
ARTIFACT_FORMAT = 1




@dataclass
class FuzzFailure:
    """One failing seed, fully packaged."""

    seed: int
    result: CaseResult            # the original (unshrunk) failure
    shrunk_result: CaseResult     # failure of the minimised scenario
    artifact_path: Optional[str] = None
    shrink_attempts: int = 0


@dataclass
class FuzzReport:
    """What one corpus run did."""

    seeds: List[int] = field(default_factory=list)
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures


class FuzzEngine:
    """Runs seed corpora and manages repro artifacts.

    ``jobs`` > 1 fans scenario runs out over the sweep engine's process
    pool; shrinking always happens in the parent (it is a sequential
    search).  ``jobs=1`` runs everything in-process, which also makes
    monkeypatched protocol mutations visible to the runs — the mutation
    acceptance tests rely on that.
    """

    def __init__(self, jobs=1, out_dir=FUZZ_DIR, shrink=True,
                 shrink_budget=24, scale=1.0, cache=False,
                 cache_dir=None):
        self.jobs = jobs
        self.out_dir = out_dir
        self.shrink = shrink
        self.shrink_budget = shrink_budget
        self.scale = scale
        self.cache = cache
        self.cache_dir = cache_dir

    # -- corpus runs --------------------------------------------------------

    def run_corpus(self, seeds, progress=None):
        """Run every seed; shrink + persist an artifact per failure."""
        seeds = list(seeds)
        results = self._run_scenarios(seeds)
        report = FuzzReport(seeds=seeds)
        for seed in seeds:
            result = results[seed]
            if result.ok:
                report.passed += 1
            else:
                report.failures.append(self._package_failure(seed, result))
            if progress is not None:
                progress(seed, result)
        return report

    def _run_scenarios(self, seeds):
        if self.jobs <= 1 and not self.cache:
            return {seed: run_case(FuzzScenario.from_seed(seed, self.scale))
                    for seed in seeds}
        from ..harness.sweep import CACHE_DIR, SweepEngine, SweepJob

        # The runner's identity is hashed into every job key, so corpus
        # results can share the on-disk cache with simulation payloads.
        engine = SweepEngine(jobs=self.jobs, cache=self.cache,
                             cache_dir=self.cache_dir or CACHE_DIR,
                             runner=run_seed_payload)
        jobs = {}
        for seed in seeds:
            scenario = FuzzScenario.from_seed(seed, self.scale)
            jobs[seed] = SweepJob(app="fuzz", config=scenario.config,
                                  seed=seed, scale=self.scale,
                                  chaos=scenario.chaos)
        payloads = engine.run_many(jobs)
        return {seed: CaseResult(**payload)
                for seed, payload in payloads.items()}

    def _package_failure(self, seed, result):
        scenario = FuzzScenario.from_seed(seed, self.scale)
        shrunk, shrunk_result, attempts = scenario, None, 0
        if self.shrink:
            from .shrink import shrink_scenario

            shrunk, shrunk_result, attempts = shrink_scenario(
                scenario, result, rerun=run_case,
                budget=self.shrink_budget)
        if shrunk_result is None:
            # Nothing smaller still failed (or shrinking disabled): the
            # artifact replays the original scenario.  Rerun it so the
            # recorded result is exactly what a replay will regenerate.
            shrunk, shrunk_result = scenario, run_case(scenario)
        path = self._write_artifact(seed, scenario, result, shrunk,
                                    shrunk_result, attempts)
        return FuzzFailure(seed=seed, result=result,
                           shrunk_result=shrunk_result,
                           artifact_path=path, shrink_attempts=attempts)

    # -- artifacts ----------------------------------------------------------

    def _write_artifact(self, seed, scenario, result, shrunk, shrunk_result,
                        attempts):
        doc = {
            "format": ARTIFACT_FORMAT,
            "seed": seed,
            "original": scenario_to_dict(scenario),
            "original_result": result.to_dict(),
            "shrunk": scenario_to_dict(shrunk),
            "shrunk_result": shrunk_result.to_dict(),
            "shrunk_digest": shrunk_result.digest,
            "shrink_attempts": attempts,
        }
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, "%d.json" % seed)
        handle, tmp_path = tempfile.mkstemp(dir=self.out_dir, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as fileobj:
                json.dump(doc, fileobj, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path


@dataclass
class ReplayReport:
    """Outcome of replaying one artifact."""

    path: str
    seed: int
    reproduced: bool              # fresh run == recorded run, byte-for-byte
    expected_oracle: Optional[str]
    actual: CaseResult
    expected_digest: str
    actual_digest: str


def replay_artifact(path):
    """Re-execute an artifact's shrunk scenario and compare byte-for-byte."""
    with open(path) as fileobj:
        doc = json.load(fileobj)
    if doc.get("format") != ARTIFACT_FORMAT:
        raise ValueError("unknown fuzz artifact format %r"
                         % doc.get("format"))
    scenario = scenario_from_dict(doc["shrunk"])
    expected = CaseResult(**doc["shrunk_result"])
    actual = run_case(scenario)
    return ReplayReport(path=path, seed=doc["seed"],
                        reproduced=actual.digest == expected.digest,
                        expected_oracle=expected.oracle, actual=actual,
                        expected_digest=expected.digest,
                        actual_digest=actual.digest)
