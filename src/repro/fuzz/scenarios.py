"""Randomized fuzz scenarios: one seed -> one fully-specified stress case.

A :class:`FuzzScenario` pins everything a run needs — system config, chaos
knobs, workload mix, event/cycle caps — so the same seed always produces
the same simulation, the property every replay and shrinking step rests
on.  :func:`FuzzScenario.from_seed` rolls the whole space from one named
RNG stream; :func:`scenario_to_dict`/:func:`scenario_from_dict` round-trip
a scenario through JSON for the on-disk repro artifacts.

The rolled space deliberately leans on the protocol's nasty corners:
tiny delegate tables (4 entries — the all-busy path), zero intervention
delay, one-cycle NACK retry windows, 256-byte lines (the consumer-table
set-index bug's trigger), and "storm" workload mixes that pile hot lines,
false sharing and zero compute gaps onto a few addresses.
"""

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..common.params import (
    SystemConfig,
    baseline,
    config_from_dict,
    config_to_dict,
    enhanced,
    rac_only,
)
from ..common.rng import stream
from ..network.chaos import ChaosConfig, chaos_from_dict, chaos_to_dict

#: Artifact/serialisation format version.
SCENARIO_FORMAT = 1


def storm_workload_kwargs(num_nodes):
    """The canonical storm workload for an ``num_nodes``-node machine.

    One producer-consumer line per node, consumer sets wide enough to
    exercise the directory vector but capped so a 1024-node case stays
    tractable, hot lines everyone reloads after each barrier, false
    sharing, zero compute gap.  Shared by :meth:`FuzzScenario.storm` and
    the `repro scale` harness (:mod:`repro.harness.scale`), so the audit
    and the report measure the same traffic.
    """
    return {
        "iterations": 4,
        "lines_per_producer": 1,
        "consumers": min(32, max(2, num_nodes // 8)),
        "neighbor_consumers": False,
        "home_random_prob": 0.5,
        "consumer_churn": 0.25,
        "compute": 0,
        "op_gap": 1,
        "hot_lines": 4,
        "false_share_pairs": 2,
    }


@dataclass(frozen=True)
class FuzzScenario:
    """One deterministic stress case (seed + everything the seed rolled)."""

    seed: int
    config: SystemConfig
    chaos: Optional[ChaosConfig] = None
    #: Workload mix: tuple of (kind, kwargs) where kind is "pc" or
    #: "migratory"; multiple entries are merged into one combined trace.
    workloads: Tuple[tuple, ...] = field(default_factory=tuple)
    scale: float = 1.0
    #: Hard caps so a livelocked case fails the termination oracle instead
    #: of hanging the fuzzer.
    max_cycles: int = 5_000_000
    max_events: int = 5_000_000

    @property
    def num_cpus(self):
        return self.config.num_nodes

    @classmethod
    def from_seed(cls, seed, scale=1.0, protocol=None, num_nodes=None,
                  directory_format=None):
        """Roll a full scenario from ``seed`` (deterministic).

        ``protocol`` pins the scenario onto one arena protocol (see
        :mod:`repro.protocol.arena`).  It is applied *after* the RNG has
        rolled the whole space, so ``from_seed(s, protocol=p)`` differs
        from ``from_seed(s)`` only in ``config.protocol_name`` — the same
        seed stresses every protocol with the identical chaos schedule,
        workload mix and config knobs.  ``num_nodes`` and
        ``directory_format`` pin the machine size / directory encoding the
        same way (the scaling audit replays small-machine seeds on
        512-1024-node systems); defaults leave every roll untouched, so
        existing seed digests are byte-identical.
        """
        rng = stream(seed, "fuzz-scenario")
        num_cpus = rng.choice((3, 4, 5, 6, 8))

        preset = rng.random()
        if preset < 0.15:
            config = baseline(num_nodes=num_cpus)
        elif preset < 0.30:
            config = rac_only(num_nodes=num_cpus)
        else:
            # The interesting protocol (delegation + updates), biased
            # toward tiny tables so capacity/all-busy paths actually fire.
            config = enhanced(delegate_entries=rng.choice((4, 8, 32)),
                              rac_bytes=rng.choice((4096, 32 * 1024)),
                              num_nodes=num_cpus)
        config = config.with_protocol(
            intervention_delay=rng.choice((0, 5, 50)),
            nack_retry_delay=rng.choice((1, 5, 20)),
            retry_backoff=rng.choice(("fixed", "exp")),
            retry_jitter_frac=rng.choice((0.0, 0.5)),
        )
        line_size = rng.choice((128, 128, 128, 256))
        if line_size != config.line_size:
            config = replace(
                config, line_size=line_size,
                l1=replace(config.l1, line_size=line_size),
                l2=replace(config.l2, line_size=line_size),
                rac=replace(config.rac, line_size=line_size))
        config = replace(config, seed=seed)

        chaos = None
        if rng.random() >= 0.25:  # 25% of cases run fault-free
            reorder = rng.random() < 0.5
            chaos = ChaosConfig(
                seed=seed,
                delay_jitter=rng.choice((0, 20, 200)),
                reorder_prob=0.3 if reorder else 0.0,
                reorder_window=rng.choice((50, 400)) if reorder else 0,
                duplicate_prob=rng.choice((0.0, 0.5)),
                force_nack_prob=rng.choice((0.0, 0.2, 0.5)),
                force_nack_budget=64,
            )
            if not chaos.enabled:
                chaos = None

        workloads = cls._roll_workloads(rng, num_cpus)
        if protocol is not None:
            config = replace(config, protocol_name=protocol)
        if directory_format is not None:
            config = replace(config, directory_format=directory_format)
        caps = {}
        if num_nodes is not None and num_nodes != config.num_nodes:
            # Pin the machine size post-roll: the workload kwargs stay as
            # rolled (consumer counts etc. are valid on any bigger
            # machine), only the node count — and the run caps, which must
            # grow with it — change.
            config = replace(config, num_nodes=num_nodes)
            budget = max(5_000_000, num_nodes * 40_000)
            caps = {"max_cycles": budget, "max_events": budget}
        return cls(seed=seed, config=config, chaos=chaos,
                   workloads=workloads, scale=scale, **caps)

    @classmethod
    def storm(cls, seed, num_nodes, directory_format="full",
              protocol="adaptive", scale=1.0, chaos=None):
        """A deterministic storm case tuned for 256-1024-node machines.

        Unlike :meth:`from_seed` (which rolls a small machine and lets the
        audit pin ``num_nodes`` afterwards), this builds the scaling
        study's canonical workload directly: every node produces one line,
        consumer sets span a fixed slice of the machine, and post-barrier
        hot-line flurries plus false sharing at zero compute gap drive the
        NACK/retry and update fan-out storms the breakdown curves measure.
        The same ``(seed, num_nodes, scale)`` always yields the same
        workload, whatever the format/protocol — so cells of the `repro
        scale` report differ only in the knob under study.
        """
        config = enhanced(delegate_entries=32, rac_bytes=32 * 1024,
                          num_nodes=num_nodes)
        config = config.with_protocol(
            intervention_delay=5,
            nack_retry_delay=5,
            retry_backoff="exp",
            retry_jitter_frac=0.5,
        )
        config = replace(config, seed=seed, protocol_name=protocol,
                         directory_format=directory_format)
        workloads = (("pc", storm_workload_kwargs(num_nodes)),)
        budget = max(5_000_000, num_nodes * 40_000)
        return cls(seed=seed, config=config, chaos=chaos,
                   workloads=workloads, scale=scale,
                   max_cycles=budget, max_events=budget)

    @staticmethod
    def _roll_workloads(rng, num_cpus):
        def pc_kwargs(storm=False):
            return {
                "iterations": rng.randint(4, 8),
                "lines_per_producer": rng.randint(1, 4),
                "consumers": rng.randint(1, max(1, num_cpus - 2)),
                "neighbor_consumers": rng.random() < 0.5,
                "home_random_prob": rng.choice((0.0, 0.5, 1.0)),
                "consumer_churn": rng.choice((0.0, 0.3)),
                "compute": 0 if storm else rng.choice((0, 50, 300)),
                "op_gap": 1 if storm else rng.choice((1, 8)),
                "hot_lines": 3 if storm else rng.choice((0, 0, 2)),
                "false_share_pairs": 2 if storm else rng.choice((0, 0, 1)),
            }

        def migratory_kwargs():
            return {
                "lines": rng.randint(1, 4),
                "iterations": rng.randint(4, 8),
                "compute": rng.choice((0, 50, 300)),
                "op_gap": rng.choice((1, 8)),
            }

        kind = rng.choice(("pc", "pc", "migratory", "mixed", "storm"))
        if kind == "pc":
            return (("pc", pc_kwargs()),)
        if kind == "storm":
            return (("pc", pc_kwargs(storm=True)),)
        if kind == "migratory":
            return (("migratory", migratory_kwargs()),)
        return (("pc", pc_kwargs()), ("migratory", migratory_kwargs()))


def scenario_to_dict(scenario):
    """JSON-safe dict form of a scenario (the repro-artifact encoding)."""
    return {
        "format": SCENARIO_FORMAT,
        "seed": scenario.seed,
        "scale": scenario.scale,
        "config": config_to_dict(scenario.config),
        "chaos": chaos_to_dict(scenario.chaos),
        "workloads": [[kind, dict(kwargs)]
                      for kind, kwargs in scenario.workloads],
        "max_cycles": scenario.max_cycles,
        "max_events": scenario.max_events,
    }


def scenario_from_dict(doc):
    """Inverse of :func:`scenario_to_dict`."""
    if doc.get("format") != SCENARIO_FORMAT:
        raise ValueError("unknown scenario format %r" % doc.get("format"))
    return FuzzScenario(
        seed=doc["seed"],
        scale=doc["scale"],
        config=config_from_dict(doc["config"]),
        chaos=chaos_from_dict(doc["chaos"]),
        workloads=tuple((kind, dict(kwargs))
                        for kind, kwargs in doc["workloads"]),
        max_cycles=doc["max_cycles"],
        max_events=doc["max_events"],
    )
