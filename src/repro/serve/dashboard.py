"""The browsable dashboard: one self-contained HTML page.

Served at ``GET /``.  Plain vanilla JS: it lists jobs from ``/jobs``,
shows the ``/metrics`` headline numbers (cache hit-rate front and
centre), subscribes to the global SSE feed at ``/events`` for live
updates, and links each finished unit to its cached result — plus the
Perfetto trace viewer for traced sim runs (``/traces/<key>``).
"""

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro.serve — sweep/fuzz job service</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto;
         max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h1 small { font-weight: normal; opacity: .6; }
  table { border-collapse: collapse; width: 100%; margin: .75rem 0; }
  th, td { text-align: left; padding: .3rem .6rem;
           border-bottom: 1px solid rgba(127,127,127,.25); }
  th { font-weight: 600; opacity: .75; }
  .tiles { display: flex; gap: .75rem; flex-wrap: wrap; margin: 1rem 0; }
  .tile { border: 1px solid rgba(127,127,127,.35); border-radius: .5rem;
          padding: .5rem .9rem; min-width: 8rem; }
  .tile b { display: block; font-size: 1.25rem; }
  .tile span { opacity: .65; font-size: .8rem; }
  .state-done { color: #2a7; } .state-failed { color: #d43; }
  .state-running { color: #07c; } .state-cancelled { opacity: .6; }
  code { font-size: .85em; }
  a { color: inherit; }
  #log { font: 12px/1.4 ui-monospace, monospace; opacity: .75;
         max-height: 12rem; overflow-y: auto; white-space: pre-wrap; }
</style>
</head>
<body>
<h1>repro.serve <small>sweep/fuzz job service</small></h1>
<div class="tiles" id="tiles"></div>
<h2 style="font-size:1.05rem">Jobs</h2>
<table id="jobs"><thead><tr>
  <th>id</th><th>kind</th><th>client</th><th>state</th>
  <th>progress</th><th>elapsed</th><th>links</th>
</tr></thead><tbody></tbody></table>
<h2 style="font-size:1.05rem">Live events</h2>
<div id="log"></div>
<script>
"use strict";
const fmt = (n, d=1) => (n == null ? "–" : Number(n).toFixed(d));
async function refresh() {
  const [jobs, metrics] = await Promise.all([
    fetch("/jobs").then(r => r.json()),
    fetch("/metrics").then(r => r.json())]);
  const tiles = [
    ["jobs", metrics.jobs.completed + " done", metrics.jobs.failed + " failed"],
    ["queue depth", metrics.queue.depth, metrics.queue.running_jobs + " running"],
    ["cache hit-rate", fmt(100 * (metrics.cache.hit_rate || 0)) + "%",
     (metrics.cache.evictions || 0) + " evictions"],
    ["dedupe", metrics.units.shared_inflight + " shared",
     metrics.units.cached + " cache hits"],
    ["workers", fmt(100 * metrics.workers.utilization, 0) + "%",
     metrics.workers.fleet + " fleet / " + metrics.workers.crashes + " crashes"],
    ["job latency", fmt(metrics.latency_ms.job.p50, 0) + " ms p50",
     fmt(metrics.latency_ms.job.p95, 0) + " ms p95"],
  ];
  document.getElementById("tiles").innerHTML = tiles.map(
    ([label, big, small]) =>
      `<div class="tile"><b>${big}</b>${small}<br><span>${label}</span></div>`
  ).join("");
  const body = document.querySelector("#jobs tbody");
  body.innerHTML = jobs.jobs.map(j => {
    const links = [`<a href="/jobs/${j.id}">detail</a>`,
                   `<a href="/jobs/${j.id}/events">sse</a>`];
    return `<tr><td><code>${j.id}</code></td><td>${j.kind}</td>` +
      `<td>${j.client}</td><td class="state-${j.state}">${j.state}</td>` +
      `<td>${j.units_done}/${j.units_total}</td>` +
      `<td>${fmt(j.elapsed_s)}s</td><td>${links.join(" · ")}</td></tr>`;
  }).join("") || `<tr><td colspan="7">no jobs yet — POST one to /jobs</td></tr>`;
}
function listen() {
  const source = new EventSource("/events");
  const log = document.getElementById("log");
  for (const kind of ["job", "unit", "progress"]) {
    source.addEventListener(kind, ev => {
      const data = JSON.parse(ev.data);
      if (kind !== "progress") {
        log.textContent = `${new Date().toLocaleTimeString()} ${kind} ` +
          JSON.stringify(data) + "\\n" + log.textContent.slice(0, 20000);
      }
      refresh();
    });
  }
  source.onerror = () => { source.close(); setTimeout(listen, 2000); };
}
refresh(); listen(); setInterval(refresh, 5000);
</script>
</body>
</html>
"""
