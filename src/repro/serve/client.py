"""A small blocking client for the serve API (tests, smoke scripts).

Stdlib-only (``http.client``); JSON in, JSON out.  SSE streams are
exposed as plain generators of ``(event, data)`` tuples so a test can
follow a job to completion without an async runtime::

    client = ServeClient("http://127.0.0.1:8642", client_id="ci")
    job = client.post_job({"kind": "sim", "app": "em3d", "scale": 0.05})
    final = client.follow(job["id"])          # consumes SSE until done
    result = client.result(job["units"][0]["key"])
"""

import http.client
import json
import time
import urllib.parse


class ServeAPIError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status, message):
        self.status = status
        super().__init__("HTTP %d: %s" % (status, message))


class ServeClient:
    """Blocking helper over one service base URL."""

    def __init__(self, base_url, client_id="default", timeout=60.0):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError("only http:// service URLs are supported")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port or 80)
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _request(self, method, path, body=None):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            headers = {"X-Client": self.client_id}
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            payload = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(payload).get("error", payload)
                except ValueError:
                    message = payload
                raise ServeAPIError(response.status, message)
            return json.loads(payload) if payload.strip() else None
        finally:
            connection.close()

    # -- API ----------------------------------------------------------------

    def healthz(self):
        return self._request("GET", "/healthz")

    def post_job(self, spec):
        return self._request("POST", "/jobs", body=spec)

    def list_jobs(self):
        return self._request("GET", "/jobs")["jobs"]

    def get_job(self, job_id):
        return self._request("GET", "/jobs/%s" % job_id)

    def delete_job(self, job_id):
        return self._request("DELETE", "/jobs/%s" % job_id)

    def result(self, key):
        return self._request("GET", "/results/%s" % key)["result"]

    def trace(self, key):
        return self._request("GET", "/traces/%s" % key)

    def metrics(self):
        return self._request("GET", "/metrics")

    def dashboard(self):
        """The dashboard HTML (sanity-checked by the smoke tests)."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                               timeout=self.timeout)
        try:
            connection.request("GET", "/", headers={"X-Client":
                                                    self.client_id})
            response = connection.getresponse()
            return response.read().decode("utf-8")
        finally:
            connection.close()

    # -- SSE ----------------------------------------------------------------

    def events(self, job_id=None, timeout=None):
        """Generator of ``(event, data)`` from an SSE stream.

        ``job_id`` follows one job (the server ends the stream when the
        job settles); None follows the global feed until ``timeout``.
        """
        path = "/events" if job_id is None else "/jobs/%s/events" % job_id
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            connection.request("GET", path,
                               headers={"X-Client": self.client_id})
            response = connection.getresponse()
            if response.status >= 400:
                raise ServeAPIError(response.status,
                                    response.read().decode("utf-8"))
            event, data_lines = None, []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and event is not None:
                    data = json.loads("\n".join(data_lines)) \
                        if data_lines else {}
                    yield event, data
                    event, data_lines = None, []
        finally:
            connection.close()

    def follow(self, job_id, timeout=120.0):
        """Consume the job's SSE stream until it settles; returns the
        final job document (also collects every event on the way)."""
        deadline = time.monotonic() + timeout
        seen = []
        for event, data in self.events(job_id, timeout=timeout):
            seen.append((event, data))
            if event == "job" and data.get("state") in ("done", "failed",
                                                        "cancelled"):
                final = self.get_job(job_id)
                final["sse_events"] = seen
                return final
            if time.monotonic() > deadline:
                break
        raise TimeoutError("job %s did not settle within %.1fs over SSE"
                           % (job_id, timeout))

    def wait(self, job_id, timeout=120.0, poll=0.1):
        """Poll ``GET /jobs/<id>`` until the job settles."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.get_job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError("job %s did not settle within %.1fs"
                                   % (job_id, timeout))
            time.sleep(poll)
