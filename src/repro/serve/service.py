"""The job service: registry, dedupe, budgets, retries, cache, events.

:class:`JobService` is the hub every HTTP handler talks to.  A submitted
spec becomes a :class:`Job` whose units flow through one funnel:

1. **cache** — the shared :class:`~repro.harness.sweep.ResultCache` is
   consulted first; a hit finishes the unit without touching a worker.
2. **in-flight dedupe** — a miss whose content key is already executing
   (for any client) awaits that execution's future instead of submitting
   a duplicate: two clients posting the same sweep share one simulation,
   the way DLS's directoryless LLC replaces per-requester bookkeeping
   with one shared structure.
3. **budgeted execution** — new work acquires the client's concurrency
   semaphore, runs on the persistent :class:`~repro.serve.workers.WorkerFleet`
   (crash retries with backoff live there), and lands in the cache for
   every later requester.

Progress flows through :class:`~repro.serve.events.SSEProgress` — the
sweep engine's hook surface — into the :class:`~repro.serve.events.EventHub`,
so SSE subscribers see ``progress`` / ``unit`` / ``job`` events live.
"""

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Optional

from ..harness.sweep import CACHE_DIR, ResultCache, SweepError
from .events import EventHub, SSEProgress
from .jobspec import parse_job
from .metrics import ServiceMetrics
from .workers import WorkerFleet

#: Default cap on simultaneously-executing units per client.
DEFAULT_CLIENT_BUDGET = 4

#: Default cache budget: 256 MB of result payloads.
DEFAULT_CACHE_BUDGET = 256 * 1024 * 1024

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2                # 0 = inline threads (tests)
    cache_dir: str = CACHE_DIR
    cache_budget: Optional[int] = DEFAULT_CACHE_BUDGET
    client_budget: int = DEFAULT_CLIENT_BUDGET
    max_retries: int = 2
    retry_base: float = 0.25
    mp_context: str = "spawn"


@dataclass
class UnitState:
    """One unit's service-side bookkeeping."""

    key: str
    label: str
    state: str = "queued"           # queued/running/done/failed/cancelled
    cached: bool = False            # served from the on-disk cache
    shared: bool = False            # coalesced onto another job's execution
    elapsed_s: float = 0.0
    error: Optional[str] = None


@dataclass
class Job:
    """One submitted job and its lifecycle."""

    id: str
    kind: str
    client: str
    units: list = field(default_factory=list)       # [UnitState]
    state: str = "queued"
    created: float = field(default_factory=time.time)
    elapsed_s: float = 0.0
    error: Optional[str] = None
    cancel: Optional[object] = None                 # asyncio.Event
    task: Optional[object] = None                   # the driving task

    def to_dict(self, verbose=True):
        done = sum(1 for u in self.units
                   if u.state in ("done", "failed", "cancelled"))
        doc = {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "state": self.state,
            "created": self.created,
            "elapsed_s": self.elapsed_s,
            "units_total": len(self.units),
            "units_done": done,
            "error": self.error,
        }
        if verbose:
            doc["units"] = [{
                "key": u.key, "label": u.label, "state": u.state,
                "cached": u.cached, "shared": u.shared,
                "elapsed_s": u.elapsed_s, "error": u.error,
                "result": "/results/" + u.key,
            } for u in self.units]
        return doc


class JobService:
    """The service core (transport-free: the API layer adapts HTTP)."""

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(self.config.cache_dir,
                                 budget_bytes=self.config.cache_budget)
        self.fleet = WorkerFleet(workers=self.config.workers,
                                 mp_context=self.config.mp_context,
                                 max_retries=self.config.max_retries,
                                 retry_base=self.config.retry_base)
        self.hub = EventHub()
        self.metrics = ServiceMetrics()
        self.jobs = {}              # id -> Job
        self._inflight = {}         # content key -> asyncio.Future
        self._client_sems = {}      # client -> asyncio.Semaphore
        self._ids = itertools.count(1)

    # -- submission ---------------------------------------------------------

    def submit(self, doc, client="anonymous"):
        """Validate and enqueue one job document; returns the Job.

        Raises :class:`~repro.serve.jobspec.SpecError` on a bad spec.
        """
        spec = parse_job(doc)
        job = Job(id="j%d" % next(self._ids), kind=spec.kind, client=client,
                  cancel=asyncio.Event())
        job.units = [UnitState(key=u.key, label=u.label)
                     for u in spec.units]
        self.jobs[job.id] = job
        self.metrics.jobs_accepted += 1
        self.metrics.units_total += len(spec.units)
        job.task = asyncio.create_task(self._run_job(job, spec.units))
        return job

    def _client_sem(self, client):
        sem = self._client_sems.get(client)
        if sem is None:
            sem = asyncio.Semaphore(self.config.client_budget)
            self._client_sems[client] = sem
        return sem

    # -- lifecycle ----------------------------------------------------------

    async def _run_job(self, job, units):
        started = time.monotonic()
        job.state = "running"
        progress = SSEProgress(self.hub, job.id)
        self._publish_state(job)
        progress.sweep_started(len(units), 0)
        sem = self._client_sem(job.client)
        # return_exceptions: one unit's failure (or a cancellation's
        # CancelledError) must not tear down its siblings mid-flight.
        await asyncio.gather(*[
            self._run_unit(job, unit, state, sem, progress)
            for unit, state in zip(units, job.units)],
            return_exceptions=True)
        job.elapsed_s = time.monotonic() - started
        failed = [u for u in job.units if u.state == "failed"]
        cancelled = job.cancel.is_set()
        if cancelled:
            job.state = "cancelled"
        elif failed:
            job.state = "failed"
            job.error = job.error or failed[0].error
        else:
            job.state = "done"
        self.metrics.record_job(job.elapsed_s, failed=bool(failed),
                                cancelled=cancelled)
        progress.sweep_finished(None)
        self._publish_state(job)

    async def _run_unit(self, job, unit, state, sem, progress):
        unit_started = time.monotonic()
        if job.cancel.is_set():
            state.state = "cancelled"
            return
        try:
            payload, how = await self._obtain(job, unit, sem)
        except SweepError as err:
            state.state = "failed"
            state.error = str(err)
            self.metrics.units_failed += 1
            self.hub.publish(job.id, "unit", {
                "key": unit.key, "label": unit.label, "state": "failed",
                "error": state.error[:2000]})
            return
        except asyncio.CancelledError:
            state.state = "cancelled"
            raise
        state.elapsed_s = time.monotonic() - unit_started
        state.state = "done"
        state.cached = how == "cache"
        state.shared = how == "shared"
        self.metrics.record_unit(state.elapsed_s)
        progress.job_finished(unit.key, unit.job, state.elapsed_s,
                              how != "executed")

    async def _obtain(self, job, unit, sem):
        """One payload for the unit: cache, shared in-flight, or execute.

        Loops because a shared execution can be *aborted* (its owning job
        was cancelled before the worker ran): the waiter then retries —
        re-checking the cache, re-sharing, or becoming the executor.
        """
        while True:
            hit = self.cache.get(unit.key)
            if hit is not None:
                self.metrics.units_cached += 1
                return hit, "cache"

            shared = self._inflight.get(unit.key)
            if shared is not None:
                try:
                    # shield(): cancelling *this* waiter must not kill the
                    # execution other clients are waiting on.
                    payload = await asyncio.shield(shared)
                except SweepError as err:
                    if getattr(err, "aborted", False):
                        continue  # owner bailed before executing: retry
                    raise
                self.metrics.units_shared += 1
                return payload, "shared"

            future = asyncio.get_running_loop().create_future()
            self._inflight[unit.key] = future
            try:
                async with sem:
                    if job.cancel.is_set():
                        raise asyncio.CancelledError()
                    payload = await self.fleet.execute(unit)
                self.metrics.units_executed += 1
                self.cache.put(unit.key, unit.job, payload,
                               elapsed=0.0)  # workers keep their own clock
                future.set_result(payload)
                return payload, "executed"
            except BaseException as err:
                if isinstance(err, SweepError):
                    future.set_exception(err)
                else:
                    # Aborted before execution (cancellation/teardown):
                    # waiters must retry, not inherit the abort.
                    abort = SweepError(unit.key, unit.job,
                                       "execution aborted: %r" % (err,))
                    abort.aborted = True
                    future.set_exception(abort)
                future.exception()  # consumed; waiters re-raise their copy
                raise
            finally:
                self._inflight.pop(unit.key, None)

    def _publish_state(self, job):
        self.hub.publish(job.id, "job", job.to_dict(verbose=False))

    # -- queries / control --------------------------------------------------

    def get_job(self, job_id):
        return self.jobs.get(job_id)

    def list_jobs(self):
        return [job.to_dict(verbose=False)
                for job in sorted(self.jobs.values(),
                                  key=lambda j: j.created, reverse=True)]

    def cancel_job(self, job_id):
        """Request cancellation; queued units are skipped, running units
        finish (their results still land in the shared cache)."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state in ("queued", "running"):
            job.cancel.set()
        return job

    def result(self, key):
        """The raw cached payload for a content key, or None."""
        return self.cache.get(key)

    async def shutdown(self):
        for job in self.jobs.values():
            if job.task is not None and not job.task.done():
                job.cancel.set()
                job.task.cancel()
        await asyncio.gather(*[job.task for job in self.jobs.values()
                               if job.task is not None],
                             return_exceptions=True)
        self.fleet.shutdown()
