"""``repro.serve`` — the async sweep/fuzz job service.

An asyncio HTTP JSON API (``POST /jobs`` …) over a persistent worker
fleet, deduplicating identical work across concurrent clients through
the sweep engine's content-addressed job keys and the shared
multi-process-safe result cache, with live SSE progress and a browsable
dashboard.  See ``docs/serving.md``.

Typical embedded use (tests; the CLI equivalent is ``repro serve``)::

    import asyncio
    from repro.serve import JobService, ServiceConfig, serve

    service = JobService(ServiceConfig(port=0, workers=2))
    asyncio.run(serve(service, ready=lambda port: print(port)))
"""

from .api import build_router, build_server, serve
from .client import ServeAPIError, ServeClient
from .events import EventHub, SSEProgress
from .jobspec import JobSpec, SpecError, WorkUnit, parse_job
from .metrics import ServiceMetrics
from .service import Job, JobService, ServiceConfig, UnitState
from .workers import WorkerFleet, traced_sim_runner

__all__ = [
    "EventHub",
    "Job",
    "JobService",
    "JobSpec",
    "SSEProgress",
    "ServeAPIError",
    "ServeClient",
    "ServiceConfig",
    "ServiceMetrics",
    "SpecError",
    "UnitState",
    "WorkUnit",
    "WorkerFleet",
    "build_router",
    "build_server",
    "parse_job",
    "serve",
    "traced_sim_runner",
]
