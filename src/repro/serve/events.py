"""Live progress events: an asyncio pub/sub hub + the SweepProgress bridge.

Every state change in the service publishes a JSON-safe event to the
:class:`EventHub`; SSE handlers subscribe (per-job or globally) and relay
frames to clients.  :class:`SSEProgress` subclasses the sweep engine's
console reporter, :class:`~repro.harness.sweep.SweepProgress` — same hook
surface (``sweep_started`` / ``job_finished`` / ``sweep_finished``), same
obs-histogram ETA model — but renders each report as a published event
instead of a terminal line, which is how one progress implementation
feeds both the CLI and the dashboard.
"""

import asyncio
import io

from ..harness.sweep import SweepProgress

#: Per-subscriber buffered events; a slow consumer beyond this loses the
#: oldest events (progress is a stream of snapshots, later ones win).
QUEUE_DEPTH = 256


class EventHub:
    """Fan-out of service events to per-job and global subscribers."""

    def __init__(self):
        self._subscribers = {}      # topic -> set of asyncio.Queue
        self.published = 0

    def subscribe(self, topic="*"):
        queue = asyncio.Queue(maxsize=QUEUE_DEPTH)
        self._subscribers.setdefault(topic, set()).add(queue)
        return queue

    def unsubscribe(self, topic, queue):
        queues = self._subscribers.get(topic)
        if queues is not None:
            queues.discard(queue)
            if not queues:
                del self._subscribers[topic]

    def publish(self, job_id, event, data):
        """Publish to the job's topic and the global topic."""
        self.published += 1
        payload = dict(data)
        payload["job_id"] = job_id
        payload["event"] = event
        for topic in (job_id, "*"):
            for queue in tuple(self._subscribers.get(topic, ())):
                if queue.full():
                    try:
                        queue.get_nowait()  # drop the oldest snapshot
                    except asyncio.QueueEmpty:
                        pass
                queue.put_nowait((event, payload))


class SSEProgress(SweepProgress):
    """The SweepProgress hook surface, rendered as hub events.

    The inherited bookkeeping (done/cached counts, the obs
    :class:`~repro.obs.metrics.Histogram` of per-job milliseconds, the
    running-mean ETA) is reused as-is; only the output surface changes:
    ``_emit`` publishes a ``progress`` event, ``job_finished`` adds a
    per-unit ``unit`` event carrying the content key.
    """

    def __init__(self, hub, job_id):
        # The parent writes its console line into a throwaway buffer.
        super().__init__(stream=io.StringIO(), min_interval=0.0)
        self.hub = hub
        self.job_id = job_id

    def job_finished(self, key, job, elapsed, cached):
        self.hub.publish(self.job_id, "unit", {
            "key": key,
            "label": job.describe() if job is not None else "",
            "elapsed_s": elapsed,
            "cached": cached,
        })
        super().job_finished(key, job, elapsed, cached)

    def _emit(self, force=False):
        self.hub.publish(self.job_id, "progress", {
            "done": self._done,
            "total": self._total,
            "cached": self._cached,
            "mean_ms": self.job_ms.mean,
            "eta_s": self._eta_seconds(),
        })


async def stream_topic(hub, topic, until=None, heartbeat=15.0):
    """Async iterator of ``(event, data)`` for an SSE response.

    Ends when ``until`` (an optional predicate over published events)
    returns True; otherwise streams until the client disconnects (the
    server cancels the generator).  Idle gaps longer than ``heartbeat``
    seconds emit a ``heartbeat`` frame so dead connections surface.
    """
    queue = hub.subscribe(topic)
    try:
        while True:
            try:
                event, data = await asyncio.wait_for(queue.get(),
                                                     timeout=heartbeat)
            except asyncio.TimeoutError:
                yield "heartbeat", {}
                continue
            yield event, data
            if until is not None and until(event, data):
                return
    finally:
        hub.unsubscribe(topic, queue)
