"""The persistent worker fleet behind the job service.

One spawn-based ``ProcessPoolExecutor`` outlives every job: units are
submitted as :func:`repro.harness.sweep._execute_job` calls (exactly what
the sweep engine's pool runs), and the returned payloads are JSON-safe so
they flow straight into the shared result cache.

Crash handling: a worker that dies hard (segfault, OOM-kill) breaks the
whole pool — ``BrokenProcessPool`` — so the fleet rebuilds the pool and
retries the unit with exponential backoff, up to ``max_retries`` times.
Deterministic failures (the simulation itself raised; ``_execute_job``
captured the traceback) are *not* retried — rerunning a deterministic
simulation reproduces the same error — and surface as
:class:`~repro.harness.sweep.SweepError`, the same capture the sweep
engine uses.

``workers=0`` selects *inline* mode: units run on the event loop's
default thread executor instead of child processes.  That keeps
unit-tests fast (no spawn re-import) and, because simulations are pure
functions, results are identical.
"""

import asyncio
import threading

from ..harness.sweep import SweepError, _execute_job


def traced_sim_runner(job):
    """Worker-side runner for ``trace: true`` sim jobs (module-level so it
    pickles by reference).  Returns the normal sweep payload plus a
    ``trace`` field holding the Perfetto/Chrome JSON document, which the
    service serves at ``/traces/<key>`` and the dashboard links."""
    from ..harness.runner import run_app
    from ..harness.sweep import _payload_from_run
    from ..obs import TraceConfig, Tracer, to_perfetto

    tracer = Tracer(TraceConfig(capture_messages=False))
    run = run_app(job.app, job.config, num_cpus=job.num_cpus, seed=job.seed,
                  scale=job.scale, check_coherence=job.check_coherence,
                  chaos=job.chaos, trace=tracer)
    payload = dict(_payload_from_run(run))
    payload["trace"] = to_perfetto(tracer)
    return payload


class WorkerFleet:
    """A persistent pool executing work units for the service.

    ``workers`` > 0 is the process-fleet width; 0 runs units inline on
    threads (tests, tiny deployments).  ``execute`` returns the unit's
    JSON-safe payload or raises :class:`SweepError`.
    """

    def __init__(self, workers=2, mp_context="spawn", max_retries=2,
                 retry_base=0.25):
        self.workers = workers
        self.mp_context = mp_context
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.running = 0            # units currently executing
        self.crashes = 0            # BrokenProcessPool events observed
        self.retries = 0            # retry attempts made after crashes
        self._pool = None
        self._generation = 0
        self._lock = threading.Lock()

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing
                from concurrent import futures

                context = multiprocessing.get_context(self.mp_context)
                self._pool = futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context)
            return self._pool, self._generation

    def _rebuild_pool(self, failed_generation):
        """Replace the broken pool (first caller wins; racers no-op)."""
        with self._lock:
            if self._generation != failed_generation:
                return  # a racing unit already rebuilt it
            pool, self._pool = self._pool, None
            self._generation += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self):
        with self._lock:
            pool, self._pool = self._pool, None
            self._generation += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- execution ----------------------------------------------------------

    async def execute(self, unit):
        """Run one unit to a payload; retries pool crashes with backoff."""
        from concurrent.futures.process import BrokenProcessPool

        attempt = 0
        self.running += 1
        try:
            while True:
                generation = None
                try:
                    if self.workers == 0:
                        status, payload = await asyncio.to_thread(
                            _execute_job, unit.job, unit.runner)
                    else:
                        pool, generation = self._ensure_pool()
                        future = pool.submit(_execute_job, unit.job,
                                             unit.runner)
                        status, payload = await asyncio.wrap_future(future)
                except BrokenProcessPool:
                    self.crashes += 1
                    if generation is not None:
                        self._rebuild_pool(generation)
                    if attempt >= self.max_retries:
                        raise SweepError(
                            unit.key, unit.job,
                            "worker process died (pool broken); gave up "
                            "after %d retries" % attempt)
                    self.retries += 1
                    await asyncio.sleep(self.retry_base * (2 ** attempt))
                    attempt += 1
                    continue
                if status != "ok":
                    # Deterministic failure: the traceback is the capture.
                    raise SweepError(unit.key, unit.job, payload)
                return payload
        finally:
            self.running -= 1

    def utilization(self):
        """Running units / fleet width (inline mode reports running)."""
        if self.workers <= 0:
            return float(self.running)
        return self.running / float(self.workers)
