"""A minimal asyncio HTTP/1.1 server on stdlib streams.

The serving layer needs exactly four response shapes — JSON documents,
HTML pages, 4xx/5xx errors and Server-Sent Event streams — so this is a
deliberately small framework: a request parser over
``asyncio.start_server``, a pattern router (``/jobs/<id>`` style), and
three response classes.  No external dependencies, no chunked uploads,
no keep-alive (every response closes the connection; SSE responses stay
open until the event source ends or the client disconnects).
"""

import asyncio
import json
import urllib.parse

#: Reject request bodies beyond this (a sweep spec is a few KB).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reject header sections beyond this.
MAX_HEADER_BYTES = 64 * 1024

REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class HTTPError(Exception):
    """Raise inside a handler to produce a structured JSON error."""

    def __init__(self, status, message):
        self.status = status
        self.message = message
        super().__init__("%d: %s" % (status, message))


class Request:
    """One parsed HTTP request."""

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query          # dict of first-value query params
        self.headers = headers      # dict, lower-cased keys
        self.body = body            # bytes

    def json(self):
        if not self.body:
            raise HTTPError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as err:
            raise HTTPError(400, "bad JSON body: %s" % err)

    @property
    def client(self):
        """Client identity: the X-Client header (default ``anonymous``)."""
        return self.headers.get("x-client", "anonymous")


class Response:
    """A complete in-memory response."""

    def __init__(self, body=b"", status=200, content_type="text/plain"):
        if isinstance(body, str):
            body = body.encode("utf-8")
        self.body = body
        self.status = status
        self.content_type = content_type


def json_response(obj, status=200):
    return Response(json.dumps(obj, indent=2, sort_keys=True) + "\n",
                    status=status, content_type="application/json")


def html_response(text, status=200):
    return Response(text, status=status,
                    content_type="text/html; charset=utf-8")


class SSEResponse:
    """A Server-Sent Events stream.

    ``source`` is an async iterator of ``(event, data)`` pairs; ``data``
    is JSON-encoded per event.  The stream ends when the iterator is
    exhausted or the client goes away.
    """

    def __init__(self, source):
        self.source = source


def sse_encode(event, data):
    """One SSE frame: ``event:``/``data:`` lines plus the blank separator."""
    payload = json.dumps(data, sort_keys=True)
    return ("event: %s\ndata: %s\n\n" % (event, payload)).encode("utf-8")


class Router:
    """Method + path-pattern dispatch.

    Patterns are literal segments or ``<name>`` captures:
    ``/jobs/<id>/events`` matches ``/jobs/42/events`` with
    ``{"id": "42"}``.
    """

    def __init__(self):
        self._routes = []  # (method, [segments], handler)

    def add(self, method, pattern, handler):
        segments = [s for s in pattern.split("/") if s]
        self._routes.append((method.upper(), segments, handler))

    def resolve(self, method, path):
        """(handler, params) for the request, raising 404/405."""
        segments = [s for s in path.split("/") if s]
        path_exists = False
        for route_method, route_segments, handler in self._routes:
            params = _match(route_segments, segments)
            if params is None:
                continue
            path_exists = True
            if route_method == method.upper():
                return handler, params
        if path_exists:
            raise HTTPError(405, "method %s not allowed on %s"
                            % (method, path))
        raise HTTPError(404, "no such resource: %s" % path)


def _match(route_segments, segments):
    if len(route_segments) != len(segments):
        return None
    params = {}
    for route_segment, segment in zip(route_segments, segments):
        if route_segment.startswith("<") and route_segment.endswith(">"):
            params[route_segment[1:-1]] = urllib.parse.unquote(segment)
        elif route_segment != segment:
            return None
    return params


async def _read_request(reader):
    header_blob = await reader.readuntil(b"\r\n\r\n")
    if len(header_blob) > MAX_HEADER_BYTES:
        raise HTTPError(400, "header section too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise HTTPError(400, "malformed request line %r" % lines[0])
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HTTPError(400, "request body too large")
    body = await reader.readexactly(length) if length else b""
    parsed = urllib.parse.urlsplit(target)
    query = {name: values[0] for name, values
             in urllib.parse.parse_qs(parsed.query).items()}
    return Request(method, parsed.path, query, headers, body)


class HTTPServer:
    """Serve a :class:`Router` over asyncio streams."""

    def __init__(self, router, host="127.0.0.1", port=0):
        self.router = router
        self.host = host
        self.port = port            # updated to the bound port on start
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self):
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                request = await _read_request(reader)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError):
                return
            await self._respond(request, writer)
        except HTTPError as err:
            await self._write_response(writer, json_response(
                {"error": err.message}, status=err.status))
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as err:  # a handler bug: report, don't crash serve
            try:
                await self._write_response(writer, json_response(
                    {"error": "internal error: %s" % err}, status=500))
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request, writer):
        handler, params = self.router.resolve(request.method, request.path)
        result = handler(request, **params)
        if asyncio.iscoroutine(result):
            result = await result
        if isinstance(result, SSEResponse):
            await self._write_sse(writer, result)
        else:
            await self._write_response(writer, result)

    async def _write_response(self, writer, response):
        reason = REASONS.get(response.status, "Unknown")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n"
                "\r\n" % (response.status, reason, response.content_type,
                          len(response.body)))
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    async def _write_sse(self, writer, response):
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n"
                "\r\n")
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for event, data in response.source:
            writer.write(sse_encode(event, data))
            await writer.drain()
