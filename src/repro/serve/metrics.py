"""Service-level metrics: the numbers behind ``GET /metrics``.

Latency distributions ride the obs subsystem's streaming
:class:`~repro.obs.metrics.Histogram` (milliseconds, exponential
buckets), so p50/p95 come from the same machinery that summarises miss
latency inside the simulator.  Counters are plain ints; the cache's
hit/miss/eviction counters are read straight off the shared
:class:`~repro.harness.sweep.ResultCache`.
"""

import time

from ..obs.metrics import Histogram, exponential_bounds

#: 1ms .. ~2.3h, the same span the sweep progress reporter uses.
LATENCY_BOUNDS = exponential_bounds(1, 2, 24)


class ServiceMetrics:
    """Everything the ``/metrics`` endpoint reports."""

    def __init__(self):
        self.started = time.monotonic()
        self.job_latency_ms = Histogram(LATENCY_BOUNDS)
        self.unit_latency_ms = Histogram(LATENCY_BOUNDS)
        self.jobs_accepted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.units_total = 0
        self.units_executed = 0
        self.units_cached = 0       # served from the on-disk cache
        self.units_shared = 0       # coalesced onto an in-flight execution
        self.units_failed = 0
        self.requests = 0

    def record_job(self, elapsed_s, failed=False, cancelled=False):
        self.job_latency_ms.record(max(1, int(elapsed_s * 1000)))
        if cancelled:
            self.jobs_cancelled += 1
        elif failed:
            self.jobs_failed += 1
        else:
            self.jobs_completed += 1

    def record_unit(self, elapsed_s):
        self.unit_latency_ms.record(max(1, int(elapsed_s * 1000)))

    def snapshot(self, service):
        """The JSON document ``GET /metrics`` serves."""
        fleet = service.fleet
        cache_stats = service.cache.stats() if service.cache else {}
        queued = sum(1 for job in service.jobs.values()
                     if job.state == "queued")
        running = sum(1 for job in service.jobs.values()
                      if job.state == "running")
        return {
            "uptime_s": time.monotonic() - self.started,
            "requests": self.requests,
            "queue": {
                "queued_jobs": queued,
                "running_jobs": running,
                "depth": queued + running,
            },
            "jobs": {
                "accepted": self.jobs_accepted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
            },
            "units": {
                "total": self.units_total,
                "executed": self.units_executed,
                "cached": self.units_cached,
                "shared_inflight": self.units_shared,
                "failed": self.units_failed,
            },
            "cache": cache_stats,
            "workers": {
                "fleet": fleet.workers,
                "running_units": fleet.running,
                "utilization": fleet.utilization(),
                "crashes": fleet.crashes,
                "retries": fleet.retries,
            },
            "latency_ms": {
                "job": dict(self.job_latency_ms.quantiles((0.5, 0.95)),
                            count=self.job_latency_ms.count,
                            mean=self.job_latency_ms.mean),
                "unit": dict(self.unit_latency_ms.quantiles((0.5, 0.95)),
                             count=self.unit_latency_ms.count,
                             mean=self.unit_latency_ms.mean),
            },
            "events_published": service.hub.published,
        }
