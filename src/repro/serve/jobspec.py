"""Job-spec validation: client JSON -> content-addressed work units.

A service job arrives as one JSON document and expands into *units*, each
a :class:`~repro.harness.sweep.SweepJob` plus an optional custom runner,
keyed by :func:`~repro.harness.sweep.job_key` — the same content hashes
the sweep engine and its cache use, which is what makes cross-client
dedupe and cache sharing fall out for free.

Three kinds are accepted::

    {"kind": "sim",   "app": "em3d", "system": "base", ...}
    {"kind": "sweep", "apps": ["em3d", "lu"], "systems": ["base", ...]}
    {"kind": "fuzz",  "seeds": [0, 1, 2]}  # or seed_start + count

``system`` names a paper preset (:data:`repro.common.params.EVALUATED_SYSTEMS`
or a serve alias), ``config`` embeds a full
:func:`~repro.common.params.config_to_dict` document; sim specs may also
set ``trace: true`` to record a Perfetto trace alongside the result.
Every validation failure raises :class:`SpecError` with a message naming
the offending field — the API layer maps it to a 400.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..common import params
from ..harness.sweep import SweepJob, job_key
from ..workloads import application_names

#: Friendly preset aliases (mirrors the trace CLI's).
SYSTEM_ALIASES = {
    "pc": "dele32_rac32k",
    "enhanced": "dele32_rac32k",
    "baseline": "base",
}

#: Per-request unit ceiling: one spec may not expand beyond this.
MAX_UNITS = 4096

KINDS = ("sim", "sweep", "fuzz")


class SpecError(ValueError):
    """A job spec failed validation (maps to HTTP 400)."""


@dataclass
class WorkUnit:
    """One executable simulation inside a service job."""

    key: str                      # job_key(job, runner): the cache identity
    job: SweepJob
    runner: Optional[Callable] = None   # module-level custom runner or None
    label: str = ""


@dataclass
class JobSpec:
    """A validated job: its kind and the expanded unit list."""

    kind: str
    units: List[WorkUnit] = field(default_factory=list)
    raw: dict = field(default_factory=dict)


def _require(doc, name, types, required=False):
    value = doc.get(name)
    if value is None and not required:
        return None
    if value is None:
        raise SpecError("missing required field %r" % name)
    if not isinstance(value, types):
        raise SpecError("field %r must be %s, got %r"
                        % (name, getattr(types, "__name__", types), value))
    return value


def resolve_config(doc):
    """A ``SystemConfig`` from a spec's ``system`` / ``config`` fields."""
    preset = doc.get("system")
    embedded = doc.get("config")
    if preset is not None and embedded is not None:
        raise SpecError("give either 'system' or 'config', not both")
    if embedded is not None:
        if not isinstance(embedded, dict):
            raise SpecError("'config' must be a config_to_dict document")
        try:
            return params.config_from_dict(embedded)
        except (KeyError, TypeError, ValueError) as err:
            raise SpecError("bad 'config' document: %s" % err)
    if preset is None:
        preset = "base"
    if not isinstance(preset, str):
        raise SpecError("'system' must be a preset name")
    name = SYSTEM_ALIASES.get(preset, preset)
    factory = params.EVALUATED_SYSTEMS.get(name)
    if factory is None:
        raise SpecError("unknown system %r (have: %s)"
                        % (preset, ", ".join(sorted(
                            set(params.EVALUATED_SYSTEMS)
                            | set(SYSTEM_ALIASES)))))
    overrides = {}
    nodes = doc.get("nodes")
    if nodes is not None:
        if not isinstance(nodes, int) or nodes < 2:
            raise SpecError("'nodes' must be an int >= 2")
        overrides["num_nodes"] = nodes
    return factory(**overrides)


def _common_numbers(doc):
    seed = doc.get("seed", 12345)
    scale = doc.get("scale", 1.0)
    if not isinstance(seed, int):
        raise SpecError("'seed' must be an int")
    if not isinstance(scale, (int, float)) or not 0 < scale <= 4.0:
        raise SpecError("'scale' must be a number in (0, 4]")
    return seed, float(scale)


def _sim_units(doc):
    from .workers import traced_sim_runner

    app = doc.get("app")
    if app not in application_names():
        raise SpecError("unknown app %r (have: %s)"
                        % (app, ", ".join(application_names())))
    config = resolve_config(doc)
    seed, scale = _common_numbers(doc)
    num_cpus = doc.get("num_cpus")
    if num_cpus is not None and (not isinstance(num_cpus, int)
                                 or num_cpus < 1):
        raise SpecError("'num_cpus' must be a positive int")
    check = doc.get("check_coherence", True)
    if not isinstance(check, bool):
        raise SpecError("'check_coherence' must be a bool")
    trace = doc.get("trace", False)
    if not isinstance(trace, bool):
        raise SpecError("'trace' must be a bool")
    job = SweepJob(app=app, config=config, seed=seed, scale=scale,
                   num_cpus=num_cpus, check_coherence=check)
    runner = traced_sim_runner if trace else None
    return [WorkUnit(key=job_key(job, runner), job=job, runner=runner,
                     label=job.describe())]


def _sweep_units(doc):
    apps = _require(doc, "apps", list, required=True)
    systems = doc.get("systems")
    if systems is None:
        systems = list(params.EVALUATED_SYSTEMS)
    if not isinstance(systems, list) or not systems:
        raise SpecError("'systems' must be a non-empty list of presets")
    if not apps:
        raise SpecError("'apps' must be a non-empty list")
    seed, scale = _common_numbers(doc)
    check = doc.get("check_coherence", True)
    if not isinstance(check, bool):
        raise SpecError("'check_coherence' must be a bool")
    units = []
    for app in apps:
        if app not in application_names():
            raise SpecError("unknown app %r" % app)
        for system in systems:
            config = resolve_config({"system": system,
                                     "nodes": doc.get("nodes")})
            job = SweepJob(app=app, config=config, seed=seed, scale=scale,
                           check_coherence=check)
            units.append(WorkUnit(key=job_key(job), job=job,
                                  label="%s/%s" % (app, system)))
    return units


def _fuzz_units(doc):
    from ..fuzz.runner import run_seed_payload
    from ..fuzz.scenarios import FuzzScenario

    seeds = doc.get("seeds")
    if seeds is None:
        start = doc.get("seed_start", 0)
        count = doc.get("count")
        if not isinstance(start, int) or not isinstance(count, int) \
                or count < 1:
            raise SpecError("fuzz needs 'seeds' or 'seed_start' + 'count'")
        seeds = list(range(start, start + count))
    if not isinstance(seeds, list) or not seeds \
            or not all(isinstance(s, int) for s in seeds):
        raise SpecError("'seeds' must be a non-empty list of ints")
    _, scale = _common_numbers(doc)
    units = []
    for seed in seeds:
        scenario = FuzzScenario.from_seed(seed, scale=scale)
        job = SweepJob(app="fuzz", config=scenario.config, seed=seed,
                       scale=scale, chaos=scenario.chaos)
        units.append(WorkUnit(key=job_key(job, run_seed_payload), job=job,
                              runner=run_seed_payload,
                              label="fuzz seed %d" % seed))
    return units


_EXPANDERS = {"sim": _sim_units, "sweep": _sweep_units, "fuzz": _fuzz_units}


def parse_job(doc):
    """Validate one job document into a :class:`JobSpec` (or SpecError)."""
    if not isinstance(doc, dict):
        raise SpecError("job spec must be a JSON object")
    kind = doc.get("kind")
    if kind not in KINDS:
        raise SpecError("'kind' must be one of %s, got %r"
                        % ("/".join(KINDS), kind))
    units = _EXPANDERS[kind](doc)
    if len(units) > MAX_UNITS:
        raise SpecError("spec expands to %d units (max %d)"
                        % (len(units), MAX_UNITS))
    return JobSpec(kind=kind, units=units, raw=doc)
