"""HTTP API: routes binding the job service to the asyncio server.

Endpoints (all JSON unless noted)::

    GET    /                  the HTML dashboard
    GET    /healthz           liveness probe
    POST   /jobs              submit a job spec     -> 202 + job document
    GET    /jobs              list jobs (newest first)
    GET    /jobs/<id>         one job, with per-unit detail
    DELETE /jobs/<id>         request cancellation
    GET    /jobs/<id>/events  SSE progress stream (ends when the job does)
    GET    /events            global SSE stream (dashboard feed)
    GET    /results/<key>     cached payload for a content key
    GET    /traces/<key>      Perfetto trace of a traced sim result
    GET    /metrics           queue/cache/worker/latency metrics

Clients self-identify with the ``X-Client`` header (concurrency budgets
are per client); anything unidentified shares the ``anonymous`` budget.
"""

from .dashboard import DASHBOARD_HTML
from .events import stream_topic
from .http import (
    HTTPError,
    HTTPServer,
    Router,
    SSEResponse,
    html_response,
    json_response,
)
from .jobspec import SpecError

TERMINAL_STATES = ("done", "failed", "cancelled")


def build_router(service):
    router = Router()

    def counted(handler):
        def wrapped(request, **params):
            service.metrics.requests += 1
            return handler(request, **params)
        return wrapped

    def route(method, pattern, handler):
        router.add(method, pattern, counted(handler))

    def dashboard(request):
        return html_response(DASHBOARD_HTML)

    def healthz(request):
        return json_response({"ok": True})

    def post_job(request):
        doc = request.json()
        try:
            job = service.submit(doc, client=request.client)
        except SpecError as err:
            raise HTTPError(400, str(err))
        return json_response(job.to_dict(), status=202)

    def list_jobs(request):
        return json_response({"jobs": service.list_jobs()})

    def get_job(request, id):
        job = service.get_job(id)
        if job is None:
            raise HTTPError(404, "no such job: %s" % id)
        return json_response(job.to_dict())

    def delete_job(request, id):
        job = service.cancel_job(id)
        if job is None:
            raise HTTPError(404, "no such job: %s" % id)
        return json_response(job.to_dict(verbose=False))

    def job_events(request, id):
        job = service.get_job(id)
        if job is None:
            raise HTTPError(404, "no such job: %s" % id)

        def finished(event, data):
            return event == "job" and data.get("state") in TERMINAL_STATES

        if job.state in TERMINAL_STATES:
            # Already settled: replay the terminal state and end.
            async def replay():
                yield "job", dict(job.to_dict(verbose=False),
                                  job_id=job.id, event="job")
            return SSEResponse(replay())
        return SSEResponse(stream_topic(service.hub, id, until=finished))

    def global_events(request):
        return SSEResponse(stream_topic(service.hub, "*"))

    def get_result(request, key):
        payload = service.result(key)
        if payload is None:
            raise HTTPError(404, "no cached result for key %s" % key)
        return json_response({"key": key, "result": payload})

    def get_trace(request, key):
        payload = service.result(key)
        if payload is None:
            raise HTTPError(404, "no cached result for key %s" % key)
        trace = payload.get("trace") if isinstance(payload, dict) else None
        if trace is None:
            raise HTTPError(404, "result %s has no trace (submit the sim "
                                 "with \"trace\": true)" % key)
        return json_response(trace)

    def get_metrics(request):
        return json_response(service.metrics.snapshot(service))

    route("GET", "/", dashboard)
    route("GET", "/healthz", healthz)
    route("POST", "/jobs", post_job)
    route("GET", "/jobs", list_jobs)
    route("GET", "/jobs/<id>", get_job)
    route("DELETE", "/jobs/<id>", delete_job)
    route("GET", "/jobs/<id>/events", job_events)
    route("GET", "/events", global_events)
    route("GET", "/results/<key>", get_result)
    route("GET", "/traces/<key>", get_trace)
    route("GET", "/metrics", get_metrics)
    return router


def build_server(service, host=None, port=None):
    """An :class:`~repro.serve.http.HTTPServer` for the service."""
    config = service.config
    return HTTPServer(build_router(service),
                      host=host if host is not None else config.host,
                      port=port if port is not None else config.port)


async def serve(service, ready=None):
    """Run the service until cancelled; awaits forever.

    ``ready`` is an optional callback invoked with the bound port once
    the listener is up (the CLI prints it; tests grab it).
    """
    server = build_server(service)
    port = await server.start()
    if ready is not None:
        ready(port)
    try:
        await server.serve_forever()
    finally:
        await server.close()
        await service.shutdown()
