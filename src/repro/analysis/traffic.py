"""Traffic decomposition: where the bytes and messages go.

The evaluation's top-line "network messages" number hides the interesting
structure: how much is demand traffic (requests + data replies), how much
is coherence overhead (invalidations, interventions, acks), how much is
speculation (updates), and how much is flow-control noise (NACKs/retries).
This module classifies per-type message counters into those groups — the
breakdown behind statements like "NACK messages caused by this reload
flurry phenomenon represent a nontrivial percentage of network traffic".
"""

from dataclasses import dataclass

from ..network.message import MsgType

#: Message-type label -> traffic class.
CLASSES = {
    "GETS": "demand", "GETX": "demand",
    "DATA_SHARED": "demand", "DATA_EXCL": "demand", "ACK_X": "demand",
    "SHARED_RESP": "demand", "EXCL_RESP": "demand",
    "INV": "coherence", "INV_ACK": "coherence",
    "INTERVENTION": "coherence", "SHARED_WB": "coherence",
    "XFER_OWNER": "coherence",
    "WRITEBACK": "writeback", "EVICT_CLEAN": "writeback",
    "WB_ACK": "writeback",
    "NACK": "flow_control", "NACK_NOT_HOME": "flow_control",
    "DELEGATE": "delegation", "UNDELE": "delegation",
    "UNDELE_REQ": "delegation", "HOME_CHANGED": "delegation",
    "UPDATE": "speculation", "UPDATE_ACK": "speculation",
}

TRAFFIC_CLASSES = ("demand", "coherence", "writeback", "flow_control",
                   "delegation", "speculation")


@dataclass(frozen=True)
class TrafficBreakdown:
    """Message and byte totals per traffic class."""

    messages: dict
    bytes: dict

    @property
    def total_messages(self):
        return sum(self.messages.values())

    @property
    def total_bytes(self):
        return sum(self.bytes.values())

    def share(self, traffic_class):
        """Fraction of all messages in the given class."""
        total = self.total_messages
        if not total:
            return 0.0
        return self.messages.get(traffic_class, 0) / total


def breakdown(stats, header_bytes=32, line_size=128):
    """Classify a run's ``msg.sent.*`` counters into a TrafficBreakdown.

    ``stats`` is the flat counter dict of a :class:`repro.sim.RunResult`.
    """
    messages = {cls: 0 for cls in TRAFFIC_CLASSES}
    byte_totals = {cls: 0 for cls in TRAFFIC_CLASSES}
    sizes = {m.label: header_bytes + (line_size if m.data_bearing else 0)
             for m in MsgType}
    for key, count in stats.items():
        if not key.startswith("msg.sent."):
            continue
        label = key[len("msg.sent."):]
        cls = CLASSES.get(label)
        if cls is None:
            raise KeyError("message type %r has no traffic class" % label)
        messages[cls] += count
        byte_totals[cls] += count * sizes[label]
    return TrafficBreakdown(messages=messages, bytes=byte_totals)


def compare_breakdowns(base, enhanced):
    """Per-class delta (enhanced minus base), in messages.

    Negative values are traffic the mechanisms removed; positive values
    (typically the ``speculation`` class) are traffic they added.
    """
    return {cls: enhanced.messages.get(cls, 0) - base.messages.get(cls, 0)
            for cls in TRAFFIC_CLASSES}
