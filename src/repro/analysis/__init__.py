"""Analysis: derived metrics, cross-run comparison, renderers, models."""

from .area import AreaBudget, area_of, equal_area_l2_bytes
from .compare import (
    arithmetic_mean,
    geometric_mean,
    headline,
    normalized_messages,
    normalized_remote_misses,
    speedup,
)
from .metrics import RunMetrics, consumer_histogram, metrics_from_result
from .model import LatencyModel, speedup_bound
from .tables import paper_vs_measured, render_series, render_table

__all__ = [
    "AreaBudget",
    "area_of",
    "equal_area_l2_bytes",
    "arithmetic_mean",
    "geometric_mean",
    "headline",
    "normalized_messages",
    "normalized_remote_misses",
    "speedup",
    "RunMetrics",
    "consumer_histogram",
    "metrics_from_result",
    "LatencyModel",
    "speedup_bound",
    "paper_vs_measured",
    "render_series",
    "render_table",
]

from .ascii_charts import bar_chart, grouped_bar_chart, speedup_figure

__all__ += ["bar_chart", "grouped_bar_chart", "speedup_figure"]
