"""Cross-run comparison: the normalisations Figure 7 and the headline use.

All paper results are reported relative to the baseline system: speedup =
T_base / T_enhanced, and network messages / remote misses normalised to the
baseline's count.  Means follow the paper's §3.2 convention: geometric for
speedups, arithmetic for traffic and remote-miss reductions.
"""

import math


def speedup(base_metrics, enhanced_metrics):
    """Execution-time speedup of enhanced over base (>1 means faster)."""
    return base_metrics.cycles / enhanced_metrics.cycles


def normalized_messages(base_metrics, enhanced_metrics):
    """Network messages relative to baseline (<1 means less traffic)."""
    if not base_metrics.messages:
        return 1.0
    return enhanced_metrics.messages / base_metrics.messages


def normalized_remote_misses(base_metrics, enhanced_metrics):
    """Remote misses relative to baseline (<1 means fewer)."""
    if not base_metrics.remote_misses:
        return 1.0
    return enhanced_metrics.remote_misses / base_metrics.remote_misses


def geometric_mean(values):
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values):
    values = list(values)
    if not values:
        raise ValueError("arithmetic mean of no values")
    return sum(values) / len(values)


def headline(per_app_base, per_app_enhanced):
    """The paper's summary triple over a set of applications.

    Returns ``(geomean speedup, mean traffic reduction, mean remote-miss
    reduction)`` with reductions expressed as fractions (0.15 = 15% less).
    """
    apps = sorted(per_app_base)
    if sorted(per_app_enhanced) != apps:
        raise ValueError("application sets differ between configurations")
    speedups = [speedup(per_app_base[a], per_app_enhanced[a]) for a in apps]
    traffic = [normalized_messages(per_app_base[a], per_app_enhanced[a])
               for a in apps]
    misses = [normalized_remote_misses(per_app_base[a], per_app_enhanced[a])
              for a in apps]
    return (geometric_mean(speedups),
            1.0 - arithmetic_mean(traffic),
            1.0 - arithmetic_mean(misses))
