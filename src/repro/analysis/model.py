"""The paper's §5 analytical speedup-bound model.

The conclusion sketches a simple analytical result: *"as network latency
grows, the achievable speedup is limited to 1/(1-accuracy)"*, where
accuracy is the fraction of consumer read misses the update mechanism
successfully converts to local hits.  This module implements that model
and a slightly richer latency-decomposition variant used by the ablation
benches to sanity-check measured speedups.

Derivation of the bound: let every consumer read cost ``R`` cycles remote
and ``~0`` local, and let ``a`` be update accuracy.  With compute ``C``
per read, the enhanced/base time ratio is ``(C + (1-a)R) / (C + R)``; as
``R -> inf`` the speedup ``(C+R)/(C+(1-a)R) -> 1/(1-a)``.
"""

from dataclasses import dataclass

from ..common.errors import ConfigError


def speedup_bound(accuracy):
    """The asymptotic speedup limit 1/(1-accuracy) from the paper's §5."""
    if not 0.0 <= accuracy < 1.0:
        raise ConfigError("accuracy must be in [0, 1), got %r" % accuracy)
    return 1.0 / (1.0 - accuracy)


@dataclass(frozen=True)
class LatencyModel:
    """A small analytical model of one app's remote-miss economics.

    ``compute_per_miss``: average compute cycles between remote misses.
    ``remote_latency``: average remote miss penalty (2-3 hops + DRAM).
    ``local_latency``: penalty of a converted (RAC-hit) miss.
    """

    compute_per_miss: float
    remote_latency: float
    local_latency: float = 20.0

    def predicted_speedup(self, accuracy):
        """Expected speedup when ``accuracy`` of misses become local."""
        if not 0.0 <= accuracy <= 1.0:
            raise ConfigError("accuracy must be in [0, 1], got %r" % accuracy)
        base = self.compute_per_miss + self.remote_latency
        enhanced = (self.compute_per_miss
                    + (1.0 - accuracy) * self.remote_latency
                    + accuracy * self.local_latency)
        return base / enhanced

    def asymptotic_speedup(self, accuracy):
        """Limit as remote latency dominates: the paper's 1/(1-a) bound."""
        return speedup_bound(accuracy)

    def speedup_vs_latency(self, accuracy, latencies):
        """Series of (remote_latency, speedup) showing convergence to the
        1/(1-a) bound as network latency grows (Figure 10's trend)."""
        series = []
        for latency in latencies:
            model = LatencyModel(self.compute_per_miss, latency,
                                 self.local_latency)
            series.append((latency, model.predicted_speedup(accuracy)))
        return series
