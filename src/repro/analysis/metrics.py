"""Derived metrics over one simulation's raw counters."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunMetrics:
    """The evaluation-facing view of one run (one app on one system)."""

    cycles: int
    local_misses: int
    remote_2hop: int
    remote_3hop: int
    messages: int
    bytes: int
    nacks: int
    updates_sent: int
    updates_consumed: int
    updates_wasted: int
    delegations: int
    undelegations: int
    rac_update_hits: int

    @property
    def remote_misses(self):
        return self.remote_2hop + self.remote_3hop

    @property
    def total_misses(self):
        return self.local_misses + self.remote_misses

    @property
    def update_accuracy(self):
        """Fraction of pushed updates that were actually consumed."""
        if not self.updates_sent:
            return 0.0
        return self.updates_consumed / self.updates_sent


def metrics_from_result(result):
    """Extract :class:`RunMetrics` from a :class:`repro.sim.RunResult`."""
    stats = result.stats

    def total(prefix):
        return sum(v for k, v in stats.items() if k.startswith(prefix))

    return RunMetrics(
        cycles=result.cycles,
        local_misses=stats.get("miss.local", 0),
        remote_2hop=stats.get("miss.remote_2hop", 0),
        remote_3hop=stats.get("miss.remote_3hop", 0),
        messages=total("msg.sent."),
        bytes=stats.get("msg.bytes", 0),
        nacks=stats.get("protocol.nack", 0),
        updates_sent=stats.get("update.sent", 0),
        updates_consumed=stats.get("update.consumed", 0),
        updates_wasted=stats.get("update.wasted", 0),
        delegations=stats.get("dele.delegate", 0),
        undelegations=total("dele.undelegate."),
        rac_update_hits=stats.get("hit.rac_update", 0),
    )


def consumer_histogram(result):
    """Table 3 data: consumer-count bucket -> share (%) of PC patterns."""
    buckets = ("1", "2", "3", "4", "4+")
    counts = {b: result.stats.get("detector.consumers.%s" % b, 0)
              for b in buckets}
    total = sum(counts.values())
    if not total:
        return {b: 0.0 for b in buckets}
    return {b: 100.0 * counts[b] / total for b in buckets}
