"""ASCII renderers for the tables and figure-series the harness prints.

The benchmark harness regenerates each paper artefact as rows of numbers;
these helpers format them the way the paper lays them out, so bench output
can be compared to the paper side by side.
"""


def render_table(headers, rows, title=None, float_fmt="%.3f"):
    """Render a list-of-lists as a fixed-width ASCII table."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt % cell
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title, xlabel, series):
    """Render figure data: ``series`` maps a label to [(x, y), ...]."""
    lines = [title]
    for label, points in series.items():
        lines.append("  %s:" % label)
        for x, y in points:
            lines.append("    %-12s %s" % (x, "%.4f" % y if isinstance(y, float) else y))
    lines.append("  (x axis: %s)" % xlabel)
    return "\n".join(lines)


def paper_vs_measured(rows, title):
    """Render (label, paper value, measured value) rows with deltas."""
    table_rows = []
    for label, paper, measured in rows:
        delta = measured - paper
        table_rows.append([label, paper, measured, "%+.3f" % delta])
    return render_table(["metric", "paper", "measured", "delta"],
                        table_rows, title=title)
