"""ASCII bar charts for figure-shaped results.

The paper's figures are grouped bar charts; these helpers render the
regenerated data in that shape directly in the terminal, so bench output
can be eyeballed against the paper's figures without plotting tools.
"""

from ..common.errors import ConfigError

FULL = "#"
EMPTY = " "


def hbar(value, vmax, width=40, char=FULL):
    """A horizontal bar of ``width`` cells scaled to ``value``/``vmax``."""
    if vmax <= 0:
        raise ConfigError("bar scale must be positive")
    cells = int(round(width * min(max(value, 0.0), vmax) / vmax))
    return char * cells + EMPTY * (width - cells)


def bar_chart(series, title=None, width=40, vmax=None, fmt="%.3f"):
    """Render labelled values as horizontal bars.

    ``series`` is a list of (label, value) pairs (or a dict).  ``vmax``
    defaults to the data maximum, so the longest bar always fills the
    width.
    """
    if isinstance(series, dict):
        series = list(series.items())
    if not series:
        raise ConfigError("nothing to chart")
    values = [v for _l, v in series]
    scale = vmax if vmax is not None else max(values)
    if scale <= 0:
        scale = 1.0
    label_width = max(len(str(label)) for label, _v in series)
    lines = []
    if title:
        lines.append(title)
    for label, value in series:
        lines.append("%s |%s| %s" % (str(label).rjust(label_width),
                                     hbar(value, scale, width),
                                     fmt % value))
    return "\n".join(lines)


def grouped_bar_chart(groups, title=None, width=32, vmax=None, fmt="%.3f"):
    """Figure-7-style grouped bars.

    ``groups`` maps a group label (e.g. an app) to a list of
    (series label, value) pairs (e.g. the six system configurations).
    """
    if not groups:
        raise ConfigError("nothing to chart")
    all_values = [v for rows in groups.values() for _l, v in rows]
    scale = vmax if vmax is not None else max(all_values)
    if scale <= 0:
        scale = 1.0
    series_width = max(len(str(label))
                       for rows in groups.values() for label, _v in rows)
    lines = []
    if title:
        lines.append(title)
    for group, rows in groups.items():
        lines.append(str(group))
        for label, value in rows:
            lines.append("  %s |%s| %s" % (str(label).rjust(series_width),
                                           hbar(value, scale, width),
                                           fmt % value))
    return "\n".join(lines)


def speedup_figure(speedups, systems=None, title="speedup", width=32):
    """Render Figure 7's speedup panel from the experiment output
    (``{app: {system: value}}``)."""
    groups = {}
    for app, row in speedups.items():
        names = systems if systems is not None else list(row)
        groups[app] = [(name, row[name]) for name in names]
    return grouped_bar_chart(groups, title=title, width=width)
