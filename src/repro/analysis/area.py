"""Hardware area accounting (paper §3.3.1 and Figure 3).

The paper estimates the per-node SRAM cost of its mechanisms at "roughly
40KB ... plus a small amount of control logic and wire area" for the small
configuration:

* a 32-entry delegate cache — 10-byte producer entries + 6-byte consumer
  entries ("A 32-entry delegate table requires 320 bytes");
* the directory-cache detector extension — 8 bits per entry (4-bit last
  writer + 2-bit reader count + 2-bit write-repeat), 8 KB for an
  8192-entry directory cache;
* the 32 KB RAC itself (data + tags).

This module reproduces that arithmetic from a :class:`SystemConfig`, so
the Figure 8 equal-silicon comparison can derive its L2 size instead of
hard-coding it, and so configuration sweeps can report their area budget.
"""

from dataclasses import dataclass

from ..common.params import SystemConfig

#: Field widths from Figure 3, in bits.
VALID_BIT = 1
TAG_BITS = 37
OWNER_BITS_MIN = 4          # consumer entry: identity of the new home
OWNER_BITS_MAX = 8
AGE_BITS = 2
DIR_ENTRY_BITS = 32         # the delegated DirEntry payload

#: Detector extension per directory-cache entry (paper §2.2): 4-bit last
#: writer + 2-bit reader count + 2-bit write-repeat counter.  The paper's
#: value for its 16-node machine; bigger machines widen the last-writer
#: field, which :func:`detector_bits_per_entry` accounts for.
DETECTOR_BITS_PER_ENTRY = 8


def detector_bits_per_entry(config):
    """Detector bits per directory-cache entry for ``config``'s machine.

    Exactly :data:`DETECTOR_BITS_PER_ENTRY` (8) up to 16 nodes; beyond
    that the last-writer field grows to address every node.
    """
    return (config.last_writer_bits + config.protocol.reader_count_bits
            + config.protocol.write_repeat_bits)


def directory_vector_bytes(config):
    """Sharing-vector SRAM across the directory cache, in bytes.

    This is the storage the compressed formats trade against traffic
    (docs/scaling.md): ``bits_per_entry`` of the configured format times
    the directory-cache entry count.
    """
    from ..directory.formats import DirectoryFormat

    fmt = DirectoryFormat.parse(config.directory_format)
    bits = fmt.bits_per_entry(config.num_nodes)
    return config.directory_cache_entries * bits // 8


def producer_entry_bits():
    """Producer delegate-cache entry: 10 bytes in Figure 3.

    1 + 37 + 2 + 32 = 72 bits of fields; Figure 3 stores the entry as
    10 bytes (80 bits) — the 8-bit pad models that rounding.
    """
    return VALID_BIT + TAG_BITS + AGE_BITS + DIR_ENTRY_BITS + 8


def consumer_entry_bits():
    """Consumer delegate-cache entry: 6 bytes in Figure 3."""
    return VALID_BIT + TAG_BITS + OWNER_BITS_MAX + 2  # -> 48 bits (6 B)


@dataclass(frozen=True)
class AreaBudget:
    """Per-node SRAM cost of the paper's mechanisms, in bytes."""

    producer_table_bytes: int
    consumer_table_bytes: int
    detector_bytes: int
    rac_bytes: int

    @property
    def delegate_cache_bytes(self):
        return self.producer_table_bytes + self.consumer_table_bytes

    @property
    def total_bytes(self):
        return (self.delegate_cache_bytes + self.detector_bytes
                + self.rac_bytes)

    @property
    def total_kb(self):
        return self.total_bytes / 1024.0


def area_of(config: SystemConfig) -> AreaBudget:
    """The SRAM budget of ``config``'s extensions (zero if disabled)."""
    protocol = config.protocol
    if not protocol.enable_rac:
        return AreaBudget(0, 0, 0, 0)
    rac_bytes = config.rac.size_bytes
    if not protocol.enable_delegation:
        return AreaBudget(0, 0, 0, rac_bytes)
    entries = config.delegate.entries
    producer_bytes = entries * producer_entry_bits() // 8
    consumer_bytes = entries * consumer_entry_bits() // 8
    detector_bytes = (config.directory_cache_entries
                      * detector_bits_per_entry(config) // 8)
    return AreaBudget(
        producer_table_bytes=producer_bytes,
        consumer_table_bytes=consumer_bytes,
        detector_bytes=detector_bytes,
        rac_bytes=rac_bytes,
    )


def equal_area_l2_bytes(base_l2_bytes, config, line_size=128, assoc=4):
    """L2 size that spends the same silicon on plain cache (Figure 8).

    Returns ``base_l2_bytes`` plus the extension budget, rounded down to a
    whole number of cache sets.
    """
    budget = area_of(config).total_bytes
    set_bytes = line_size * assoc
    total = base_l2_bytes + budget
    return total - (total % set_bytes)
