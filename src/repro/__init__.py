"""repro — reproduction of "An Adaptive Cache Coherence Protocol Optimized
for Producer-Consumer Sharing" (Cheng, Carter, Dai — HPCA 2007).

The package provides:

* a message-level cc-NUMA coherence simulator (directory write-invalidate
  base protocol + the paper's detector, directory delegation and
  speculative-update mechanisms) — :mod:`repro.sim`, :mod:`repro.protocol`;
* synthetic workload generators matching the paper's seven applications'
  sharing signatures — :mod:`repro.workloads`;
* an explicit-state model checker and protocol model — :mod:`repro.mc`;
* analysis and the per-table/figure experiment harness —
  :mod:`repro.analysis`, :mod:`repro.harness`;
* transaction-level tracing, latency histograms and Perfetto export —
  :mod:`repro.obs` (see ``docs/observability.md``).

Quickstart::

    from repro import run_app, baseline, small

    base = run_app("em3d", baseline())
    enh = run_app("em3d", small())
    print("speedup:", base.metrics.cycles / enh.metrics.cycles)
"""

from .common import (
    EVALUATED_SYSTEMS,
    CacheConfig,
    ProtocolConfig,
    SystemConfig,
    baseline,
    delegation_only,
    enhanced,
    large,
    rac_only,
    small,
)
from .harness import experiments, run_app, run_matrix
from .obs import TraceConfig, Tracer
from .sim import Barrier, Compute, Read, RunResult, System, Write
from .workloads import application_names, get_workload, synthetic

try:  # single-sourced from pyproject.toml via the installed metadata
    from importlib.metadata import PackageNotFoundError, version as _version

    __version__ = _version("repro")
except PackageNotFoundError:  # running from a source tree, not installed
    __version__ = "0.0.0+unknown"
del _version, PackageNotFoundError

__all__ = [
    "EVALUATED_SYSTEMS",
    "CacheConfig",
    "ProtocolConfig",
    "SystemConfig",
    "baseline",
    "delegation_only",
    "enhanced",
    "large",
    "rac_only",
    "small",
    "experiments",
    "run_app",
    "run_matrix",
    "Barrier",
    "Compute",
    "Read",
    "RunResult",
    "System",
    "Write",
    "application_names",
    "get_workload",
    "synthetic",
    "__version__",
]
