"""Barnes — SPLASH-2 Barnes-Hut hierarchical N-body (paper Table 2/3, §3.2).

Paper problem size: 16384 bodies, seed 123.

Sharing signature (paper §3.2): the octree's internal cells are written by
their owning processor during tree rebuild and read by many processors
during force calculation, so most producer-consumer lines have *many*
consumers (61.7% have more than four — Table 3).  Communication patterns
depend on the particle distribution and drift slowly as bodies move, so
consumer sets churn a little every iteration but the pattern is stable
within a phase.  Octree cells are allocated as the tree is built, so a
cell's home node rarely matches its current producer — which is what makes
directory delegation profitable here.

Paper results: ~20% of remote misses removed by the small configuration
(17% speedup), growing to 23% speedup with the large configuration.
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"bodies": 16384, "seed": 123}

#: Table 3 row for Barnes: consumers per producer-consumer pattern (%).
CONSUMER_DISTRIBUTION = ConsumerProfile((
    (1, 13.9), (2, 6.8), (3, 9.4), (4, 8.1), (5, 61.7),
))

SPEC = PCWorkloadSpec(
    name="barnes",
    iterations=14,
    lines_per_producer=40,
    consumer_profile=CONSUMER_DISTRIBUTION,
    consumer_churn=0.08,       # particle drift slowly reshapes the octree
    home_random_prob=0.85,     # cells are rarely homed at their producer
    compute_produce=110000,
    compute_consume=110000,
    op_gap=10,
    private_lines=4,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The Barnes trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
