"""Em3D — electromagnetic wave propagation on a bipartite graph (Split-C).

Paper problem size: 38400 nodes, degree 5, 15% remote edges.

Sharing signature (paper §3.2): each graph node's value is rewritten every
timestep and read by its (up to *distribution span* = 5) graph neighbours;
with *remote links* = 15%, a sizeable set of lines has one or two remote
consumers (67.8% / 32.2%, Table 3).  Em3D is communication-dominated, and
it also exhibits the "reload flurry": after each barrier many nodes read
the same just-invalidated lines simultaneously, and the BUSY home NACKs
the stragglers — traffic that speculative updates remove almost entirely.

Paper results: the biggest winner — 33-40% speedup, ~60% coherence-traffic
reduction and 80-90% of remote misses eliminated.
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"nodes": 38400, "degree": 5, "remote_links": 0.15,
                "distribution_span": 5}

CONSUMER_DISTRIBUTION = ConsumerProfile(((1, 67.8), (2, 32.2)))

SPEC = PCWorkloadSpec(
    name="em3d",
    iterations=14,
    lines_per_producer=30,
    consumer_profile=CONSUMER_DISTRIBUTION,
    remote_share_prob=0.6,     # the rest of the graph stays node-local
    home_random_prob=0.4,      # graph nodes land away from their producer
    hot_lines=6,               # barrier-adjacent data: the reload flurry
    compute_produce=5100,
    compute_consume=4900,
    op_gap=6,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The Em3D trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
