"""Migratory sharing — the related-work pattern this paper does NOT chase.

The paper positions itself against adaptive protocols for *migratory*
sharing (Cox/Fowler and Stenström et al., its refs [10, 32]): data that a
sequence of processors each read-modify-write in turn, the classic
lock-protected-counter pattern.  The producer-consumer detector must
leave migratory lines alone — every write comes from a *different* node,
so the write-repeat counter never advances — otherwise delegation would
ping-pong with every migration.

This generator produces pure migratory traffic so that behaviour can be
tested and demonstrated: each shared line is read-then-written by each
CPU in turn, rotating around the machine every iteration.
"""

from ..common.errors import ConfigError
from ..common.rng import stream
from ..sim.trace import Barrier, Compute, Read, Write
from . import regions
from .base import LINE_STRIDE, WorkloadBuild

#: Region number for migratory lines (disjoint from the PC regions).
MIGRATORY_REGION = 66


class MigratoryWorkload:
    """Rotating read-modify-write over a set of shared lines."""

    def __init__(self, lines=8, iterations=10, compute=300, op_gap=8,
                 num_cpus=16, seed=12345, scale=1.0):
        if num_cpus < 2:
            raise ConfigError("migratory sharing needs >= 2 CPUs")
        self.lines = max(1, int(lines * scale))
        self.iterations = max(4, int(iterations * scale))
        self.compute = compute
        self.op_gap = op_gap
        self.num_cpus = num_cpus
        self.seed = seed

    def build(self):
        rng = stream(self.seed, "wl:migratory")
        ops = [[] for _ in range(self.num_cpus)]
        placements = []
        shared_lines = {}
        addrs = []
        for index in range(self.lines):
            addr = regions.region_base(MIGRATORY_REGION) + index * LINE_STRIDE
            addrs.append(addr)
            placements.append((addr, 128, rng.randrange(self.num_cpus)))
            shared_lines[addr] = -1  # no single producer, by definition
        barrier_id = 0
        for iteration in range(self.iterations):
            for cpu in range(self.num_cpus):
                if self.compute:
                    ops[cpu].append(Compute(self.compute))
                for index, addr in enumerate(addrs):
                    # Line `index` is held by CPU (iteration + index + cpu
                    # offset) — each line migrates to the next CPU each
                    # iteration; the current holder read-modify-writes it.
                    holder = (iteration + index) % self.num_cpus
                    if cpu == holder:
                        ops[cpu].append(Compute(self.op_gap))
                        ops[cpu].append(Read(addr))
                        ops[cpu].append(Write(addr))
            for cpu_ops in ops:
                cpu_ops.append(Barrier(barrier_id))
            barrier_id += 1
        return WorkloadBuild(name="migratory", per_cpu_ops=ops,
                             placements=placements,
                             shared_lines=shared_lines)


def migratory(**kwargs):
    """Convenience factory matching the other workload modules."""
    return MigratoryWorkload(**kwargs)
