"""Registry of the paper's seven benchmark applications (Table 2)."""

from . import appbt, barnes, cg, em3d, lu, mg, ocean

#: Name -> module for the seven applications, in the paper's order.
APPLICATIONS = {
    "barnes": barnes,
    "ocean": ocean,
    "em3d": em3d,
    "lu": lu,
    "cg": cg,
    "mg": mg,
    "appbt": appbt,
}


def get_workload(name, num_cpus=16, seed=12345, scale=1.0):
    """Construct the named application's trace generator."""
    try:
        module = APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            "unknown application %r; choose from %s"
            % (name, sorted(APPLICATIONS))) from None
    return module.workload(num_cpus=num_cpus, seed=seed, scale=scale)


def application_names():
    """The seven applications in the paper's presentation order."""
    return list(APPLICATIONS)
