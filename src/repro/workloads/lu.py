"""LU — NAS Parallel Benchmark: 3D Navier-Stokes via SSOR factorisation.

Paper problem size: 16x16x16 grid, 50 timesteps (OpenMP version).

Sharing signature (paper §3.2): the 2D partitioning assigns vertical
columns of the grid to processors; the SSOR wavefront makes each
processor's boundary data flow to exactly one downstream neighbour —
99.4% of producer-consumer patterns have a single consumer (Table 3).
Boundary exchange dominates: LU is the second-biggest winner (31% speedup
small config, 40% large; 26-30% traffic and 30-35% remote-miss reduction).
First-touch homes each column on its owner, so as in Ocean the gains come
from updates; unlike Ocean the compute per exchanged line is small.
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"grid": "16x16x16", "timesteps": 50}

CONSUMER_DISTRIBUTION = ConsumerProfile(((1, 99.4), (4, 0.4), (5, 0.1)))

SPEC = PCWorkloadSpec(
    name="lu",
    iterations=16,
    lines_per_producer=18,
    consumer_profile=CONSUMER_DISTRIBUTION,
    neighbor_consumers=True,   # pipelined wavefront: downstream neighbour
    home_random_prob=0.0,
    compute_produce=1300,
    compute_consume=1250,
    op_gap=8,
    private_lines=4,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The LU trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
