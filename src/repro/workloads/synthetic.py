"""A fully parametric synthetic producer-consumer workload.

Useful for exploring the mechanisms outside the seven paper applications:
pick a consumer-count profile, a home-placement policy, churn, compute
intensity etc., and get a ready-to-run trace.  The quickstart example and
many tests use this instead of a full application workload.
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec


def synthetic(name="synthetic", iterations=10, lines_per_producer=8,
              consumers=2, neighbor_consumers=False, home_random_prob=0.5,
              consumer_churn=0.0, compute=300, op_gap=8, hot_lines=0,
              false_share_pairs=0, pc_active_fraction=1.0,
              num_cpus=16, seed=12345, scale=1.0):
    """Build a synthetic workload with a fixed consumer count.

    ``consumers`` may be an int (every shared line gets that many readers)
    or a :class:`~repro.workloads.base.ConsumerProfile` for a distribution.
    """
    if isinstance(consumers, int):
        profile = ConsumerProfile(((consumers, 1.0),))
    else:
        profile = consumers
    spec = PCWorkloadSpec(
        name=name,
        iterations=iterations,
        lines_per_producer=lines_per_producer,
        consumer_profile=profile,
        neighbor_consumers=neighbor_consumers,
        home_random_prob=home_random_prob,
        consumer_churn=consumer_churn,
        compute_produce=compute,
        compute_consume=compute,
        op_gap=op_gap,
        hot_lines=hot_lines,
        false_share_pairs=false_share_pairs,
        pc_active_fraction=pc_active_fraction,
    )
    return IterativePCWorkload(spec, num_cpus=num_cpus, seed=seed, scale=scale)
