"""Workload generators: the paper's seven applications plus synthetics."""

from .base import (
    ConsumerProfile,
    IterativePCWorkload,
    PCWorkloadSpec,
    WorkloadBuild,
)
from .registry import APPLICATIONS, application_names, get_workload
from .synthetic import synthetic

__all__ = [
    "ConsumerProfile",
    "IterativePCWorkload",
    "PCWorkloadSpec",
    "WorkloadBuild",
    "APPLICATIONS",
    "application_names",
    "get_workload",
    "synthetic",
]

from .migratory import MigratoryWorkload, migratory

__all__ += ["MigratoryWorkload", "migratory"]
