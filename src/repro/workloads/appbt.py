"""Appbt — NAS block-tridiagonal 3D stencil (Gaussian elimination).

Paper problem size: 16x16x16 cube, 60 timesteps.

Sharing signature (paper §3.2): the cube is split into subcubes and
Gaussian elimination sweeps all three dimensions, so subcube *faces* flow
to the several processors owning adjacent subcubes — 91.6% of
producer-consumer patterns have more than four consumers (Table 3).  The
sheer volume of pushed face data per consumer exceeds a 32 KB RAC, so the
small configuration keeps evicting updates before they are read (8%
speedup); growing the RAC to 1 MB captures nearly the whole benefit (24%)
even with 32-entry delegate tables (Figure 12 sweeps exactly this knob).
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"grid": "16x16x16", "timesteps": 60}

CONSUMER_DISTRIBUTION = ConsumerProfile((
    (2, 0.3), (3, 6.7), (4, 1.4), (5, 91.6),
))

SPEC = PCWorkloadSpec(
    name="appbt",
    iterations=12,
    lines_per_producer=64,     # update volume per consumer: RAC pressure
    consumer_profile=CONSUMER_DISTRIBUTION,
    home_random_prob=0.25,
    compute_produce=300000,
    compute_consume=300000,
    op_gap=8,
    private_lines=4,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The Appbt trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
