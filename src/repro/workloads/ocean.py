"""Ocean — SPLASH-2 ocean-current simulation (contiguous partitions).

Paper problem size: 258x258 grid, 1e-7 error tolerance.

Sharing signature (paper §3.2): processors communicate only with their
immediate neighbours, so boundary rows exhibit single-producer /
single-consumer sharing — 97.7% of producer-consumer patterns have exactly
one consumer (Table 3).  First-touch places each partition on its owner,
so the producer *is* the home node for its boundary data: delegation is
moot and all gains come from speculative updates converting the
neighbour's 2-hop boundary reads into local RAC hits.  Ocean does
substantial local stencil compute per boundary exchange, which bounds the
achievable speedup (paper: 8% small config, 11% large).
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"grid": "258x258", "tolerance": 1e-7}

CONSUMER_DISTRIBUTION = ConsumerProfile(((1, 97.7), (2, 1.8), (3, 0.5)))

SPEC = PCWorkloadSpec(
    name="ocean",
    iterations=14,
    lines_per_producer=8,
    consumer_profile=CONSUMER_DISTRIBUTION,
    neighbor_consumers=True,   # nearest-neighbour boundary exchange
    home_random_prob=0.0,      # first-touch homes partitions on their owner
    compute_produce=7500,
    compute_consume=7500,
    op_gap=12,
    private_lines=8,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The Ocean trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
