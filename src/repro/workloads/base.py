"""Workload framework: synthetic traces with controlled sharing patterns.

The paper evaluates seven applications whose *sharing signatures* it
characterises precisely (Table 3 consumer-count distributions plus §3.2
prose).  We cannot run SPLASH-2/NPB binaries on a Python simulator, so each
application is reproduced as a parametric trace generator that recreates
the signature the mechanisms react to:

* how many lines each producer owns and how often it rewrites them;
* how many consumers read each line (Table 3 distribution) and how stable
  the consumer set is across iterations (churn);
* where lines are homed relative to their producer (first-touch outcome);
* app-specific effects: post-barrier "reload flurry" hot lines (Em3D),
  false sharing between alternating writers (CG), phases without
  producer-consumer sharing (CG), compute/communication ratio (all).

The builder emits one materialised op list per CPU, organised as barrier-
separated produce/consume phases, plus the first-touch page placements.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..common.errors import ConfigError
from ..common.rng import stream
from ..directory.placement import PAGE_SIZE
from . import regions
from ..sim.trace import Barrier, Compute, Read, Write

#: Address stride between allocated lines.  One line per page keeps page-
#: granularity placement independent per line, and the extra line offset
#: spreads consecutive lines across L2/RAC sets instead of aliasing.
LINE_STRIDE = PAGE_SIZE + 128


@dataclass(frozen=True)
class ConsumerProfile:
    """Distribution over consumer counts, as in the paper's Table 3.

    ``weights`` maps a consumer count to its probability mass; the special
    key 5 stands for the paper's "4+" bucket (5 or more consumers, sampled
    uniformly between 5 and the available CPU count).
    """

    weights: Tuple[Tuple[int, float], ...]

    def sample(self, rng, num_available):
        total = sum(w for _, w in self.weights)
        pick = rng.random() * total
        for count, weight in self.weights:
            pick -= weight
            if pick <= 0:
                break
        if count >= 5:  # the "4+" bucket
            count = rng.randint(5, max(5, min(num_available, 12)))
        return min(count, num_available)


@dataclass(frozen=True)
class PCWorkloadSpec:
    """Everything that defines one application's synthetic trace."""

    name: str
    iterations: int = 20
    lines_per_producer: int = 8
    writes_per_line: int = 1
    reads_per_line: int = 1
    op_gap: int = 8              # compute cycles between memory ops
    compute_produce: int = 0     # per-CPU compute during the produce phase
    compute_consume: int = 0     # per-CPU compute during the consume phase
    consumer_profile: ConsumerProfile = ConsumerProfile(((1, 1.0),))
    neighbor_consumers: bool = False  # ring neighbours instead of random
    consumer_churn: float = 0.0       # P(resample consumer set) per iteration
    remote_share_prob: float = 1.0    # P(line is shared at all)
    home_random_prob: float = 0.0     # P(line homed away from its producer)
    hot_lines: int = 0                # read by everyone right after barrier
    false_share_pairs: int = 0        # CG: lines with two alternating writers
    pc_active_fraction: float = 1.0   # CG: fraction of iterations with sharing
    private_lines: int = 0            # per-CPU private lines touched per iter

    def scaled(self, scale):
        """A smaller copy for quick tests: fewer iterations and lines."""
        if scale == 1.0:
            return self
        return PCWorkloadSpec(
            **{**self.__dict__,
               "iterations": max(4, int(self.iterations * scale)),
               "lines_per_producer": max(1, int(self.lines_per_producer * scale))})


@dataclass
class WorkloadBuild:
    """The product of :meth:`IterativePCWorkload.build`."""

    name: str
    per_cpu_ops: List[List[object]]
    placements: List[Tuple[int, int, int]]  # (start, length, home)
    shared_lines: Dict[int, int] = field(default_factory=dict)  # addr -> producer

    @property
    def total_ops(self):
        return sum(len(ops) for ops in self.per_cpu_ops)


class IterativePCWorkload:
    """Builds barrier-synchronised produce/consume traces from a spec."""

    def __init__(self, spec, num_cpus=16, seed=12345, scale=1.0):
        if num_cpus < 2:
            raise ConfigError("producer-consumer workloads need >= 2 CPUs")
        self.spec = spec.scaled(scale)
        self.num_cpus = num_cpus
        self.seed = seed

    # -- address layout -----------------------------------------------------

    def _line_addr(self, region, index):
        return regions.region_base(region) + index * LINE_STRIDE

    # -- consumer-set machinery -------------------------------------------------

    def _initial_consumers(self, rng, producer):
        spec = self.spec
        if rng.random() > spec.remote_share_prob:
            return tuple()  # private line: producer reads its own data
        count = spec.consumer_profile.sample(rng, self.num_cpus - 1)
        if spec.neighbor_consumers:
            return tuple((producer + 1 + i) % self.num_cpus
                         for i in range(count))
        others = [cpu for cpu in range(self.num_cpus) if cpu != producer]
        rng.shuffle(others)
        return tuple(sorted(others[:count]))

    # -- build ----------------------------------------------------------------

    def build(self):
        spec = self.spec
        rng = stream(self.seed, "wl:" + spec.name)
        ops = [[] for _ in range(self.num_cpus)]
        placements = []
        shared_lines = {}
        # Collision-free region bases: identical to the module constants up
        # to 63 CPUs, spread out beyond (regions.layout).
        shared_base, hot_base, false_share_base, private_base = \
            regions.layout(self.num_cpus)

        # Shared producer-consumer lines.
        lines = []  # (addr, producer, consumers tuple)
        for producer in range(self.num_cpus):
            for index in range(spec.lines_per_producer):
                addr = self._line_addr(shared_base + producer, index)
                if rng.random() < spec.home_random_prob:
                    home = rng.randrange(self.num_cpus)
                else:
                    home = producer
                placements.append((addr, 128, home))
                consumers = self._initial_consumers(rng, producer)
                lines.append([addr, producer, consumers])
                shared_lines[addr] = producer

        # Hot lines: written by a rotating producer, read by everyone right
        # after the barrier (the reload flurry).  Such barrier-adjacent
        # globals are first-touched by whoever allocated them, not by the
        # phase writer, so their home is deliberately remote — which is
        # what creates the BUSY-home NACK storm the paper describes.
        hot = []
        for index in range(spec.hot_lines):
            addr = self._line_addr(hot_base, index)
            producer = index % self.num_cpus
            placements.append((addr, 128, (producer + 1) % self.num_cpus))
            hot.append((addr, producer))
            shared_lines[addr] = producer

        # False-sharing lines: two CPUs alternate writes (never stable PC).
        false_shared = []
        for index in range(spec.false_share_pairs):
            addr = self._line_addr(false_share_base, index)
            writer_a = (2 * index) % self.num_cpus
            writer_b = (2 * index + 1) % self.num_cpus
            placements.append((addr, 128, writer_a))
            false_shared.append((addr, writer_a, writer_b))
            shared_lines[addr] = writer_a

        # Private per-CPU working sets.
        private = {}
        for cpu in range(self.num_cpus):
            addrs = [self._line_addr(private_base + cpu, index)
                     for index in range(spec.private_lines)]
            for addr in addrs:
                placements.append((addr, 128, cpu))
            private[cpu] = addrs

        barrier_id = 0
        for iteration in range(spec.iterations):
            pc_active = rng.random() < spec.pc_active_fraction
            # Consumer churn: some lines move to a new consumer set.
            if spec.consumer_churn:
                for line in lines:
                    if line[2] and rng.random() < spec.consumer_churn:
                        line[2] = self._initial_consumers(rng, line[1])

            # -- produce phase
            for cpu in range(self.num_cpus):
                if spec.compute_produce:
                    ops[cpu].append(Compute(spec.compute_produce))
            if pc_active:
                for addr, producer, consumers in lines:
                    for _ in range(spec.writes_per_line):
                        ops[producer].append(Compute(spec.op_gap))
                        ops[producer].append(Write(addr))
            for addr, producer in hot:
                ops[producer].append(Write(addr))
            for addr, writer_a, writer_b in false_shared:
                writer = writer_a if iteration % 2 == 0 else writer_b
                ops[writer].append(Compute(spec.op_gap))
                ops[writer].append(Write(addr))
            for cpu in range(self.num_cpus):
                for addr in private[cpu]:
                    ops[cpu].append(Write(addr))

            for cpu in range(self.num_cpus):
                ops[cpu].append(Barrier(barrier_id))
            barrier_id += 1

            # -- consume phase
            reads = [[] for _ in range(self.num_cpus)]
            if pc_active:
                for addr, producer, consumers in lines:
                    readers = consumers if consumers else (producer,)
                    for reader in readers:
                        reads[reader].append(addr)
            for addr, writer_a, writer_b in false_shared:
                reader = writer_b if iteration % 2 == 0 else writer_a
                reads[reader].append(addr)
            for cpu in range(self.num_cpus):
                # The reload flurry: everyone reads the hot lines at once.
                for addr, producer in hot:
                    if cpu != producer:
                        ops[cpu].append(Read(addr))
                if spec.compute_consume:
                    ops[cpu].append(Compute(spec.compute_consume))
                # Stagger start offsets so consumers do not convoy.
                cpu_reads = reads[cpu]
                if cpu_reads:
                    offset = (cpu * 7) % len(cpu_reads)
                    for addr in cpu_reads[offset:] + cpu_reads[:offset]:
                        for _ in range(spec.reads_per_line):
                            ops[cpu].append(Compute(spec.op_gap))
                            ops[cpu].append(Read(addr))
                for addr in private[cpu]:
                    ops[cpu].append(Read(addr))
            for cpu in range(self.num_cpus):
                ops[cpu].append(Barrier(barrier_id))
            barrier_id += 1

        return WorkloadBuild(name=spec.name, per_cpu_ops=ops,
                             placements=placements,
                             shared_lines=shared_lines)
