"""MG — NAS Parallel Benchmark: V-cycle multigrid Poisson solver.

Paper problem size: 32x32x32 grid, 4 V-cycle steps (OpenMP version).

Sharing signature (paper §3.2): at the finest grid only boundary data is
producer-consumer (one consumer — 78.3% in Table 3), but coarse grid
levels put dependent points on different processors, so MG has *many*
live producer-consumer lines at once — more than a 32-entry delegate
cache can hold.  That capacity pressure is MG's defining behaviour: the
small configuration removes only ~20% of remote misses (9% speedup),
while growing the delegate tables to 1K entries lifts the speedup to 22%
even with the small 32 KB RAC (Figure 11 sweeps exactly this knob).
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"grid": "32x32x32", "vcycles": 4}

CONSUMER_DISTRIBUTION = ConsumerProfile((
    (1, 78.3), (2, 11.4), (3, 3.7), (4, 2.6), (5, 3.9),
))

SPEC = PCWorkloadSpec(
    name="mg",
    iterations=14,
    lines_per_producer=64,     # many live PC lines: delegate-cache pressure
    consumer_profile=CONSUMER_DISTRIBUTION,
    home_random_prob=0.95,     # coarse levels: dependent data homed remotely
    consumer_churn=0.04,
    compute_produce=44000,
    compute_consume=44000,
    op_gap=8,
    private_lines=4,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The MG trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
