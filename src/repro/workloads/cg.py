"""CG — NAS Parallel Benchmark: conjugate gradient eigenvalue estimate.

Paper problem size: 1400 rows, 15 iterations (OpenMP version).

Sharing signature (paper §3.2): three effects cap CG's gains at ~6%:

1. Producer-consumer sharing appears only in *some* phases (the reduction
   and broadcast steps); the sparse matrix-vector product in between has
   no stable pattern (modelled by ``pc_active_fraction``).
2. The sparse representation causes heavy **false sharing**: lines written
   alternately by two processors never satisfy the detector's same-writer
   requirement and are correctly left unoptimised.
3. Remote misses are simply not the bottleneck — per-iteration local
   compute dwarfs communication, so even removing ~60% of remote misses
   moves the needle little.

The reduction results that *are* producer-consumer are read by nearly
everyone: 99.7% of patterns have more than four consumers (Table 3).
"""

from .base import ConsumerProfile, IterativePCWorkload, PCWorkloadSpec

PROBLEM_SIZE = {"rows": 1400, "iterations": 15}

CONSUMER_DISTRIBUTION = ConsumerProfile(((1, 0.1), (2, 0.2), (5, 99.7)))

SPEC = PCWorkloadSpec(
    name="cg",
    iterations=16,
    lines_per_producer=4,      # a handful of reduction/broadcast lines
    consumer_profile=CONSUMER_DISTRIBUTION,
    home_random_prob=0.3,
    false_share_pairs=12,      # sparse-format lines with alternating writers
    pc_active_fraction=0.55,   # PC sharing only in some phases
    compute_produce=55000,
    compute_consume=55000,
    op_gap=10,
    private_lines=16,
)


def workload(num_cpus=16, seed=12345, scale=1.0):
    """The CG trace generator (see module docstring)."""
    return IterativePCWorkload(SPEC, num_cpus=num_cpus, seed=seed, scale=scale)
