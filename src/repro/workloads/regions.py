"""Virtual-address regions used by the workload generators.

Each logical region gets a disjoint 16 MB window so placements, sharing
roles and working sets never alias across regions or CPUs.  Region numbers
are small integers; per-CPU regions add the CPU index to a base constant.
"""

#: Size of one region window in bytes.
REGION_BYTES = 16 * 1024 * 1024

# Region-number bases (per-CPU regions occupy base + cpu).
SHARED = 1        # producer-consumer lines, one region per producer CPU
HOT = 64          # barrier-adjacent hot lines (read by everyone)
FALSE_SHARE = 65  # alternating-writer lines (CG false sharing)
PRIVATE = 128     # per-CPU private working sets


def layout(num_cpus):
    """Collision-free ``(shared, hot, false_share, private)`` bases.

    The historical constants assume small machines: with 64+ CPUs,
    ``SHARED + cpu`` runs into HOT (64), FALSE_SHARE (65) and eventually
    PRIVATE (128) — real address aliasing between logically distinct
    regions.  Machines small enough for the constants keep them (so every
    existing <=16-CPU trace is byte-identical); larger ones spread the
    bases past the per-CPU ranges.
    """
    if num_cpus <= HOT - SHARED:
        return SHARED, HOT, FALSE_SHARE, PRIVATE
    hot = SHARED + num_cpus
    false_share = hot + 1
    private = false_share + 1
    return SHARED, hot, false_share, private


def region_base(region):
    """Base byte address of a region window.

    The base is staggered by a region-dependent line offset: windows are
    16 MB apart, which is a multiple of every cache's set span, so without
    the stagger all regions would start in set 0 and alias pathologically.
    The 977-line stagger (977 is prime) spreads region starts across sets.
    """
    stagger = ((region * 977) % 8192) * 128
    return (1 + region) * REGION_BYTES + stagger
