"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available applications and system presets.
``run APP``
    Run one application on one (or every) system preset and print the
    evaluation metrics.
``experiment NAME``
    Regenerate one paper artefact (table3, figure7..figure12, headline,
    delegation-only) and print it.
``verify``
    Exhaustively model-check the protocol (paper §2.5).
``area``
    Print the §3.3.1 SRAM budget of a configuration.
"""

import argparse
import sys
import time

from . import __version__
from .analysis import render_table
from .analysis.area import area_of
from .common import params
from .harness import experiments, run_app
from .mc import ALL_INVARIANTS, ModelChecker, ProtocolModel
from .workloads import application_names

EXPERIMENTS = {
    "table3": experiments.table3,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "figure9": experiments.figure9,
    "figure10": experiments.figure10,
    "figure11": experiments.figure11,
    "figure12": experiments.figure12,
    "headline": experiments.headline,
    "delegation-only": experiments.delegation_only,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the HPCA 2007 adaptive "
                    "producer-consumer coherence protocol.")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show applications and system presets")

    run_p = sub.add_parser("run", help="run one application")
    run_p.add_argument("app", choices=application_names())
    run_p.add_argument("--system", default="all",
                       choices=["all"] + list(params.EVALUATED_SYSTEMS))
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=12345)
    run_p.add_argument("--no-check", action="store_true",
                       help="disable online coherence checking (faster)")

    exp_p = sub.add_parser("experiment", help="regenerate a paper artefact")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--seed", type=int, default=12345)

    verify_p = sub.add_parser("verify", help="model-check the protocol")
    verify_p.add_argument("--nodes", type=int, default=3)
    verify_p.add_argument("--no-delegation", action="store_true")
    verify_p.add_argument("--no-updates", action="store_true")
    verify_p.add_argument("--unordered", action="store_true",
                          help="drop per-channel FIFO (expect a "
                               "counterexample)")
    verify_p.add_argument("--max-states", type=int, default=4_000_000)

    area_p = sub.add_parser("area", help="print the SRAM budget (§3.3.1)")
    area_p.add_argument("--system", default="dele32_rac32k",
                        choices=list(params.EVALUATED_SYSTEMS))

    report_p = sub.add_parser(
        "report", help="run every experiment and write a Markdown report")
    report_p.add_argument("--output", default="EXPERIMENTS.md")
    report_p.add_argument("--scale", type=float, default=1.0)
    report_p.add_argument("--seed", type=int, default=12345)
    return parser


def cmd_list(_args):
    print("Applications (paper Table 2):")
    for app in application_names():
        print("   ", app)
    print("\nSystem presets (paper Figure 7):")
    for name in params.EVALUATED_SYSTEMS:
        print("   ", name)
    return 0


def cmd_run(args):
    systems = (params.EVALUATED_SYSTEMS if args.system == "all"
               else {args.system: params.EVALUATED_SYSTEMS[args.system]})
    rows = []
    base_cycles = None
    for name, factory in systems.items():
        run = run_app(args.app, factory(), seed=args.seed, scale=args.scale,
                      check_coherence=not args.no_check)
        m = run.metrics
        if base_cycles is None:
            base_cycles = m.cycles
        rows.append([name, m.cycles, "%.3f" % (base_cycles / m.cycles),
                     m.remote_misses, m.messages, m.updates_sent])
    print(render_table(
        ["system", "cycles", "speedup", "remote misses", "messages",
         "updates"],
        rows, title="%s (scale %.2f)" % (args.app, args.scale)))
    return 0


def cmd_experiment(args):
    out = EXPERIMENTS[args.name](scale=args.scale, seed=args.seed)
    print(out["text"])
    return 0


def cmd_verify(args):
    model = ProtocolModel(
        num_nodes=args.nodes,
        writers=(1,),
        readers=tuple(range(2, args.nodes)),
        enable_delegation=not args.no_delegation,
        enable_updates=not (args.no_updates or args.no_delegation),
        ordered_channels=not args.unordered,
    )
    checker = ModelChecker(model.initial_states(), model.rules(),
                           ALL_INVARIANTS, quiescent=model.quiescent,
                           max_states=args.max_states, track_traces=False,
                           canonicalize=model.canonical)
    start = time.time()
    try:
        result = checker.run()
    except Exception as err:  # InvariantViolation / DeadlockError
        print("VIOLATION: %s" % err)
        trace = getattr(err, "trace", [])
        for step in trace:
            print("   ", step)
        return 1
    print("PASS: %d states, %d transitions, depth %d, %.2fs"
          % (result.states_explored, result.transitions, result.max_depth,
             time.time() - start))
    return 0


def cmd_area(args):
    config = params.EVALUATED_SYSTEMS[args.system]()
    budget = area_of(config)
    rows = [
        ["producer table", budget.producer_table_bytes],
        ["consumer table", budget.consumer_table_bytes],
        ["detector bits", budget.detector_bytes],
        ["RAC", budget.rac_bytes],
        ["total", budget.total_bytes],
    ]
    print(render_table(["component", "bytes"], rows,
                       title="SRAM budget per node: %s (%.1f KB)"
                       % (args.system, budget.total_kb)))
    return 0


def cmd_report(args):
    from .analysis.report import full_report
    text = full_report(scale=args.scale, seed=args.seed)
    with open(args.output, "w") as fileobj:
        fileobj.write(text)
    print("wrote %s (%d bytes)" % (args.output, len(text)))
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "experiment": cmd_experiment,
    "verify": cmd_verify,
    "area": cmd_area,
    "report": cmd_report,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
