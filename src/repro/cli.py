"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available applications and system presets.
``run APP``
    Run one application on one (or every) system preset and print the
    evaluation metrics.
``arena``
    Race the registered coherence protocols (adaptive, write-invalidate,
    MESI, Dragon) over a workload matrix and print the comparison:
    traffic bytes, hop-class breakdown, miss-latency p50/p95 per cell
    (see docs/protocols.md).
``experiment NAME``
    Regenerate one paper artefact (table3, figure7..figure12, headline,
    delegation-only) and print it.
``verify``
    Exhaustively model-check the protocol (paper §2.5).
``area``
    Print the §3.3.1 SRAM budget of a configuration.
``trace``
    Run one application with transaction-level tracing and export a
    Perfetto/Chrome trace or a JSONL event dump (see docs/observability.md).
``sweep``
    Regenerate one paper artefact through the parallel sweep engine:
    fan the simulations out over ``--jobs`` worker processes, replay
    finished ones from the on-disk cache, and optionally emit a
    pytest-benchmark-compatible timing record (see docs/performance.md).
``scale``
    The scaling study: storm traffic on large machines (up to 1024
    nodes), swept over node count x directory format x protocol, with
    per-cell traffic/fan-out/NACK/latency breakdowns and an optional
    benchmark-record JSON (see docs/scaling.md).
``lint``
    Statically analyze the protocol sources: handler coverage,
    sim <-> model-checker conformance, deadlock heuristics, state
    reachability (see docs/static_analysis.md).
``spec``
    Check the guarded-action protocol specs: the SPC spec analyses plus
    the spec <-> sim/mc conformance diff; ``--render``/``--diff`` print
    a spec or its structured justifications (see docs/spec.md).
``fuzz``
    Randomized protocol stress fuzzing with network fault injection:
    run a seed corpus through oracle-checked simulations, shrink any
    failure to a deterministic repro artifact, or replay one
    (see docs/fault_injection.md).
``serve``
    Run the async sweep/fuzz job service: an HTTP JSON API over a
    persistent worker fleet with a shared deduplicating result cache,
    SSE progress streams and a live dashboard (see docs/serving.md).
"""

import argparse
import json
import os
import platform
import sys
import time

from . import __version__
from .analysis import render_table
from .analysis.area import area_of
from .common import params
from .harness import arena as arena_harness
from .harness import experiments, run_app
from .harness import sweep as sweep_mod
from .harness.sweep import SweepEngine, SweepProgress
from .protocol import arena as arena_mod
from .mc import ALL_INVARIANTS, ModelChecker, ProtocolModel
from .obs import TraceConfig, Tracer, export_jsonl, export_perfetto
from .workloads import application_names

#: Friendly system-preset aliases accepted by ``trace`` (and only there, to
#: keep the evaluation commands on the paper's exact Figure 7 names).
SYSTEM_ALIASES = {
    "pc": "dele32_rac32k",        # the paper's full producer-consumer system
    "enhanced": "dele32_rac32k",
    "baseline": "base",
}

EXPERIMENTS = {
    "table3": experiments.table3,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "figure9": experiments.figure9,
    "figure10": experiments.figure10,
    "figure11": experiments.figure11,
    "figure12": experiments.figure12,
    "headline": experiments.headline,
    "delegation-only": experiments.delegation_only,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the HPCA 2007 adaptive "
                    "producer-consumer coherence protocol.")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show applications and system presets")

    run_p = sub.add_parser("run", help="run one application")
    run_p.add_argument("app", choices=application_names())
    run_p.add_argument("--system", default="all",
                       choices=["all"] + list(params.EVALUATED_SYSTEMS))
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=12345)
    run_p.add_argument("--protocol", default=None,
                       choices=arena_mod.protocol_names(),
                       help="coherence protocol (default: the config's, "
                            "i.e. adaptive)")
    run_p.add_argument("--directory-format", default=None, metavar="FMT",
                       help="directory sharer encoding: full, coarse:G, "
                            "limited:K (default: the config's)")
    run_p.add_argument("--no-check", action="store_true",
                       help="disable online coherence checking (faster)")

    arena_p = sub.add_parser(
        "arena", help="race the arena protocols over a workload matrix")
    arena_p.add_argument("--apps", default=",".join(arena_harness.DEFAULT_APPS),
                         metavar="A,B,...",
                         help="comma-separated applications "
                              "(default: %(default)s)")
    arena_p.add_argument("--protocols",
                         default=",".join(arena_mod.ARENA_PROTOCOLS),
                         metavar="P,Q,...",
                         help="comma-separated protocols "
                              "(default: %(default)s)")
    arena_p.add_argument("--base", default="small",
                         choices=sorted({"small", "large", "baseline"}
                                        | set(params.EVALUATED_SYSTEMS)),
                         help="shared base config preset; each protocol "
                              "normalises it onto its own feature set "
                              "(default: %(default)s)")
    arena_p.add_argument("--scale", type=float, default=0.5)
    arena_p.add_argument("--seed", type=int, default=12345)
    arena_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: all CPU cores)")
    arena_p.add_argument("--no-cache", action="store_true",
                         help="do not read or write the on-disk result "
                              "cache")
    arena_p.add_argument("--cache-dir", default=sweep_mod.CACHE_DIR)
    arena_p.add_argument("--directory-format", default=None, metavar="FMT",
                         help="directory sharer encoding for every cell: "
                              "full, coarse:G, limited:K")
    arena_p.add_argument("--json", dest="json_out", metavar="OUT.json",
                         default=None,
                         help="also write the machine-readable report")

    scale_p = sub.add_parser(
        "scale", help="sweep storm traffic over node count x directory "
                      "format x protocol (the scaling study)")
    scale_p.add_argument("--nodes", default="16,64,256", metavar="N,M,...",
                         help="comma-separated node counts "
                              "(default: %(default)s; the study goes to "
                              "1024)")
    scale_p.add_argument("--formats", default=None, metavar="F,G,...",
                         help="comma-separated directory formats "
                              "(default: full,coarse:8,coarse:16,"
                              "limited:2,limited:4)")
    scale_p.add_argument("--protocols", default="adaptive", metavar="P,Q,...",
                         help="comma-separated protocols "
                              "(default: %(default)s)")
    scale_p.add_argument("--scale", type=float, default=1.0)
    scale_p.add_argument("--seed", type=int, default=0)
    scale_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: all CPU cores)")
    scale_p.add_argument("--no-cache", action="store_true",
                         help="do not read or write the on-disk result "
                              "cache")
    scale_p.add_argument("--cache-dir", default=sweep_mod.CACHE_DIR)
    scale_p.add_argument("--no-check", action="store_true",
                         help="disable online coherence checking (faster; "
                              "the default keeps the run oracle-checked)")
    scale_p.add_argument("--json", dest="json_out", metavar="OUT.json",
                         default=None,
                         help="also write the benchmark-record JSON "
                              "(BENCH_*.json schema, group 'scale')")

    exp_p = sub.add_parser("experiment", help="regenerate a paper artefact")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--seed", type=int, default=12345)

    verify_p = sub.add_parser("verify", help="model-check the protocol")
    verify_p.add_argument("--protocol", choices=("adaptive", "mesi"),
                          default="adaptive",
                          help="adaptive checks the hand-written model; "
                               "mesi checks the model generated from its "
                               "guarded-action spec (default: adaptive)")
    verify_p.add_argument("--nodes", type=int, default=3)
    verify_p.add_argument("--no-delegation", action="store_true")
    verify_p.add_argument("--no-updates", action="store_true")
    verify_p.add_argument("--unordered", action="store_true",
                          help="drop per-channel FIFO (expect a "
                               "counterexample)")
    verify_p.add_argument("--max-states", type=int, default=4_000_000)

    area_p = sub.add_parser("area", help="print the SRAM budget (§3.3.1)")
    area_p.add_argument("--system", default="dele32_rac32k",
                        choices=list(params.EVALUATED_SYSTEMS))

    trace_p = sub.add_parser(
        "trace", help="run one app with tracing and export the trace")
    trace_p.add_argument("app", choices=application_names())
    trace_p.add_argument(
        "system", nargs="?", default="pc",
        choices=sorted(set(params.EVALUATED_SYSTEMS) | set(SYSTEM_ALIASES)),
        help="system preset or alias (default: pc, the full mechanism)")
    trace_p.add_argument("--scale", type=float, default=1.0)
    trace_p.add_argument("--seed", type=int, default=12345)
    trace_p.add_argument("--out", default="trace.json",
                         help="output path (default: trace.json)")
    trace_p.add_argument("--format", choices=["perfetto", "jsonl"],
                         default=None,
                         help="export format (default: by --out extension; "
                              ".jsonl -> jsonl, else perfetto)")
    trace_p.add_argument("--sample-every", type=int, default=1, metavar="N",
                         help="keep 1-in-N transaction spans (default: 1)")
    trace_p.add_argument("--nodes", default=None, metavar="N,M,...",
                         help="only record spans/events for these nodes")
    trace_p.add_argument("--addr-range", action="append", default=None,
                         metavar="LO:HI",
                         help="only record this [LO, HI) byte range "
                              "(hex ok; repeatable)")
    trace_p.add_argument("--messages", action="store_true",
                         help="also record every network message (large)")
    trace_p.add_argument("--no-check", action="store_true",
                         help="disable online coherence checking (faster)")

    report_p = sub.add_parser(
        "report", help="run every experiment and write a Markdown report")
    report_p.add_argument("--output", default="EXPERIMENTS.md")
    report_p.add_argument("--scale", type=float, default=1.0)
    report_p.add_argument("--seed", type=int, default=12345)
    report_p.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for the simulations "
                               "(default: 1, serial)")
    report_p.add_argument("--no-cache", action="store_true",
                          help="do not read or write the on-disk result "
                               "cache")
    report_p.add_argument("--cache-dir", default=sweep_mod.CACHE_DIR)

    sweep_p = sub.add_parser(
        "sweep", help="regenerate an artefact via the parallel sweep engine")
    sweep_p.add_argument("name", choices=sorted(EXPERIMENTS))
    sweep_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: all CPU cores)")
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--seed", type=int, default=12345)
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="do not read or write the on-disk result "
                              "cache")
    sweep_p.add_argument("--cache-dir", default=sweep_mod.CACHE_DIR,
                         help="result-cache location (default: %(default)s)")
    sweep_p.add_argument("--json", dest="json_out", metavar="OUT.json",
                         help="write a pytest-benchmark-compatible timing "
                              "record (BENCH_*.json style)")
    sweep_p.add_argument("--rounds", type=int, default=1, metavar="N",
                         help="repeat the sweep N times and record real "
                              "min/mean/median/stddev over the rounds "
                              "(combine with --no-cache so later rounds "
                              "re-execute; default: 1)")
    sweep_p.add_argument("--warmup", action="store_true",
                         help="run one untimed sweep first (excluded from "
                              "the recorded stats, pytest-benchmark style)")
    sweep_p.add_argument("--quiet", action="store_true",
                         help="suppress the progress/ETA line")
    sweep_p.add_argument("--directory-format", default=None, metavar="FMT",
                         help="override the directory sharer encoding for "
                              "every simulation in the sweep: full, "
                              "coarse:G, limited:K")

    profile_p = sub.add_parser(
        "profile",
        help="cProfile one artefact sweep and print the top-N cost table")
    profile_p.add_argument("name", nargs="?", default="headline",
                           choices=sorted(EXPERIMENTS))
    profile_p.add_argument("--scale", type=float, default=0.1)
    profile_p.add_argument("--seed", type=int, default=12345)
    profile_p.add_argument("--top", type=int, default=20, metavar="N",
                           help="rows in the cost table (default: 20)")
    profile_p.add_argument("--sort", default="tottime",
                           choices=["tottime", "cumtime", "calls"])
    profile_p.add_argument("--out", metavar="FILE.pstats",
                           help="also dump the raw profile for pstats/"
                                "snakeviz-style tooling")

    lint_p = sub.add_parser(
        "lint", help="statically analyze the protocol sources")
    lint_p.add_argument("--root", default=None, metavar="DIR",
                        help="repro package directory to analyze "
                             "(default: this installation's sources)")
    lint_p.add_argument("--allowlist", default=None, metavar="FILE",
                        help="allowlist file (default: lint_allowlist.txt "
                             "at the repo root)")
    lint_p.add_argument("--no-allowlist", action="store_true",
                        help="report raw findings, ignoring any allowlist")
    lint_p.add_argument("--json", dest="json_out", action="store_true",
                        help="emit the machine-readable JSON report")
    lint_p.add_argument("--sarif", metavar="OUT.sarif", default=None,
                        help="also write a SARIF 2.1.0 report to OUT.sarif")
    lint_p.add_argument("--fail-on", choices=["error", "warning", "note"],
                        default="error",
                        help="lowest severity that makes the exit code "
                             "nonzero (default: %(default)s)")
    lint_p.add_argument("--verbose", action="store_true",
                        help="also list allowlisted findings")

    spec_p = sub.add_parser(
        "spec", help="check the guarded-action protocol specs")
    spec_p.add_argument("--protocol", default="all",
                        choices=("all", "adaptive", "wi", "mesi", "dragon"),
                        help="restrict to one protocol (default: all)")
    spec_p.add_argument("--root", default=None, metavar="DIR",
                        help="repro package directory to analyze "
                             "(default: this installation's sources)")
    spec_p.add_argument("--check", action="store_true",
                        help="run the SPC + conformance checks (the "
                             "default mode; flag kept for explicitness "
                             "in CI invocations)")
    spec_p.add_argument("--render", action="store_true",
                        help="print the spec (messages + transitions) "
                             "instead of checking it")
    spec_p.add_argument("--diff", action="store_true",
                        help="print the structured sim/mc justifications "
                             "(only/hoist/replay/note annotations)")
    spec_p.add_argument("--json", dest="json_out", action="store_true",
                        help="emit the machine-readable JSON report")
    spec_p.add_argument("--sarif", metavar="OUT.sarif", default=None,
                        help="also write a SARIF 2.1.0 report to OUT.sarif")

    fuzz_p = sub.add_parser(
        "fuzz", help="randomized protocol stress fuzzing (fault injection)")
    fuzz_p.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="number of seeds to run (default: %(default)s)")
    fuzz_p.add_argument("--seed-start", type=int, default=0, metavar="K",
                        help="first seed of the corpus (default: 0)")
    fuzz_p.add_argument("--scale", type=float, default=1.0)
    fuzz_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, in-process)")
    fuzz_p.add_argument("--out-dir", default=None, metavar="DIR",
                        help="repro-artifact directory "
                             "(default: .repro_cache/fuzz)")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="write failures unminimised")
    fuzz_p.add_argument("--replay", metavar="ARTIFACT", default=None,
                        help="replay one repro artifact instead of running "
                             "a corpus; exit 1 if it still reproduces")
    fuzz_p.add_argument("--json", dest="json_out", action="store_true",
                        help="emit a machine-readable JSON report")
    fuzz_p.add_argument("--cache", action="store_true",
                        help="replay finished corpus runs from the shared "
                             "result cache (pooled runs only)")
    fuzz_p.add_argument("--cache-dir", default=None,
                        help="result-cache location "
                             "(default: %s)" % sweep_mod.CACHE_DIR)

    serve_p = sub.add_parser(
        "serve", help="run the async sweep/fuzz job service")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="listen port; 0 picks an ephemeral port "
                              "(default: %(default)s)")
    serve_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker fleet width (default: all CPU "
                              "cores; 0 runs jobs inline on threads)")
    serve_p.add_argument("--cache-dir", default=sweep_mod.CACHE_DIR,
                         help="shared result-cache location "
                              "(default: %(default)s)")
    serve_p.add_argument("--cache-budget-mb", type=float, default=256.0,
                         metavar="MB",
                         help="LRU size budget for the result cache "
                              "(default: %(default)s; 0 disables "
                              "eviction)")
    serve_p.add_argument("--client-budget", type=int, default=4, metavar="N",
                         help="max concurrently-executing units per "
                              "client (default: %(default)s)")
    serve_p.add_argument("--max-retries", type=int, default=2, metavar="N",
                         help="retries (with backoff) after a worker "
                              "crash (default: %(default)s)")
    serve_p.add_argument("--port-file", default=None, metavar="PATH",
                         help="also write the bound port to PATH (for "
                              "scripts wrapping --port 0)")
    return parser


def cmd_list(_args):
    print("Applications (paper Table 2):")
    for app in application_names():
        print("   ", app)
    print("\nSystem presets (paper Figure 7):")
    for name in params.EVALUATED_SYSTEMS:
        print("   ", name)
    return 0


def cmd_run(args):
    systems = (params.EVALUATED_SYSTEMS if args.system == "all"
               else {args.system: params.EVALUATED_SYSTEMS[args.system]})
    overrides = {}
    if args.protocol is not None:
        overrides["protocol_name"] = args.protocol
    if args.directory_format is not None:
        overrides["directory_format"] = args.directory_format
    rows = []
    base_cycles = None
    for name, factory in systems.items():
        run = run_app(args.app, factory(**overrides), seed=args.seed,
                      scale=args.scale, check_coherence=not args.no_check)
        m = run.metrics
        if base_cycles is None:
            base_cycles = m.cycles
        rows.append([name, m.cycles, "%.3f" % (base_cycles / m.cycles),
                     m.remote_misses, m.messages, m.updates_sent])
    print(render_table(
        ["system", "cycles", "speedup", "remote misses", "messages",
         "updates"],
        rows, title="%s (scale %.2f)" % (args.app, args.scale)))
    return 0


def cmd_experiment(args):
    out = EXPERIMENTS[args.name](scale=args.scale, seed=args.seed)
    print(out["text"])
    return 0


def cmd_verify(args):
    if args.protocol == "mesi":
        from .spec import get_spec
        from .spec.mcgen import SpecModel
        model = SpecModel(
            get_spec("mesi"), num_nodes=args.nodes, writers=(1,),
            readers=tuple(range(2, args.nodes)),
            ordered_channels=not args.unordered)
    else:
        model = ProtocolModel(
            num_nodes=args.nodes,
            writers=(1,),
            readers=tuple(range(2, args.nodes)),
            enable_delegation=not args.no_delegation,
            enable_updates=not (args.no_updates or args.no_delegation),
            ordered_channels=not args.unordered,
        )
    checker = ModelChecker(model.initial_states(), model.rules(),
                           ALL_INVARIANTS, quiescent=model.quiescent,
                           max_states=args.max_states, track_traces=False,
                           canonicalize=model.canonical)
    start = time.time()
    try:
        result = checker.run()
    except Exception as err:  # InvariantViolation / DeadlockError
        print("VIOLATION: %s" % err)
        trace = getattr(err, "trace", [])
        for step in trace:
            print("   ", step)
        return 1
    print("PASS: %d states, %d transitions, depth %d, %.2fs"
          % (result.states_explored, result.transitions, result.max_depth,
             time.time() - start))
    return 0


def cmd_area(args):
    config = params.EVALUATED_SYSTEMS[args.system]()
    budget = area_of(config)
    rows = [
        ["producer table", budget.producer_table_bytes],
        ["consumer table", budget.consumer_table_bytes],
        ["detector bits", budget.detector_bytes],
        ["RAC", budget.rac_bytes],
        ["total", budget.total_bytes],
    ]
    print(render_table(["component", "bytes"], rows,
                       title="SRAM budget per node: %s (%.1f KB)"
                       % (args.system, budget.total_kb)))
    return 0


def _parse_addr_ranges(specs):
    ranges = []
    for spec in specs:
        try:
            lo_text, hi_text = spec.split(":", 1)
            ranges.append((int(lo_text, 0), int(hi_text, 0)))
        except ValueError:
            raise SystemExit("bad --addr-range %r (expected LO:HI)" % spec)
    return tuple(ranges)


def cmd_trace(args):
    system_name = SYSTEM_ALIASES.get(args.system, args.system)
    config = params.EVALUATED_SYSTEMS[system_name]()
    try:
        trace_config = TraceConfig(
            sample_every=args.sample_every,
            nodes=(frozenset(int(n) for n in args.nodes.split(","))
                   if args.nodes else None),
            addr_ranges=(_parse_addr_ranges(args.addr_range)
                         if args.addr_range else None),
            capture_messages=args.messages,
        )
    except ValueError as err:
        raise SystemExit("repro trace: error: %s" % err)
    tracer = Tracer(trace_config)
    run = run_app(args.app, config, seed=args.seed, scale=args.scale,
                  check_coherence=not args.no_check, trace=tracer)
    fmt = args.format or ("jsonl" if args.out.endswith(".jsonl")
                          else "perfetto")
    if fmt == "jsonl":
        export_jsonl(tracer, args.out)
    else:
        export_perfetto(tracer, args.out)
    summary = run.obs or {}
    counters = summary.get("counters", {})
    rows = [
        ["cycles", run.metrics.cycles],
        ["spans recorded", len(tracer.spans)],
        ["events recorded", len(tracer.events)],
        ["misses traced (all paths)",
         sum(h["count"] for h in summary.get("miss_latency", {}).values())],
        ["delegations", counters.get("event.dele.accepted", 0)],
        ["update pushes", counters.get("event.update.push", 0)],
        ["NACKs", counters.get("event.nack", 0)],
    ]
    print(render_table(["metric", "value"], rows,
                       title="%s on %s (scale %.2f) -> %s [%s]"
                       % (args.app, system_name, args.scale, args.out, fmt)))
    for path, hist in sorted(summary.get("miss_latency", {}).items()):
        if hist["count"]:
            print("  %-6s misses: n=%-7d mean=%8.1f cyc  max=%d"
                  % (path, hist["count"], hist["mean"], hist["max"]))
    print("open %s in https://ui.perfetto.dev (or chrome://tracing)"
          % args.out if fmt == "perfetto" else
          "JSONL dump: one record per line, timeline order")
    return 0


def _build_engine(args, quiet=True):
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    return SweepEngine(jobs=jobs, cache=not args.no_cache,
                       cache_dir=args.cache_dir,
                       progress=None if quiet else SweepProgress())


def cmd_report(args):
    from .analysis.report import full_report
    text = full_report(scale=args.scale, seed=args.seed,
                       engine=_build_engine(args))
    with open(args.output, "w") as fileobj:
        fileobj.write(text)
    print("wrote %s (%d bytes)" % (args.output, len(text)))
    return 0


def cmd_arena(args):
    apps = tuple(a for a in args.apps.split(",") if a)
    protocols = tuple(p for p in args.protocols.split(",") if p)
    base = (params.EVALUATED_SYSTEMS[args.base]()
            if args.base in params.EVALUATED_SYSTEMS
            else getattr(params, args.base)())
    if args.directory_format is not None:
        from dataclasses import replace
        base = replace(base, directory_format=args.directory_format)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    engine = arena_harness.arena_engine(jobs=jobs, cache=not args.no_cache,
                                        cache_dir=args.cache_dir)
    report = arena_harness.run_arena(
        apps=apps, protocols=protocols, base=base, base_name=args.base,
        seed=args.seed, scale=args.scale, engine=engine)
    print(report.render_text())
    sweep_report = engine.last_report
    print("\narena: %d cells (%d executed, %d cached), %d workers, %.2fs"
          % (sweep_report.total, sweep_report.executed, sweep_report.cached,
             engine.effective_jobs, sweep_report.elapsed))
    if args.json_out:
        with open(args.json_out, "w") as fileobj:
            json.dump(report.to_json(), fileobj, indent=2, sort_keys=True)
        print("wrote %s" % args.json_out)
    return 0


def cmd_scale(args):
    from .harness import scale as scale_harness

    nodes = tuple(int(n) for n in args.nodes.split(",") if n)
    formats = (tuple(f for f in args.formats.split(",") if f)
               if args.formats else scale_harness.DEFAULT_FORMATS)
    protocols = tuple(p for p in args.protocols.split(",") if p)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    started = time.time()
    engine = scale_harness.scale_engine(jobs=jobs, cache=not args.no_cache,
                                        cache_dir=args.cache_dir)
    report = scale_harness.run_scale(
        nodes=nodes, formats=formats, protocols=protocols, seed=args.seed,
        scale=args.scale, check_coherence=not args.no_check, engine=engine)
    elapsed = time.time() - started
    print(report.render_text())
    sweep_report = engine.last_report
    print("\nscale: %d cells (%d executed, %d cached), %d workers, %.2fs"
          % (sweep_report.total, sweep_report.executed, sweep_report.cached,
             engine.effective_jobs, sweep_report.elapsed))
    if args.json_out:
        record = {
            "machine_info": {
                "python_version": platform.python_version(),
                "cpu_count": os.cpu_count(),
            },
            "datetime": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "benchmarks": [{
                "group": "scale",
                "name": "scale[%s]" % args.nodes,
                "fullname": "repro scale --nodes %s" % args.nodes,
                # The CLI strings verbatim, so tools/bench_gate.py can
                # re-run the exact same sweep.
                "params": {"nodes": args.nodes,
                           "formats": ",".join(formats),
                           "protocols": args.protocols,
                           "scale": args.scale, "seed": args.seed,
                           "jobs": args.jobs},
                "stats": {
                    "min": elapsed, "max": elapsed, "mean": elapsed,
                    "median": elapsed, "stddev": 0.0, "rounds": 1,
                    "iterations": 1, "total": elapsed,
                    "ops": (1.0 / elapsed) if elapsed else 0.0,
                },
                "extra_info": {
                    "total_jobs": sweep_report.total,
                    "executed": sweep_report.executed,
                    "cached": sweep_report.cached,
                },
            }],
            "scale": report.to_json(),
        }
        with open(args.json_out, "w") as fileobj:
            json.dump(record, fileobj, indent=2, sort_keys=True)
        print("wrote %s" % args.json_out)
    return 0


def cmd_sweep(args):
    engine = _build_engine(args, quiet=args.quiet)
    # --directory-format threads natively through the experiment into
    # every SweepJob (and therefore into the content-hashed cache keys).
    directory_format = getattr(args, "directory_format", None)
    rounds = max(1, getattr(args, "rounds", 1))
    round_times = []
    out = None
    if getattr(args, "warmup", False):
        EXPERIMENTS[args.name](scale=args.scale, seed=args.seed,
                               engine=engine,
                               directory_format=directory_format)
    for _ in range(rounds):
        started = time.time()
        out = EXPERIMENTS[args.name](scale=args.scale, seed=args.seed,
                                     engine=engine,
                                     directory_format=directory_format)
        round_times.append(time.time() - started)
    elapsed = sum(round_times)
    report = engine.last_report
    print(out["text"])
    print("\nsweep %s: %d jobs (%d unique), %d executed, %d cached, "
          "%d workers, %.2fs"
          % (args.name, report.total, report.unique, report.executed,
             report.cached, engine.effective_jobs, elapsed))
    if args.json_out:
        _write_sweep_json(args, report, round_times)
        print("wrote %s" % args.json_out)
    return 0


def _write_sweep_json(args, report, round_times):
    """A BENCH_*.json-style record: the subset of the pytest-benchmark
    schema our tooling reads (one benchmark entry, real per-round stats
    when ``--rounds`` > 1), plus a ``sweep`` block with the
    cache/executed accounting."""
    import statistics

    name = "sweep[%s]" % args.name
    elapsed = sum(round_times)
    mean = statistics.mean(round_times)
    record = {
        "machine_info": {
            "python_version": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "datetime": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "benchmarks": [{
            "group": "sweep",
            "name": name,
            "fullname": "repro sweep %s" % args.name,
            "params": {"scale": args.scale, "seed": args.seed,
                       "jobs": args.jobs},
            "stats": {
                "min": min(round_times), "max": max(round_times),
                "mean": mean, "median": statistics.median(round_times),
                "stddev": (statistics.stdev(round_times)
                           if len(round_times) > 1 else 0.0),
                "rounds": len(round_times),
                "iterations": 1, "total": elapsed,
                "ops": (1.0 / mean) if mean else 0.0,
            },
            "extra_info": {
                "total_jobs": report.total,
                "unique_jobs": report.unique,
                "executed": report.executed,
                "cached": report.cached,
            },
        }],
        "sweep": {
            "name": args.name,
            "total": report.total,
            "unique": report.unique,
            "executed": report.executed,
            "cached": report.cached,
            "elapsed_s": elapsed,
            "job_seconds": report.job_seconds,
        },
    }
    with open(args.json_out, "w") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)


def cmd_profile(args):
    """cProfile one artefact sweep (serial, uncached, GC rules identical
    to a bench run) and print the hot-function table plus the per-job
    wall-time histogram the progress hook collects."""
    import cProfile
    import io

    from .analysis.ascii_charts import bar_chart

    progress = SweepProgress(stream=io.StringIO())  # histogram, no output
    engine = SweepEngine(jobs=1, cache=False, progress=progress)
    profiler = cProfile.Profile()
    started = time.time()
    profiler.enable()
    EXPERIMENTS[args.name](scale=args.scale, seed=args.seed, engine=engine)
    profiler.disable()
    elapsed = time.time() - started
    profiler.create_stats()

    sort_index = {"calls": 1, "tottime": 2, "cumtime": 3}[args.sort]
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in sorted(
            profiler.stats.items(),
            key=lambda item: item[1][sort_index],
            reverse=True)[:args.top]:
        where = filename
        marker = os.sep + os.path.join("repro", "")
        if marker in where:  # shorten to the package-relative path
            where = "repro/" + where.split(marker, 1)[1].replace(os.sep, "/")
        label = ("%s:%d(%s)" % (where, lineno, func) if lineno
                 else "{%s}" % func)
        rows.append(["%d" % nc, "%.3f" % tt, "%.3f" % ct, label])
    print(render_table(
        ["ncalls", "tottime", "cumtime", "function"], rows,
        title="repro profile %s --scale %g --seed %d (top %d by %s, "
              "%.2fs wall under cProfile)"
              % (args.name, args.scale, args.seed, args.top, args.sort,
                 elapsed)))

    job_ms = progress.job_ms
    if job_ms.count:
        series = []
        lower = 0
        for bound, count in zip(job_ms.bounds, job_ms.counts):
            if count:
                series.append(("%d-%dms" % (lower, bound), count))
            lower = bound
        if job_ms.counts[-1]:
            series.append((">%dms" % job_ms.bounds[-1], job_ms.counts[-1]))
        print()
        print(bar_chart(
            series, fmt="%d",
            title="per-job wall time (%d jobs, mean %.0fms, max %dms)"
                  % (job_ms.count, job_ms.mean, job_ms.max)))

    if args.out:
        profiler.dump_stats(args.out)
        print("\nwrote %s" % args.out)
    return 0


def cmd_lint(args):
    from .lint import (Severity, render_json, render_sarif, render_text,
                       run_lint)
    report = run_lint(root=args.root, allowlist_path=args.allowlist,
                      use_allowlist=not args.no_allowlist)
    if args.json_out:
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    if args.sarif:
        with open(args.sarif, "w") as fileobj:
            fileobj.write(render_sarif(report))
        if not args.json_out:
            print("wrote %s" % args.sarif)
    return report.exit_code(fail_on=Severity(args.fail_on))


def _render_spec(spec):
    lines = ["spec %s (%s)" % (spec.name, spec.description),
             "  mc model: %s" % (spec.mc_model or "none"),
             "  dir states: %s   cache states: %s"
             % ("/".join(spec.dir_states), "/".join(spec.cache_states)),
             "  messages (%d):" % len(spec.messages)]
    for msg in spec.messages:
        extra = []
        if msg.mc:
            extra.append("mc=%s" % "/".join(msg.mc))
        else:
            extra.append("unmodeled: %s" % (msg.note or "?"))
        if msg.data:
            extra.append("data")
        if msg.reply_to:
            extra.append("reply_to=%s" % "/".join(msg.reply_to))
        lines.append("    %-14s %-8s %s" % (msg.name, msg.role,
                                            "  ".join(extra)))
    lines.append("  transitions (%d):" % len(spec.transitions))
    for t in spec.transitions:
        guard = " & ".join("%s in {%s}" % (var, ",".join(vals))
                           for var, vals in t.when) or "true"
        emit = " emit " + "+".join(t.emit) if t.emit else ""
        goes = (" goes " + ",".join("%s=%s" % g for g in t.goes)
                if t.goes else "")
        lines.append("    [%s] %s: on %s if %s%s%s"
                     % (t.actor, t.label, t.on, guard, emit, goes))
    return "\n".join(lines)


def _render_spec_diff(spec):
    lines = ["spec %s — structured conformance justifications:" % spec.name]
    for msg in spec.messages:
        if not msg.mc:
            lines.append("  unmodeled message %s: %s"
                         % (msg.name, msg.note or "(no note)"))
    for t in spec.transitions:
        if t.only:
            lines.append("  %s: only=%r — %s"
                         % (t.label, t.only, t.why or "(no why)"))
        if t.hoist:
            lines.append("  %s: hoisted into model rule %s — %s"
                         % (t.label, t.hoist, t.why or "(no why)"))
        if t.replay:
            lines.append("  %s: sim replays via %s — %s"
                         % (t.label, t.replay, t.why or "(no why)"))
    if spec.stripped:
        lines.append("  stripped (handled by the full protocol only): %s"
                     % ", ".join(spec.stripped))
    return "\n".join(lines)


def cmd_spec(args):
    from .lint import (LintReport, Severity, render_json, render_sarif,
                       render_text)
    from .lint.extract import extract_mc, extract_protocols, extract_sim
    from .spec import load_spec_tree
    from .spec.analyze import run_spec_checks
    from .spec.conformance import run_conformance

    root = args.root
    if root is None:
        from .lint import default_root
        root = default_root()
    specs = load_spec_tree(root)
    if not specs:
        print("no spec/protocols/ directory under %s" % root)
        return 2
    wanted = sorted(specs) if args.protocol == "all" else [args.protocol]
    missing = [name for name in wanted if name not in specs]
    if missing:
        print("no spec for: %s (have: %s)"
              % (", ".join(missing), ", ".join(sorted(specs))))
        return 2

    if args.render or args.diff:
        renderer = _render_spec if args.render else _render_spec_diff
        print("\n\n".join(renderer(specs[name]) for name in wanted))
        return 0

    findings = []
    for name in wanted:
        findings.extend(run_spec_checks(specs[name]))
    sim = extract_sim(root)
    mc = extract_mc(root)
    protocols = extract_protocols(root)
    findings.extend(run_conformance(
        {name: specs[name] for name in wanted}, sim, mc, protocols))
    report = LintReport(
        findings=findings, allowlisted=[], stale_allowlist=[],
        root=str(root), allowlist_path=None,
        stats={
            "sim_messages": len(sim.messages),
            "sim_handled": len(sim.handlers),
            "sim_funcs": len(sim.funcs),
            "mc_messages": len(mc.messages),
            "mc_handled": len(mc.handlers),
            "conformance": {"source": "spec", "specs": wanted},
            "specs": {name: {
                "messages": len(specs[name].messages),
                "transitions": len(specs[name].transitions),
                "mc_model": specs[name].mc_model,
            } for name in wanted},
        })
    if args.json_out:
        print(render_json(report))
    else:
        print(render_text(report, title="repro spec"))
    if args.sarif:
        with open(args.sarif, "w") as fileobj:
            fileobj.write(render_sarif(report))
        if not args.json_out:
            print("wrote %s" % args.sarif)
    return report.exit_code(fail_on=Severity("error"))


def cmd_fuzz(args):
    from .fuzz import FUZZ_DIR, FuzzEngine, replay_artifact

    if args.replay:
        report = replay_artifact(args.replay)
        if args.json_out:
            print(json.dumps({
                "artifact": report.path, "seed": report.seed,
                "reproduced": report.reproduced,
                "expected_oracle": report.expected_oracle,
                "expected_digest": report.expected_digest,
                "actual_digest": report.actual_digest,
                "actual": report.actual.to_dict(),
            }, indent=2, sort_keys=True))
        elif report.reproduced:
            print("REPRODUCED seed %d: %s\n  %s\n  digest %s"
                  % (report.seed, report.actual.oracle,
                     report.actual.message, report.actual_digest))
        else:
            print("no longer reproduces: seed %d (expected %s)\n"
                  "  recorded digest %s\n  fresh run:     %s%s"
                  % (report.seed, report.expected_oracle,
                     report.expected_digest, report.actual_digest,
                     "" if report.actual.ok
                     else "  [still failing: %s]" % report.actual.oracle))
        return 1 if report.reproduced else 0

    engine = FuzzEngine(jobs=args.jobs,
                        out_dir=args.out_dir or FUZZ_DIR,
                        shrink=not args.no_shrink, scale=args.scale,
                        cache=args.cache, cache_dir=args.cache_dir)
    seeds = range(args.seed_start, args.seed_start + args.seeds)

    def progress(seed, result):
        if not args.json_out and not result.ok:
            print("seed %d FAILED [%s] %s"
                  % (seed, result.oracle, result.message))

    started = time.time()
    report = engine.run_corpus(seeds, progress=progress)
    elapsed = time.time() - started
    if args.json_out:
        print(json.dumps({
            "seeds": report.seeds, "passed": report.passed,
            "elapsed_s": elapsed,
            "failures": [{
                "seed": f.seed, "oracle": f.result.oracle,
                "message": f.result.message, "artifact": f.artifact_path,
                "shrink_attempts": f.shrink_attempts,
            } for f in report.failures],
        }, indent=2, sort_keys=True))
    else:
        print("fuzz: %d/%d seeds clean (%.1fs)"
              % (report.passed, len(report.seeds), elapsed))
        for failure in report.failures:
            print("  seed %d -> [%s] artifact %s (shrunk in %d attempts)\n"
                  "    replay: python -m repro fuzz --replay %s"
                  % (failure.seed, failure.shrunk_result.oracle,
                     failure.artifact_path, failure.shrink_attempts,
                     failure.artifact_path))
    return 0 if report.ok else 1


def cmd_serve(args):
    import asyncio

    from .serve import JobService, ServiceConfig
    from .serve.api import serve as serve_async

    workers = args.workers if args.workers is not None \
        else (os.cpu_count() or 1)
    budget = int(args.cache_budget_mb * 1024 * 1024) \
        if args.cache_budget_mb else None
    config = ServiceConfig(host=args.host, port=args.port, workers=workers,
                           cache_dir=args.cache_dir, cache_budget=budget,
                           client_budget=args.client_budget,
                           max_retries=args.max_retries)
    service = JobService(config)

    def ready(port):
        print("repro.serve listening on http://%s:%d  (workers=%d, "
              "cache=%s, budget=%s)"
              % (args.host, port, workers, args.cache_dir,
                 "%.0f MB" % args.cache_budget_mb if budget else "off"),
              flush=True)
        if args.port_file:
            with open(args.port_file, "w") as fileobj:
                fileobj.write("%d\n" % port)

    try:
        asyncio.run(serve_async(service, ready=ready))
    except KeyboardInterrupt:
        print("\nrepro.serve: shutting down")
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "arena": cmd_arena,
    "scale": cmd_scale,
    "experiment": cmd_experiment,
    "verify": cmd_verify,
    "area": cmd_area,
    "trace": cmd_trace,
    "report": cmd_report,
    "sweep": cmd_sweep,
    "profile": cmd_profile,
    "lint": cmd_lint,
    "spec": cmd_spec,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
