"""One experiment definition per paper table/figure.

Each ``figureN()`` / ``tableN()`` function runs the necessary simulations
and returns a dict with the regenerated rows/series plus a rendered ASCII
form under ``"text"``.  The paper's reported values are kept alongside in
``PAPER`` so EXPERIMENTS.md (and the benches' printed output) can show
paper-vs-measured for every artefact.

All functions accept ``scale`` (workload shrink factor) so tests can run
them quickly; published numbers in EXPERIMENTS.md use ``scale=1.0``.

Every function also accepts ``engine`` — a
:class:`~repro.harness.sweep.SweepEngine` — and submits its whole
simulation matrix as one batch of jobs, so ``repro sweep figure7
--jobs 8`` runs the 42 independent sims in parallel and replays cached
ones.  Without an explicit engine a serial, uncached one is used, which
behaves exactly like the old direct ``run_app`` chain.
"""

from dataclasses import replace

from ..analysis import compare
from ..analysis.tables import render_series, render_table
from ..common import params
from ..workloads.registry import application_names
from .sweep import SweepJob, default_engine

#: Paper-reported values used for side-by-side comparison.
PAPER = {
    # Table 3: % of producer-consumer patterns with N consumers.
    "table3": {
        "barnes": {"1": 13.9, "2": 6.8, "3": 9.4, "4": 8.1, "4+": 61.7},
        "ocean": {"1": 97.7, "2": 1.8, "3": 0.5, "4": 0.0, "4+": 0.0},
        "em3d": {"1": 67.8, "2": 32.2, "3": 0.0, "4": 0.0, "4+": 0.0},
        "lu": {"1": 99.4, "2": 0.0, "3": 0.0, "4": 0.4, "4+": 0.1},
        "cg": {"1": 0.1, "2": 0.2, "3": 0.0, "4": 0.0, "4+": 99.7},
        "mg": {"1": 78.3, "2": 11.4, "3": 3.7, "4": 2.6, "4+": 3.9},
        "appbt": {"1": 0.0, "2": 0.3, "3": 6.7, "4": 1.4, "4+": 91.6},
    },
    # Figure 7 speedups (small = 32e+32K, large = 1Ke+1M), paper §3.2 prose.
    "figure7_speedup": {
        "barnes": {"small": 1.17, "large": 1.23},
        "ocean": {"small": 1.08, "large": 1.11},
        "em3d": {"small": 1.33, "large": 1.40},
        "lu": {"small": 1.31, "large": 1.40},
        "cg": {"small": 1.06, "large": 1.06},
        "mg": {"small": 1.09, "large": 1.22},
        "appbt": {"small": 1.08, "large": 1.24},
    },
    # Headline triples: (geomean speedup, traffic cut, remote-miss cut).
    "headline": {"small": (1.13, 0.17, 0.29), "large": (1.21, 0.15, 0.40)},
    # Figure 10: speedup grows from 24% to 28% as hop latency goes
    # 25 ns -> 200 ns (Appbt).
    "figure10_speedup": {25: 1.24, 200: 1.28},
}

APPS = tuple(application_names())

_KB = 1024
_MB = 1024 * 1024


def evaluated_systems(**overrides):
    """The six Figure 7 configurations, instantiated."""
    return {name: factory(**overrides)
            for name, factory in params.EVALUATED_SYSTEMS.items()}


def _engine(engine):
    return engine if engine is not None else default_engine()


def _job(app, config, seed, scale, directory_format=None):
    # directory_format rides as a native SweepJob field (folded into the
    # config before hashing), so "coarse:4" matrices can never alias
    # "full" ones in the cache.
    return SweepJob(app=app, config=config, seed=seed, scale=scale,
                    directory_format=directory_format)


# ---------------------------------------------------------------------------
# Table 3 — number of consumers in producer-consumer patterns
# ---------------------------------------------------------------------------

def table3(scale=1.0, seed=12345, apps=APPS, engine=None,
           directory_format=None):
    """Consumer-count distribution observed by the detector (base system)."""
    buckets = ("1", "2", "3", "4", "4+")
    runs = _engine(engine).run_many(
        {app: _job(app, params.baseline(), seed, scale, directory_format)
         for app in apps})
    rows = []
    measured = {}
    for app in apps:
        run = runs[app]
        measured[app] = run.consumer_hist
        rows.append([app] + ["%.1f" % run.consumer_hist[b] for b in buckets])
    text = render_table(["app"] + ["%s (%%)" % b for b in buckets], rows,
                        title="Table 3: consumers per producer-consumer pattern")
    return {"measured": measured, "paper": PAPER["table3"], "text": text}


# ---------------------------------------------------------------------------
# Figure 7 — speedup / network messages / remote misses, 7 apps x 6 systems
# ---------------------------------------------------------------------------

def figure7(scale=1.0, seed=12345, apps=APPS, engine=None,
            directory_format=None):
    """The paper's main result: all apps on all six system presets."""
    systems = evaluated_systems()
    runs = _engine(engine).run_many(
        {(app, name): _job(app, config, seed, scale, directory_format)
         for app in apps for name, config in systems.items()})
    speedups, messages, misses = {}, {}, {}
    for app in apps:
        base = runs[(app, "base")].metrics
        speedups[app], messages[app], misses[app] = {}, {}, {}
        for name in systems:
            run_metrics = runs[(app, name)].metrics
            speedups[app][name] = compare.speedup(base, run_metrics)
            messages[app][name] = compare.normalized_messages(base, run_metrics)
            misses[app][name] = compare.normalized_remote_misses(base,
                                                                 run_metrics)
    names = list(systems)
    sections = []
    for title, table in (("speedup", speedups),
                         ("network messages (normalised)", messages),
                         ("remote misses (normalised)", misses)):
        rows = [[app] + [table[app][n] for n in names] for app in apps]
        sections.append(render_table(["app"] + names, rows,
                                     title="Figure 7: %s" % title))
    return {"speedup": speedups, "messages": messages, "misses": misses,
            "systems": names, "paper": PAPER["figure7_speedup"],
            "text": "\n\n".join(sections)}


def headline(scale=1.0, seed=12345, apps=APPS, engine=None,
             directory_format=None):
    """Geomean speedup + mean traffic/remote-miss reduction, small & large."""
    configs = {"base": params.baseline(), "small": params.small(),
               "large": params.large()}
    runs = _engine(engine).run_many(
        {(cname, app): _job(app, config, seed, scale, directory_format)
         for cname, config in configs.items() for app in apps})
    out = {}
    base_runs = {app: runs[("base", app)].metrics for app in apps}
    for cname in ("small", "large"):
        enh = {app: runs[(cname, app)].metrics for app in apps}
        out[cname] = compare.headline(base_runs, enh)
    rows = []
    for cname in ("small", "large"):
        p = PAPER["headline"][cname]
        m = out[cname]
        rows.append([cname, "%.2f/%.2f" % (p[0], m[0]),
                     "%.0f%%/%.0f%%" % (100 * p[1], 100 * m[1]),
                     "%.0f%%/%.0f%%" % (100 * p[2], 100 * m[2])])
    text = render_table(
        ["config", "speedup paper/ours", "traffic cut paper/ours",
         "remote-miss cut paper/ours"], rows,
        title="Headline results (paper vs measured)")
    return {"measured": out, "paper": PAPER["headline"], "text": text}


def delegation_only(scale=1.0, seed=12345, apps=APPS, engine=None,
                    directory_format=None):
    """Paper §3.2: delegation without updates lands within ~1% of baseline."""
    configs = {"base": params.baseline(), "dele": params.delegation_only()}
    runs = _engine(engine).run_many(
        {(cname, app): _job(app, config, seed, scale, directory_format)
         for cname, config in configs.items() for app in apps})
    out = {}
    for app in apps:
        out[app] = compare.speedup(runs[("base", app)].metrics,
                                   runs[("dele", app)].metrics)
    rows = [[app, out[app]] for app in apps]
    text = render_table(["app", "delegation-only speedup"], rows,
                        title="Delegation-only vs baseline (paper: within ~1%)")
    return {"measured": out, "text": text}


# ---------------------------------------------------------------------------
# Figure 8 — smarter vs larger caches (equal silicon area)
# ---------------------------------------------------------------------------

def figure8(scale=1.0, seed=12345, apps=APPS, engine=None,
            directory_format=None):
    """1 MB L2 baseline vs 1 MB L2 + extensions vs 1.04 MB L2 baseline.

    The equal-area L2 size is *derived* from the paper's §3.3.1 SRAM
    arithmetic (see :mod:`repro.analysis.area`) rather than hard-coded.
    """
    from ..analysis.area import equal_area_l2_bytes
    l2_1m = params.CacheConfig(1 * _MB, 4, latency=10)
    l2_104m = params.CacheConfig(
        equal_area_l2_bytes(1 * _MB, params.small()), 4, latency=10)
    configs = {
        "base": replace(params.baseline(), l2=l2_1m),
        "smart": replace(params.small(), l2=l2_1m),
        "bigger": replace(params.baseline(), l2=l2_104m),
    }
    runs = _engine(engine).run_many(
        {(cname, app): _job(app, config, seed, scale, directory_format)
         for cname, config in configs.items() for app in apps})
    speedups = {}
    for app in apps:
        base = runs[("base", app)].metrics
        speedups[app] = {
            "base_1M": 1.0,
            "deledc_32K_RAC": compare.speedup(
                base, runs[("smart", app)].metrics),
            "equal_area_1.04M": compare.speedup(
                base, runs[("bigger", app)].metrics),
        }
    rows = [[app, speedups[app]["deledc_32K_RAC"],
             speedups[app]["equal_area_1.04M"]] for app in apps]
    text = render_table(
        ["app", "32e deledc + 32K RAC", "equal-area 1.04M L2"], rows,
        title="Figure 8: smarter vs larger caches (speedup over 1M L2 base)")
    return {"measured": speedups, "text": text}


# ---------------------------------------------------------------------------
# Figure 9 — sensitivity to the intervention delay interval
# ---------------------------------------------------------------------------

#: The paper sweeps 5 cycles .. 500M cycles plus "infinite".
FIGURE9_DELAYS = (5, 50, 500, 5_000, 50_000, 500_000, 5_000_000)
FIGURE9_INFINITE = 10 ** 12  # effectively "never downgrade speculatively"


def figure9(scale=1.0, seed=12345, apps=APPS, delays=FIGURE9_DELAYS,
            include_infinite=True, engine=None, directory_format=None):
    """Execution time vs intervention delay, normalised to the 5-cycle run."""
    sweep = list(delays)
    if include_infinite:
        sweep.append(FIGURE9_INFINITE)
    runs = _engine(engine).run_many(
        {(app, delay): _job(
            app, params.small().with_protocol(intervention_delay=delay),
            seed, scale, directory_format)
         for app in apps for delay in sweep})
    series = {}
    for app in apps:
        points = []
        reference = None
        for delay in sweep:
            cycles = runs[(app, delay)].metrics.cycles
            if reference is None:
                reference = cycles
            label = "inf" if delay == FIGURE9_INFINITE else delay
            points.append((label, cycles / reference))
        series[app] = points
    text = render_series(
        "Figure 9: execution time vs intervention delay (normalised to "
        "5-cycle delay)", "intervention delay (cycles)", series)
    return {"measured": series, "text": text}


# ---------------------------------------------------------------------------
# Figure 10 — sensitivity to network hop latency (Appbt)
# ---------------------------------------------------------------------------

#: Hop latencies in nanoseconds (cycles = 2 * ns at 2 GHz).
FIGURE10_HOPS_NS = (25, 50, 100, 200)


def figure10(scale=1.0, seed=12345, app="appbt", hops_ns=FIGURE10_HOPS_NS,
             engine=None, directory_format=None):
    """Baseline + enhanced execution time and speedup vs hop latency."""
    def with_hop(config, ns):
        return replace(config, network=replace(config.network,
                                               hop_latency=2 * ns))

    jobs = {}
    for ns in hops_ns:
        jobs[(ns, "base")] = _job(app, with_hop(params.baseline(), ns),
                                  seed, scale, directory_format)
        jobs[(ns, "enh")] = _job(app, with_hop(params.small(), ns),
                                 seed, scale, directory_format)
    runs = _engine(engine).run_many(jobs)
    points = []
    for ns in hops_ns:
        base = runs[(ns, "base")].metrics
        enh = runs[(ns, "enh")].metrics
        points.append({"hop_ns": ns, "base_cycles": base.cycles,
                       "enh_cycles": enh.cycles,
                       "speedup": compare.speedup(base, enh)})
    rows = [[p["hop_ns"], p["base_cycles"], p["enh_cycles"], p["speedup"]]
            for p in points]
    text = render_table(
        ["hop (ns)", "base cycles", "enhanced cycles", "speedup"], rows,
        title="Figure 10: sensitivity to network hop latency (%s)" % app)
    return {"measured": points, "paper": PAPER["figure10_speedup"],
            "text": text}


# ---------------------------------------------------------------------------
# Figure 11 — sensitivity to delegate cache size (MG)
# ---------------------------------------------------------------------------

FIGURE11_ENTRIES = (32, 64, 128, 256, 512, 1024)


def figure11(scale=1.0, seed=12345, app="mg", entries=FIGURE11_ENTRIES,
             engine=None, directory_format=None):
    """Speedup and normalised messages vs delegate-cache entries (32K RAC),
    plus the 1K-entry + 1M-RAC point, mirroring the paper's bar chart."""
    sweep = ([("base", params.baseline())]
             + [((count, "32K"),
                 params.enhanced(delegate_entries=count, rac_bytes=32 * _KB))
                for count in entries]
             + [((1024, "1M"),
                 params.enhanced(delegate_entries=1024, rac_bytes=1 * _MB))])
    runs = _engine(engine).run_many(
        {key: _job(app, config, seed, scale, directory_format)
         for key, config in sweep})
    base = runs["base"].metrics
    points = []
    for count in entries:
        metrics = runs[(count, "32K")].metrics
        points.append({"entries": count, "rac": "32K",
                       "speedup": compare.speedup(base, metrics),
                       "messages": compare.normalized_messages(base, metrics)})
    metrics = runs[(1024, "1M")].metrics
    points.append({"entries": 1024, "rac": "1M",
                   "speedup": compare.speedup(base, metrics),
                   "messages": compare.normalized_messages(base, metrics)})
    rows = [[p["entries"], p["rac"], p["speedup"], p["messages"]]
            for p in points]
    text = render_table(["entries", "RAC", "speedup", "messages (norm)"],
                        rows,
                        title="Figure 11: delegate cache size sweep (%s)" % app)
    return {"measured": points, "text": text}


# ---------------------------------------------------------------------------
# Figure 12 — sensitivity to RAC size (Appbt)
# ---------------------------------------------------------------------------

FIGURE12_RAC_KB = (32, 64, 128, 256, 512, 1024)


def figure12(scale=1.0, seed=12345, app="appbt", rac_kb=FIGURE12_RAC_KB,
             engine=None, directory_format=None):
    """Speedup and normalised messages vs RAC size (32-entry delegate
    tables), plus the 1K-entry + 1M-RAC point."""
    sweep = ([("base", params.baseline())]
             + [((kb, 32),
                 params.enhanced(delegate_entries=32, rac_bytes=kb * _KB))
                for kb in rac_kb]
             + [((1024, 1024),
                 params.enhanced(delegate_entries=1024, rac_bytes=1 * _MB))])
    runs = _engine(engine).run_many(
        {key: _job(app, config, seed, scale, directory_format)
         for key, config in sweep})
    base = runs["base"].metrics
    points = []
    for kb in rac_kb:
        metrics = runs[(kb, 32)].metrics
        points.append({"rac_kb": kb, "entries": 32,
                       "speedup": compare.speedup(base, metrics),
                       "messages": compare.normalized_messages(base, metrics)})
    metrics = runs[(1024, 1024)].metrics
    points.append({"rac_kb": 1024, "entries": 1024,
                   "speedup": compare.speedup(base, metrics),
                   "messages": compare.normalized_messages(base, metrics)})
    rows = [[p["rac_kb"], p["entries"], p["speedup"], p["messages"]]
            for p in points]
    text = render_table(["RAC (KB)", "entries", "speedup", "messages (norm)"],
                        rows,
                        title="Figure 12: RAC size sweep (%s)" % app)
    return {"measured": points, "text": text}
