"""The scaling study: storm traffic on 256-1024-node machines.

The paper evaluates 16 nodes; this harness answers "what breaks first
when the machine grows" by sweeping node count x directory format x
protocol over the canonical storm workload
(:func:`repro.fuzz.scenarios.storm_workload_kwargs` — the same traffic
the fuzz audit replays, so the report and the oracles measure identical
runs).  Per cell it reports end-to-end cycles, network traffic, update
fan-out, NACK/retry pressure and miss-latency p50/p95; the interesting
curve is how the compressed directory formats (``coarse:G``,
``limited:K``) trade their constant-area vectors for invalidation and
speculative-update storms as the machine grows.

Every cell is one :class:`~repro.harness.sweep.SweepJob` submitted
through a :class:`~repro.harness.sweep.SweepEngine`, so scale sweeps
parallelise and cache like every other experiment; node count, format
and protocol all ride in the config and therefore in the cache key.
"""

from dataclasses import replace

from ..analysis.tables import render_table
from ..common import stats as S
from ..directory.formats import DirectoryFormat
from ..fuzz.runner import build_workload
from ..fuzz.scenarios import FuzzScenario
from ..obs import TraceConfig, Tracer
from ..protocol.arena import resolve_protocol
from ..sim.system import System
from .arena import _merged_latency, _percentile
from .sweep import SweepJob

#: Default sweep axes: small enough that the default invocation finishes
#: in minutes, while still crossing the coarse/limited break-even points.
DEFAULT_NODES = (16, 64, 256)
DEFAULT_FORMATS = ("full", "coarse:8", "coarse:16", "limited:2", "limited:4")
DEFAULT_PROTOCOLS = ("adaptive",)


def scale_runner(job):
    """Worker-side runner for scale cells (module-level so it pickles by
    reference).  Rebuilds the canonical storm workload for the job's node
    count, runs it under the job's exact config — format and protocol
    included — and returns counters plus traced miss-latency histograms.
    """
    scenario = FuzzScenario.storm(job.seed, num_nodes=job.config.num_nodes,
                                  scale=job.scale)
    # The job's config is authoritative (it is what the cache key hashed);
    # the scenario only contributes the workload and the run caps.
    scenario = replace(scenario, config=job.config)
    build = build_workload(scenario)
    tracer = Tracer(TraceConfig(capture_messages=False))
    system = System(job.config, check_coherence=job.check_coherence,
                    tracer=tracer, chaos=job.chaos)
    result = system.run(build.per_cpu_ops, placements=build.placements,
                        max_cycles=scenario.max_cycles,
                        max_events=scenario.max_events)
    return {
        "cycles": result.cycles,
        "events": result.events_processed,
        "stats": dict(result.stats),
        "obs": result.extras.get("obs"),
    }


class ScaleReport:
    """Results of one scaling sweep: ``cells[(nodes, fmt, proto)]``."""

    def __init__(self, nodes, formats, protocols, cells, seed, scale):
        self.nodes = list(nodes)
        self.formats = list(formats)
        self.protocols = list(protocols)
        self.cells = cells
        self.seed = seed
        self.scale = scale

    def row(self, num_nodes, fmt, protocol):
        """The report row for one cell, as a plain dict."""
        payload = self.cells[(num_nodes, fmt, protocol)]
        stats = payload["stats"]
        latency = _merged_latency(payload.get("obs"))
        updates = stats.get(S.UPDATES_SENT, 0)
        pushes = stats.get(S.INTERVENTIONS, 0)
        return {
            "nodes": num_nodes,
            "format": fmt,
            "protocol": protocol,
            "cycles": payload["cycles"],
            "events": payload["events"],
            "traffic_bytes": stats.get(S.MSG_BYTES, 0),
            "invalidations": stats.get("msg.sent.INV", 0),
            "updates_sent": updates,
            "update_fanout": round(updates / pushes, 2) if pushes else 0.0,
            "nacks": stats.get(S.NACKS, 0),
            "retries": stats.get(S.RETRIES, 0),
            "miss_p50": _percentile(latency, 0.50),
            "miss_p95": _percentile(latency, 0.95),
            "dir_bits_per_entry":
                DirectoryFormat.parse(fmt).bits_per_entry(num_nodes),
        }

    def rows(self):
        """Every cell's row, node-count-major (the breakdown curves)."""
        return [self.row(n, fmt, proto)
                for n in self.nodes
                for fmt in self.formats
                for proto in self.protocols]

    def render_text(self):
        """The scaling breakdown: one table per node count."""
        headers = ["format", "protocol", "cycles", "traffic B", "INVs",
                   "updates", "fanout", "NACKs", "retries", "lat p50",
                   "lat p95", "dir b/entry"]
        blocks = ["scaling study  (storm workload, seed %d, scale %g)"
                  % (self.seed, self.scale)]
        for num_nodes in self.nodes:
            rows = []
            for fmt in self.formats:
                for proto in self.protocols:
                    rec = self.row(num_nodes, fmt, proto)
                    rows.append([
                        rec["format"], rec["protocol"], rec["cycles"],
                        rec["traffic_bytes"], rec["invalidations"],
                        rec["updates_sent"], rec["update_fanout"],
                        rec["nacks"], rec["retries"],
                        rec["miss_p50"] if rec["miss_p50"] is not None
                        else "-",
                        rec["miss_p95"] if rec["miss_p95"] is not None
                        else "-",
                        rec["dir_bits_per_entry"]])
            blocks.append(render_table(headers, rows,
                                       title="[%d nodes]" % num_nodes))
        return "\n\n".join(blocks)

    def to_json(self):
        """JSON-safe document of every cell's report row."""
        return {
            "seed": self.seed,
            "scale": self.scale,
            "nodes": self.nodes,
            "formats": self.formats,
            "protocols": self.protocols,
            "rows": self.rows(),
        }


def run_scale(nodes=DEFAULT_NODES, formats=DEFAULT_FORMATS,
              protocols=DEFAULT_PROTOCOLS, seed=0, scale=1.0,
              check_coherence=True, engine=None):
    """Sweep ``nodes`` x ``formats`` x ``protocols`` storm runs and
    return a :class:`ScaleReport`.

    Every cell shares the storm scenario's config recipe — only the axis
    under study varies — and runs with online coherence checking unless
    ``check_coherence`` is off (the report doubles as a scaled-up oracle
    pass).  ``engine`` must have been built with ``runner=scale_runner``
    (CLI and :func:`scale_engine` do); the default is serial, uncached.
    """
    for name in protocols:
        resolve_protocol(name)  # fail fast on typos, before any sim runs
    for fmt in formats:
        DirectoryFormat.parse(fmt)
    if engine is None:
        engine = scale_engine()
    jobs = {}
    for num_nodes in nodes:
        for fmt in formats:
            for proto in protocols:
                scenario = FuzzScenario.storm(
                    seed, num_nodes=num_nodes, directory_format=fmt,
                    protocol=proto, scale=scale)
                jobs[(num_nodes, fmt, proto)] = SweepJob(
                    app="storm", config=scenario.config, seed=seed,
                    scale=scale, check_coherence=check_coherence)
    cells = engine.run_many(jobs)
    return ScaleReport(nodes=nodes, formats=formats, protocols=protocols,
                       cells=cells, seed=seed, scale=scale)


def scale_engine(jobs=1, cache=False, **kwargs):
    """A :class:`SweepEngine` wired for scale payloads (the engine's
    default decoder is the identity when a custom runner is set)."""
    from .sweep import SweepEngine

    return SweepEngine(jobs=jobs, cache=cache, runner=scale_runner,
                       **kwargs)


__all__ = ["DEFAULT_FORMATS", "DEFAULT_NODES", "DEFAULT_PROTOCOLS",
           "ScaleReport", "run_scale", "scale_engine", "scale_runner"]
