"""Parallel sweep engine with an on-disk result cache.

Every paper artefact is a matrix of independent ``run_app`` simulations
(Figure 7 alone is 42), each a deterministic, self-contained
:class:`~repro.sim.System`.  This module turns those serial chains into
*jobs*:

* a :class:`SweepJob` names one simulation by content — app name,
  :class:`~repro.common.params.SystemConfig`, seed, scale, num_cpus — and
  :func:`job_key` hashes that content into a stable identifier;
* a :class:`SweepEngine` fans a batch of jobs out over a
  ``multiprocessing`` worker pool (``jobs=1`` runs in-process), dedupes
  identical jobs within the batch, and replays finished simulations from
  an on-disk cache under ``.repro_cache/`` so re-running an experiment
  only executes what changed;
* worker failures are captured and re-raised as :class:`SweepError`
  carrying the failing job's key and the worker traceback, instead of
  hanging the pool;
* progress/ETA reporting plugs in through the same hook style the obs
  subsystem uses for tracer callbacks, with per-job wall-times kept in an
  :class:`~repro.obs.metrics.Histogram`.

Because each simulation is deterministic, parallel results are identical
to serial ones: the cache stores the raw ``RunResult`` counters and the
evaluation-facing :class:`~repro.harness.runner.AppRun` is rebuilt from
them exactly as ``run_app`` builds it.

Typical use::

    from repro.common import params
    from repro.harness.sweep import SweepEngine, SweepJob

    engine = SweepEngine(jobs=4, cache=True)
    runs = engine.run_many({
        (app, name): SweepJob(app=app, config=config, scale=0.25)
        for app in ("em3d", "lu")
        for name, config in params.EVALUATED_SYSTEMS.items()
    })
    print(runs[("em3d", "base")].metrics.cycles)
"""

import gc
import hashlib
import json
import os
import sys
import tempfile
import time
import traceback
from concurrent import futures
from dataclasses import dataclass, field, replace
from typing import Optional

from ..common.errors import ReproError
from ..common.params import config_digest, config_to_dict
from ..network.chaos import chaos_to_dict
from ..obs.metrics import Histogram, exponential_bounds

#: Bump when the cached payload layout changes; old entries stop matching.
#: 2: job content grew a ``chaos`` field (fault injection, repro.fuzz).
#: 3: job content grew a ``runner`` identity tag, so custom-runner jobs
#:    (fuzz corpora, the repro.serve traced runner) can share the cache
#:    without replaying another runner's output.
CACHE_FORMAT = 3

#: Default cache location, relative to the current working directory.
CACHE_DIR = ".repro_cache"

#: A lock older than this is presumed abandoned (a crashed holder) and is
#: reclaimed.  Cache critical sections are file scans + unlinks, far below
#: this.
STALE_LOCK_SECONDS = 30.0


class SweepError(ReproError):
    """A sweep job failed in a worker; carries the job key and traceback."""

    def __init__(self, key, job, worker_traceback):
        self.key = key
        self.job = job
        self.worker_traceback = worker_traceback
        super().__init__(
            "sweep job %s (%s) failed in worker:\n%s"
            % (key[:16], job.describe() if job is not None else "?",
               worker_traceback))


@dataclass(frozen=True)
class SweepJob:
    """One simulation, named by content (what :func:`job_key` hashes).

    ``directory_format`` and ``protocol_name`` are cross-cutting config
    knobs: when given, they are folded into ``config`` at construction
    (before any key is computed), so the content hash — and therefore the
    cache — can never alias a ``coarse:4`` run with a ``full`` one.  This
    is the native replacement for the retired ``OverrideEngine`` wrapper,
    which rewrote configs at submission time instead.
    """

    app: str
    config: object  # SystemConfig
    seed: int = 12345
    scale: float = 1.0
    num_cpus: Optional[int] = None
    check_coherence: bool = True
    chaos: Optional[object] = None  # ChaosConfig (fault injection) or None
    directory_format: Optional[str] = None  # None = keep config's value
    protocol_name: Optional[str] = None     # None = keep config's value

    def __post_init__(self):
        overrides = {}
        if self.directory_format is not None:
            overrides["directory_format"] = self.directory_format
        if self.protocol_name is not None:
            overrides["protocol_name"] = self.protocol_name
        if overrides:
            object.__setattr__(
                self, "config", replace(self.config, **overrides))

    @property
    def key(self):
        return job_key(self)

    def describe(self):
        return "%s seed=%d scale=%g cpus=%s" % (
            self.app, self.seed, self.scale,
            self.num_cpus if self.num_cpus is not None
            else self.config.num_nodes)


def runner_tag(runner):
    """Stable identity of a custom runner, or None for the default path.

    Module + qualname is what the pickle channel sends to workers, so two
    runners share a tag exactly when the pool would execute the same code.
    """
    if runner is None:
        return None
    return "%s:%s" % (getattr(runner, "__module__", "?"),
                      getattr(runner, "__qualname__", repr(runner)))


def job_key(job, runner=None):
    """Deterministic content hash of a :class:`SweepJob`.

    Built from the canonical JSON of (app, config, seed, scale, num_cpus,
    check_coherence, runner identity, cache format), then folded through
    the config's sha256 digest — stable across processes, sessions and
    machines.  ``runner`` is the engine's custom runner (if any): its
    identity is part of the key, so cached entries can never replay a
    different runner's output.
    """
    spec = {
        "format": CACHE_FORMAT,
        "app": job.app,
        "config": config_digest(job.config),
        "seed": job.seed,
        "scale": job.scale,
        "num_cpus": job.num_cpus,
        "check_coherence": job.check_coherence,
        "chaos": chaos_to_dict(job.chaos),
        "runner": runner_tag(runner),
    }
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Worker-side execution: runs in the pool process (or in-process when
# jobs=1).  Returns plain JSON-safe payloads so results survive both the
# pickle channel and the on-disk cache identically.
# ---------------------------------------------------------------------------


def _execute_job(job, runner=None):
    """Run one job; never raises (errors come back as structured tuples).

    ``runner`` overrides what "execute" means: a module-level callable
    (it crosses the pickle channel by reference) taking the job and
    returning a JSON-safe payload.  None means the default run_app path.
    """
    try:
        if runner is not None:
            return ("ok", runner(job))
        return ("ok", _payload_from_run(_run_job(job)))
    except BaseException:
        return ("error", traceback.format_exc())


def _run_job(job):
    from .runner import run_app

    return run_app(job.app, job.config, num_cpus=job.num_cpus,
                   seed=job.seed, scale=job.scale,
                   check_coherence=job.check_coherence,
                   chaos=job.chaos)


def _payload_from_run(run):
    """The JSON-safe cacheable core of an AppRun (raw RunResult counters)."""
    metrics = run.metrics
    return {
        "cycles": metrics.cycles,
        "stats": dict(run.stats),
    }


def _apprun_from_payload(job, payload):
    """Rebuild an AppRun from a payload exactly as ``run_app`` builds it."""
    from ..analysis.metrics import consumer_histogram, metrics_from_result
    from ..sim.system import RunResult
    from .runner import AppRun

    result = RunResult(cycles=payload["cycles"], stats=dict(payload["stats"]),
                       cpu_finish_times=[], ops_executed=0,
                       events_processed=0)
    return AppRun(app=job.app,
                  metrics=metrics_from_result(result),
                  consumer_hist=consumer_histogram(result),
                  stats=result.stats)


# ---------------------------------------------------------------------------
# On-disk result cache.
# ---------------------------------------------------------------------------


class CacheLock:
    """A multi-process mutex: an ``os.O_EXCL``-created lockfile.

    ``acquire`` spins (with a small sleep) until it wins the exclusive
    create.  A lock whose file is older than ``stale_after`` seconds —
    a holder that crashed mid-eviction — is *reclaimed*: the reclaimer
    atomically renames the stale file aside (only one racer can win the
    rename) and retries the create, so two processes can never both
    believe they hold the lock.
    """

    def __init__(self, path, stale_after=STALE_LOCK_SECONDS, timeout=30.0,
                 poll=0.01):
        self.path = path
        self.stale_after = stale_after
        self.timeout = timeout
        self.poll = poll
        self._fd = None

    def acquire(self):
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(self._fd, b"%d\n" % os.getpid())
                return self
            except FileExistsError:
                self._reclaim_if_stale()
            if time.monotonic() >= deadline:
                raise TimeoutError("could not acquire cache lock %s within "
                                   "%.1fs" % (self.path, self.timeout))
            time.sleep(self.poll)

    def _reclaim_if_stale(self):
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # released (or reclaimed) under us: just retry acquire
        if age < self.stale_after:
            return
        aside = "%s.stale.%d" % (self.path, os.getpid())
        try:
            os.replace(self.path, aside)  # one racer wins the rename
        except OSError:
            return
        try:
            os.unlink(aside)
        except OSError:
            pass

    def release(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc):
        self.release()


class ResultCache:
    """Content-addressed store of finished-job payloads under ``root``.

    Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per
    finished simulation, atomically written (tmp file + ``os.replace``)
    so a crashed writer never leaves a torn entry.  Invalidation is by
    key construction: keys hash the full job content plus
    :data:`CACHE_FORMAT`, so changing any input (or the payload layout)
    simply misses.

    The cache is safe to share between processes: entry reads and writes
    are lock-free (atomic replace means a reader sees either the old or
    the new complete document), while eviction — the only multi-file
    critical section — runs under an ``os.O_EXCL`` lockfile with
    stale-lock reclamation (:class:`CacheLock`).

    ``budget_bytes`` caps the total entry size: every ``put`` beyond the
    budget evicts least-recently-used entries (hits bump an entry's
    mtime) until the cache fits.  ``hits`` / ``misses`` / ``evictions``
    counters feed the serving layer's metrics endpoint.
    """

    def __init__(self, root=CACHE_DIR, budget_bytes=None,
                 stale_lock_after=STALE_LOCK_SECONDS):
        self.root = root
        self.budget_bytes = budget_bytes
        self.stale_lock_after = stale_lock_after
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def _lock(self):
        os.makedirs(self.root, exist_ok=True)
        return CacheLock(os.path.join(self.root, ".evict.lock"),
                         stale_after=self.stale_lock_after)

    def get(self, key):
        """The cached payload for ``key``, or None (corrupt entries miss)."""
        path = self._path(key)
        try:
            with open(path) as fileobj:
                doc = json.load(fileobj)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if doc.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # bump recency for LRU eviction
        except OSError:
            pass  # entry evicted between read and touch: the read stands
        return doc.get("result")

    def put(self, key, job, payload, elapsed):
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "job": {
                "app": job.app,
                "config": config_to_dict(job.config),
                "seed": job.seed,
                "scale": job.scale,
                "num_cpus": job.num_cpus,
                "check_coherence": job.check_coherence,
                "chaos": chaos_to_dict(job.chaos),
            },
            "elapsed_s": elapsed,
            "result": payload,
        }
        handle, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                            suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as fileobj:
                json.dump(doc, fileobj, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if self.budget_bytes is not None:
            self._evict_over_budget(keep=key)

    # -- eviction ----------------------------------------------------------

    def _entries(self):
        """[(mtime, size, path)] for every entry currently on disk."""
        entries = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return entries
        for shard in shards:
            if len(shard) != 2:
                continue
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # evicted by a racer mid-scan
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def size_bytes(self):
        """Total bytes of cache entries on disk (scans the tree)."""
        return sum(size for _, size, _ in self._entries())

    def _evict_over_budget(self, keep=None):
        """Unlink oldest-mtime entries until the cache fits the budget.

        ``keep`` names the just-written key: it is never evicted, so a
        budget smaller than one entry still serves the current job.
        """
        keep_path = self._path(keep) if keep is not None else None
        with self._lock():
            entries = sorted(self._entries())
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.budget_bytes:
                    break
                if path == keep_path:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue  # already gone: a racer evicted it
                total -= size
                self.evictions += 1

    def stats(self):
        """Hit/miss/eviction counters (this process's view of the cache)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


# ---------------------------------------------------------------------------
# Progress hooks (the obs-style callback surface).
# ---------------------------------------------------------------------------


class SweepProgress:
    """Console progress/ETA reporter.

    Implements the engine's hook surface the same way the obs tracer
    exposes per-event callbacks, and keeps per-job wall-times in an obs
    :class:`~repro.obs.metrics.Histogram` (milliseconds, exponential
    buckets) so the ETA comes from the running mean without storing
    per-job samples.
    """

    def __init__(self, stream=None, min_interval=0.5):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.job_ms = Histogram(exponential_bounds(1, 2, 24))  # 1ms..~2.3h
        self._total = 0
        self._done = 0
        self._cached = 0
        self._last_report = 0.0

    # -- hook surface (called by SweepEngine) ------------------------------

    def sweep_started(self, total, cached):
        self._total = total
        self._done = cached
        self._cached = cached
        if cached:
            self._emit(force=True)

    def job_finished(self, key, job, elapsed, cached):
        self._done += 1
        if cached:
            self._cached += 1
        else:
            self.job_ms.record(max(1, int(elapsed * 1000)))
        self._emit(force=self._done == self._total)

    def sweep_finished(self, report):
        self._emit(force=True)
        self.stream.write("\n")
        self.stream.flush()

    # -- rendering ---------------------------------------------------------

    def _eta_seconds(self):
        remaining = self._total - self._done
        if not remaining or not self.job_ms.count:
            return 0.0
        return remaining * self.job_ms.mean / 1000.0

    def _emit(self, force=False):
        now = time.monotonic()
        if not force and now - self._last_report < self.min_interval:
            return
        self._last_report = now
        eta = self._eta_seconds()
        self.stream.write(
            "\rsweep: %d/%d jobs (%d cached)  mean %.1fs/job  ETA %ds   "
            % (self._done, self._total, self._cached,
               self.job_ms.mean / 1000.0, int(round(eta))))
        self.stream.flush()


class _NullProgress:
    """The no-op hook target (mirrors the tracer's disabled fast path)."""

    def sweep_started(self, total, cached):
        pass

    def job_finished(self, key, job, elapsed, cached):
        pass

    def sweep_finished(self, report):
        pass


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


@dataclass
class SweepReport:
    """What one :meth:`SweepEngine.run_many` call did."""

    total: int = 0          # caller-visible jobs (before dedup)
    unique: int = 0         # distinct simulations
    executed: int = 0       # simulations actually run
    cached: int = 0         # served from the on-disk cache
    elapsed: float = 0.0    # wall-clock seconds for the batch
    job_seconds: dict = field(default_factory=dict)  # key -> worker seconds


class SweepEngine:
    """Runs batches of :class:`SweepJob` with caching and a worker pool.

    ``jobs`` is the worker-pool width; 1 (the default) executes in-process
    with no multiprocessing involved.  ``cache`` turns the on-disk result
    cache on; ``cache_dir`` relocates it.  ``progress`` is a hook object
    (see :class:`SweepProgress`); None disables reporting.

    ``runner``/``decoder`` repurpose the pool for non-AppRun work (the
    fuzz engine's corpus runs and the repro.serve job service ride the
    same dedupe/pool/progress machinery): ``runner`` is a *module-level*
    callable ``job -> JSON-safe payload`` executed worker-side,
    ``decoder`` a callable ``(job, payload) -> result`` applied
    parent-side.  The runner's identity is part of :func:`job_key`, so
    custom-runner jobs share the cache without ever replaying a
    different runner's output.  ``cache_budget`` (bytes) turns on LRU
    eviction; see :class:`ResultCache`.
    """

    def __init__(self, jobs=1, cache=False, cache_dir=CACHE_DIR,
                 progress=None, mp_context="spawn", runner=None,
                 decoder=None, cache_budget=None, clamp=True):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %r" % jobs)
        self.jobs = jobs
        # More spawn workers than cores is pure overhead (~0.5-1s python
        # start-up per worker) on top of zero parallel speedup, so the
        # effective pool width is clamped to the machine.  ``clamp=False``
        # opts out — tests exercising the pool on small CI boxes need the
        # spawn path regardless of core count.
        if clamp:
            self.effective_jobs = max(1, min(jobs, os.cpu_count() or 1))
        else:
            self.effective_jobs = jobs
        self.cache = (ResultCache(cache_dir, budget_bytes=cache_budget)
                      if cache else None)
        self.runner = runner
        if decoder is None:
            decoder = _apprun_from_payload if runner is None \
                else (lambda job, payload: payload)
        self.decoder = decoder
        self.progress = progress if progress is not None else _NullProgress()
        self.mp_context = mp_context
        self.last_report = SweepReport()

    # -- public API --------------------------------------------------------

    def run_app(self, app, config, seed=12345, scale=1.0, num_cpus=None,
                check_coherence=True):
        """One-job convenience: same signature spirit as ``runner.run_app``."""
        job = SweepJob(app=app, config=config, seed=seed, scale=scale,
                       num_cpus=num_cpus, check_coherence=check_coherence)
        return self.run_many({0: job})[0]

    def run_many(self, jobs):
        """Execute a batch and return results under the caller's keys.

        ``jobs`` maps arbitrary hashable caller keys to :class:`SweepJob`
        (a list/tuple works too: indexes become the keys).  Identical jobs
        (same content hash) are deduped and executed once.  Returns a dict
        of caller key -> :class:`~repro.harness.runner.AppRun`.
        """
        if not isinstance(jobs, dict):
            jobs = dict(enumerate(jobs))
        started = time.monotonic()
        content = {caller: job_key(job, self.runner)
                   for caller, job in jobs.items()}
        unique = {}
        for caller, job in jobs.items():
            unique.setdefault(content[caller], job)

        payloads, times = {}, {}
        if self.cache is not None:
            for key in unique:
                lookup_started = time.monotonic()
                hit = self.cache.get(key)
                if hit is not None:
                    payloads[key] = hit
                    # Hits land in job_seconds too (as replay time), so
                    # per-job latency views cover the whole batch.
                    times[key] = time.monotonic() - lookup_started
        misses = {key: job for key, job in unique.items()
                  if key not in payloads}

        self.progress.sweep_started(len(unique), len(payloads))
        for key in payloads:
            self.progress.job_finished(key, unique[key],
                                       times.get(key, 0.0), True)

        if misses:
            self._execute(misses, payloads, times)

        report = SweepReport(
            total=len(jobs), unique=len(unique), executed=len(misses),
            cached=len(unique) - len(misses),
            elapsed=time.monotonic() - started, job_seconds=times)
        self.last_report = report
        self.progress.sweep_finished(report)
        return {caller: self.decoder(jobs[caller], payloads[content[caller]])
                for caller in jobs}

    # -- execution ---------------------------------------------------------

    def _execute(self, misses, payloads, times):
        if self.effective_jobs == 1 or len(misses) == 1:
            # Serial in-process runs pause the cyclic GC: simulations
            # allocate heavily (events, payload dicts) but the message
            # pool and per-job teardown bound real garbage, so the
            # per-collection pauses are pure overhead (~10% of a sweep).
            # One collect at the end reclaims the Systems' cycles.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                for key, job in misses.items():
                    job_started = time.monotonic()
                    status, payload = _execute_job(job, self.runner)
                    self._finish(key, job, status, payload, payloads, times,
                                 time.monotonic() - job_started)
            finally:
                if gc_was_enabled:
                    gc.enable()
                    gc.collect()
            return
        import multiprocessing
        from concurrent.futures.process import BrokenProcessPool

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.effective_jobs, len(misses))
        with futures.ProcessPoolExecutor(max_workers=workers,
                                         mp_context=context) as pool:
            pending = {}
            for key, job in misses.items():
                pending[pool.submit(_execute_job, job, self.runner)] = (
                    key, job, time.monotonic())
            for future in futures.as_completed(pending):
                key, job, job_started = pending[future]
                try:
                    status, payload = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault, OOM-kill): name the job
                    # instead of letting the pool hang or the error float
                    # up anonymously.
                    raise SweepError(key, job,
                                     "worker process died (pool broken)")
                self._finish(key, job, status, payload, payloads, times,
                             time.monotonic() - job_started)

    def _finish(self, key, job, status, payload, payloads, times, elapsed):
        if status != "ok":
            raise SweepError(key, job, payload)
        payloads[key] = payload
        times[key] = elapsed
        if self.cache is not None:
            self.cache.put(key, job, payload, elapsed)
        self.progress.job_finished(key, job, elapsed, False)


#: The default engine behind experiments called without an explicit one:
#: serial, uncached — byte-identical behaviour to the old direct run_app
#: chain (and no surprise disk writes from tests or library users).
_DEFAULT_ENGINE = None


def default_engine():
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = SweepEngine(jobs=1, cache=False)
    return _DEFAULT_ENGINE
