"""Experiment harness: app runner + one definition per paper artefact."""

from . import experiments
from .runner import AppRun, run_app, run_matrix

__all__ = ["experiments", "AppRun", "run_app", "run_matrix"]
