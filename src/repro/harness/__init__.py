"""Experiment harness: app runner, parallel sweep engine, and one
definition per paper artefact."""

from . import experiments
from .runner import AppRun, run_app, run_matrix
from .sweep import (
    SweepEngine,
    SweepError,
    SweepJob,
    SweepProgress,
    SweepReport,
    job_key,
)

__all__ = [
    "experiments",
    "AppRun",
    "run_app",
    "run_matrix",
    "SweepEngine",
    "SweepError",
    "SweepJob",
    "SweepProgress",
    "SweepReport",
    "job_key",
]
