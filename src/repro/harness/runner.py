"""Run applications on system configurations and collect metrics.

This is the layer every experiment and benchmark goes through: it builds
the workload trace, instantiates a fresh :class:`~repro.sim.System`, runs
it with online coherence checking, and returns the evaluation-facing
:class:`~repro.analysis.metrics.RunMetrics`.

Pass ``trace=`` to record an observability trace of the run (see
:mod:`repro.obs`): a :class:`~repro.obs.Tracer` to use directly, a
:class:`~repro.obs.TraceConfig` to build one from, or ``True`` for a
default full-fidelity tracer.  The tracer ends up on ``AppRun.trace`` and
its metrics summary in ``AppRun.stats`` alongside ``RunResult.extras``.
"""

from dataclasses import dataclass
from typing import Optional

from ..analysis.metrics import RunMetrics, consumer_histogram, metrics_from_result
from ..obs import TraceConfig, Tracer
from ..sim.system import System
from ..workloads.registry import get_workload


@dataclass
class AppRun:
    """One (application, configuration) execution and its products."""

    app: str
    metrics: RunMetrics
    consumer_hist: dict
    stats: dict
    trace: Optional[Tracer] = None
    obs: Optional[dict] = None  # RunResult.extras["obs"] when traced


def _resolve_tracer(trace):
    """Normalise run_app's ``trace`` argument to a Tracer or None."""
    if trace is None or trace is False:
        return None
    if trace is True:
        return Tracer()
    if isinstance(trace, Tracer):
        return trace
    if isinstance(trace, TraceConfig):
        return Tracer(trace)
    raise TypeError("trace must be None, bool, Tracer or TraceConfig; "
                    "got %r" % (trace,))


def run_app(app, config, num_cpus=None, seed=12345, scale=1.0,
            check_coherence=True, trace=None, chaos=None):
    """Execute ``app`` on ``config`` and return an :class:`AppRun`.

    ``scale`` shrinks the workload (iterations and line counts) for quick
    runs; results at small scales are noisier but directionally faithful.
    ``chaos`` (a :class:`~repro.network.ChaosConfig`) injects network
    faults — see :mod:`repro.fuzz`.
    """
    cpus = num_cpus if num_cpus is not None else config.num_nodes
    build = get_workload(app, num_cpus=cpus, seed=seed, scale=scale).build()
    tracer = _resolve_tracer(trace)
    system = System(config, check_coherence=check_coherence, tracer=tracer,
                    chaos=chaos)
    result = system.run(build.per_cpu_ops, placements=build.placements)
    return AppRun(app=app,
                  metrics=metrics_from_result(result),
                  consumer_hist=consumer_histogram(result),
                  stats=result.stats,
                  trace=tracer,
                  obs=result.extras.get("obs"))


def run_matrix(apps, configs, seed=12345, scale=1.0, check_coherence=True,
               engine=None):
    """Run every app on every configuration.

    ``configs`` maps a configuration name to a :class:`SystemConfig`.
    Returns ``{(app, config_name): AppRun}``.  The matrix is submitted as
    one batch through a sweep engine (see :mod:`repro.harness.sweep`);
    pass ``engine`` to parallelise or cache, the default is serial and
    uncached.
    """
    from .sweep import SweepJob, default_engine

    engine = engine if engine is not None else default_engine()
    return engine.run_many(
        {(app, name): SweepJob(app=app, config=config, seed=seed,
                               scale=scale, check_coherence=check_coherence)
         for app in apps for name, config in configs.items()})
