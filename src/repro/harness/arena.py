"""The protocol arena: race the adaptive protocol against its baselines.

The paper's claim is comparative — adaptive delegation/update beats plain
write-invalidate on producer-consumer sharing — so the arena runs the same
workloads over every registered protocol (see
:mod:`repro.protocol.arena`) and renders the comparison: traffic bytes,
hop-class miss breakdown, and miss-latency p50/p95 per workload per
protocol.

Every (workload, protocol) cell is one :class:`~repro.harness.sweep.
SweepJob` submitted through a :class:`~repro.harness.sweep.SweepEngine`,
so arena sweeps parallelise and cache exactly like every other
experiment; ``protocol_name`` rides in the config and therefore in the
cache key.  All cells share one *base* config — each protocol then
normalises it onto its own feature set (``wi`` strips delegation, ``mesi``
also drops the RAC...), which is the point: equal hardware budget, the
protocol is the only variable.
"""

from dataclasses import replace

from ..analysis.tables import render_table
from ..common import params
from ..common import stats as S
from ..obs import TraceConfig, Tracer
from ..protocol.arena import ARENA_PROTOCOLS, resolve_protocol
from .runner import run_app
from .sweep import SweepJob, _payload_from_run

#: Default arena workloads: the two apps with the strongest
#: producer-consumer signature (Table 2), so the default report actually
#: shows the protocols apart.
DEFAULT_APPS = ("em3d", "ocean")


def arena_runner(job):
    """Worker-side runner for arena cells (module-level so it pickles by
    reference).  The normal sweep payload plus the traced miss-latency
    histograms the report's p50/p95 columns come from."""
    tracer = Tracer(TraceConfig(capture_messages=False))
    run = run_app(job.app, job.config, num_cpus=job.num_cpus, seed=job.seed,
                  scale=job.scale, check_coherence=job.check_coherence,
                  chaos=job.chaos, trace=tracer)
    payload = dict(_payload_from_run(run))
    payload["obs"] = run.obs
    return payload


def _percentile(hist_doc, fraction):
    """p-quantile upper bound from a serialised Histogram dict, or None."""
    if not hist_doc or not hist_doc.get("count"):
        return None
    bounds, counts = hist_doc["bounds"], hist_doc["counts"]
    threshold = fraction * hist_doc["count"]
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= threshold and bucket_count:
            if index >= len(bounds):
                return hist_doc["max"]
            return bounds[index]
    return hist_doc["max"]


def _merged_latency(obs):
    """One merged miss-latency histogram doc across the hop classes."""
    if not obs:
        return None
    per_class = obs.get("miss_latency") or {}
    merged = None
    for doc in per_class.values():
        if not doc or not doc.get("count"):
            continue
        if merged is None:
            merged = {"bounds": list(doc["bounds"]),
                      "counts": list(doc["counts"]),
                      "count": doc["count"], "max": doc["max"]}
        else:
            # All obs histograms share MISS_LATENCY_BOUNDS; merge by bucket.
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], doc["counts"])]
            merged["count"] += doc["count"]
            if doc["max"] is not None and (merged["max"] is None
                                           or doc["max"] > merged["max"]):
                merged["max"] = doc["max"]
    return merged


class ArenaReport:
    """Results of one arena sweep: ``cells[(app, protocol)] -> payload``."""

    def __init__(self, apps, protocols, cells, base_name, seed, scale):
        self.apps = list(apps)
        self.protocols = list(protocols)
        self.cells = cells
        self.base_name = base_name
        self.seed = seed
        self.scale = scale

    def row(self, app, protocol):
        """The report row for one cell, as a plain dict."""
        payload = self.cells[(app, protocol)]
        stats = payload["stats"]
        latency = _merged_latency(payload.get("obs"))
        return {
            "protocol": protocol,
            "cycles": payload["cycles"],
            "traffic_bytes": stats.get(S.MSG_BYTES, 0),
            "miss_local": stats.get(S.MISS_LOCAL, 0),
            "miss_2hop": stats.get(S.MISS_2HOP, 0),
            "miss_3hop": stats.get(S.MISS_3HOP, 0),
            "updates_sent": stats.get(S.UPDATES_SENT, 0),
            "miss_p50": _percentile(latency, 0.50),
            "miss_p95": _percentile(latency, 0.95),
        }

    def render_text(self):
        """The full comparison: one table per workload."""
        headers = ["protocol", "cycles", "traffic B", "miss local",
                   "2hop", "3hop", "updates", "lat p50", "lat p95"]
        blocks = ["protocol arena  (base config %s, seed %d, scale %g)"
                  % (self.base_name, self.seed, self.scale)]
        for app in self.apps:
            rows = []
            for protocol in self.protocols:
                rec = self.row(app, protocol)
                rows.append([rec["protocol"], rec["cycles"],
                             rec["traffic_bytes"], rec["miss_local"],
                             rec["miss_2hop"], rec["miss_3hop"],
                             rec["updates_sent"],
                             rec["miss_p50"] if rec["miss_p50"] is not None
                             else "-",
                             rec["miss_p95"] if rec["miss_p95"] is not None
                             else "-"])
            blocks.append(render_table(headers, rows, title="[%s]" % app))
        return "\n\n".join(blocks)

    def to_json(self):
        """JSON-safe document of every cell's report row."""
        return {
            "base_config": self.base_name,
            "seed": self.seed,
            "scale": self.scale,
            "apps": self.apps,
            "protocols": self.protocols,
            "rows": {app: [self.row(app, protocol)
                           for protocol in self.protocols]
                     for app in self.apps},
        }


def run_arena(apps=DEFAULT_APPS, protocols=ARENA_PROTOCOLS, base=None,
              base_name="small", seed=12345, scale=0.5, engine=None):
    """Sweep ``apps`` x ``protocols`` and return an :class:`ArenaReport`.

    ``base`` is the shared base :class:`SystemConfig` (default: the named
    preset ``base_name`` from :mod:`repro.common.params`); every protocol
    runs ``replace(base, protocol_name=...)`` and normalises it itself at
    System construction.  ``engine`` must have been built with
    ``runner=arena_runner`` (CLI and :func:`arena_engine` do); the default
    is serial and uncached.
    """
    if base is None:
        base = getattr(params, base_name)()
    for name in protocols:
        resolve_protocol(name)  # fail fast on typos, before any sim runs
    if engine is None:
        engine = arena_engine()
    jobs = {
        (app, protocol): SweepJob(
            app=app, config=replace(base, protocol_name=protocol),
            seed=seed, scale=scale)
        for app in apps for protocol in protocols
    }
    cells = engine.run_many(jobs)
    return ArenaReport(apps=apps, protocols=protocols, cells=cells,
                       base_name=base_name, seed=seed, scale=scale)


def arena_engine(jobs=1, cache=False, **kwargs):
    """A :class:`SweepEngine` wired for arena payloads (the engine's
    default decoder is the identity when a custom runner is set)."""
    from .sweep import SweepEngine

    return SweepEngine(jobs=jobs, cache=cache, runner=arena_runner,
                       **kwargs)


__all__ = ["ArenaReport", "DEFAULT_APPS", "arena_engine", "arena_runner",
           "run_arena"]
