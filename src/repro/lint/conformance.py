"""The sim ↔ model-checker message-name correspondence.

The simulator (``repro.network.message.MsgType``) and the abstract model
(``repro.mc.model``'s string tokens) are two independent encodings of the
same protocol; they deliberately use different names.  This module is the
single place that records the correspondence, so the conformance checks
can diff the two transition systems.

Each simulator message maps to a *tuple* of model tokens:

* most map 1:1 under renaming (``SHARED_WB`` ↔ ``SH_WB``);
* ``NACK`` fans out — the model splits the simulator's payload-discriminated
  NACK (``{"for": "miss" | "intervention" | "recall"}``) into three tokens
  (``NACK``, ``NACKI``, ``NACKR``);
* an *empty* tuple documents in code that the message has no model
  counterpart at all — the finding it produces must still be justified in
  the allowlist file, which is the reviewed record of intentional gaps.

A simulator message *absent* from this map is an error (CON001): adding a
message without deciding its model status is exactly the drift this check
exists to catch.
"""

#: sim MsgType name -> tuple of mc tokens it corresponds to.
SIM_TO_MC = {
    "GETS": ("GETS",),
    "GETX": ("GETX",),
    "DATA_SHARED": ("DATA_S",),
    "DATA_EXCL": ("DATA_E",),
    "ACK_X": ("ACK_X",),
    "INV": ("INV",),
    "INV_ACK": ("INV_ACK",),
    "WRITEBACK": ("WB",),
    "EVICT_CLEAN": ("EVC",),
    "WB_ACK": (),  # model applies writebacks atomically; no ack round-trip
    "NACK": ("NACK", "NACKI", "NACKR"),
    "NACK_NOT_HOME": ("NACKNH",),
    "DELEGATE": ("DELEGATE",),
    "UNDELE": ("UNDELE",),
    "UNDELE_REQ": ("UNDELE_REQ",),
    "HOME_CHANGED": ("HC",),
    "INTERVENTION": ("INT",),
    "SHARED_WB": ("SH_WB",),
    "SHARED_RESP": ("SH_RESP",),
    "EXCL_RESP": ("EX_RESP",),
    "XFER_OWNER": ("XFER",),
    "UPDATE": ("UPDATE",),
    "UPDATE_ACK": ("UPDATE_ACK",),
}

#: mc token -> sim MsgType name (derived; many-to-one for the NACK family).
MC_TO_SIM = {}
for _sim, _tokens in SIM_TO_MC.items():
    for _token in _tokens:
        MC_TO_SIM[_token] = _sim


def mc_counterparts(sim_name):
    """Model tokens for a sim message; None if the map doesn't know it."""
    return SIM_TO_MC.get(sim_name)


def sim_counterpart(mc_token):
    """Sim message for a model token; None if the map doesn't know it."""
    return MC_TO_SIM.get(mc_token)
