"""The sim ↔ model-checker message-name correspondence.

The simulator (``repro.network.message.MsgType``) and the abstract model
(``repro.mc.model``'s string tokens) are two independent encodings of the
same protocol; they deliberately use different names.  The correspondence
used to live here as a hand-maintained dict; it is now *derived from the
adaptive protocol spec* (:mod:`repro.spec.protocols.adaptive`), where
each ``Msg`` declares its model tokens — so the map, the conformance
diff, and the spec analyses all read one source of truth.

Each simulator message maps to a *tuple* of model tokens:

* most map 1:1 under renaming (``SHARED_WB`` ↔ ``SH_WB``);
* ``NACK`` fans out — the model splits the simulator's
  payload-discriminated NACK (``{"for": "miss" | "intervention" |
  "recall"}``) into three tokens (``NACK``, ``NACKI``, ``NACKR``);
* an *empty* tuple documents that the message has no model counterpart
  at all; the spec's ``Msg.note`` carries the reviewed justification
  (``WB_ACK`` — the model applies writebacks atomically).

A simulator message *absent* from this map is an error (CON001): adding
a message without deciding its model status is exactly the drift this
check exists to catch.

This module keeps a module-level fallback copy of the map so legacy
trees (no ``spec/`` directory) still lint; when the installed adaptive
spec is importable, the derived map replaces it at first use.
"""

from typing import Dict, Optional, Tuple

#: Fallback map for environments where the spec package is unavailable.
_FALLBACK_SIM_TO_MC: Dict[str, Tuple[str, ...]] = {
    "GETS": ("GETS",),
    "GETX": ("GETX",),
    "DATA_SHARED": ("DATA_S",),
    "DATA_EXCL": ("DATA_E",),
    "ACK_X": ("ACK_X",),
    "INV": ("INV",),
    "INV_ACK": ("INV_ACK",),
    "WRITEBACK": ("WB",),
    "EVICT_CLEAN": ("EVC",),
    "WB_ACK": (),  # model applies writebacks atomically; no ack round-trip
    "NACK": ("NACK", "NACKI", "NACKR"),
    "NACK_NOT_HOME": ("NACKNH",),
    "DELEGATE": ("DELEGATE",),
    "UNDELE": ("UNDELE",),
    "UNDELE_REQ": ("UNDELE_REQ",),
    "HOME_CHANGED": ("HC",),
    "INTERVENTION": ("INT",),
    "SHARED_WB": ("SH_WB",),
    "SHARED_RESP": ("SH_RESP",),
    "EXCL_RESP": ("EX_RESP",),
    "XFER_OWNER": ("XFER",),
    "UPDATE": ("UPDATE",),
    "UPDATE_ACK": ("UPDATE_ACK",),
}

_sim_to_mc: Optional[Dict[str, Tuple[str, ...]]] = None
_mc_to_sim: Optional[Dict[str, str]] = None


def _load() -> None:
    global _sim_to_mc, _mc_to_sim
    if _sim_to_mc is not None:
        return
    try:
        from ..spec.registry import get_spec
        spec = get_spec("adaptive")
        _sim_to_mc = {msg.name: msg.mc for msg in spec.messages}
    except Exception:  # pragma: no cover - spec package always ships
        _sim_to_mc = dict(_FALLBACK_SIM_TO_MC)
    _mc_to_sim = {}
    for sim, tokens in _sim_to_mc.items():
        for token in tokens:
            _mc_to_sim[token] = sim


def sim_to_mc_map() -> Dict[str, Tuple[str, ...]]:
    """The full sim-name → mc-token map (spec-derived)."""
    _load()
    assert _sim_to_mc is not None
    return dict(_sim_to_mc)


def mc_counterparts(sim_name: str) -> Optional[Tuple[str, ...]]:
    """Model tokens for a sim message; None if the map doesn't know it."""
    _load()
    assert _sim_to_mc is not None
    return _sim_to_mc.get(sim_name)


def sim_counterpart(mc_token: str) -> Optional[str]:
    """Sim message for a model token; None if the map doesn't know it."""
    _load()
    assert _mc_to_sim is not None
    return _mc_to_sim.get(mc_token)
