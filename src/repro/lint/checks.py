"""The check registry: every static check run over the protocol graphs.

Check-id families (stable — mutation tests and the allowlist key on them):

=========  =========  ===================================================
check id   severity   meaning
=========  =========  ===================================================
COV001     error      a message is emitted but has no registered handler
COV002     error      a declared message is never emitted (dead message)
COV003     error      a declared sim MsgType has no handler entry
CON001     error      sim message with no model counterpart (unmapped,
                      unmodeled, or counterpart unhandled)
CON002     error      model token with no sim counterpart
CON003     warning    sim transition (handled msg -> emitted msg) the
                      spec (or, on legacy trees, the model) doesn't allow
CON004     warning    model transition the spec (or the sim) doesn't allow
CON005     error      spec-required sim transition absent from the sim
                      (spec-driven trees only)
CON006     error      spec-required model transition absent from the
                      model (spec-driven trees only)
SPC001-7   mixed      spec-level analyses (see repro.spec.analyze and
                      repro.spec.conformance) — spec-driven trees only
DLK001     warning    message-dependency cycle not broken by a NACK
DLK002     warning    NACK handler re-emits a request with no retry bound
RCH001     error      state no transition ever enters
RCH002     warning    state entered but never examined (can't be left on
                      purpose — no transition is conditioned on it)
EXT001     note       emission whose MsgType could not be resolved
                      statically (extraction blind spot)
ARN001     error      arena protocol handler table references an unknown
                      MsgType (baseline hubs are outside the CON graph —
                      no mc twin — so this is their only static guard)
ALW001     warning    stale allowlist entry (matched nothing this run)
=========  =========  ===================================================

Each check yields :class:`~repro.lint.findings.Finding` objects with a
*fingerprint* that is stable under reformatting, so the allowlist keys on
meaning rather than on line numbers.
"""

from .conformance import mc_counterparts, sim_counterpart
from .findings import Finding, Severity

#: Messages that initiate work and are retried after a NACK; a retry edge
#: re-emitting one of these with no bounding counter is a livelock risk.
REQUEST_CLASS = {"GETS", "GETX", "UNDELE_REQ", "INTERVENTION"}

#: Sim messages that break a dependency cycle by design (negative acks
#: bounce work back to the requester instead of holding resources).
NACK_FAMILY = {"NACK", "NACK_NOT_HOME"}


def _first_site(emissions, name):
    for emission in emissions:
        if emission.mtype == name:
            return emission
    return None


# -- COV: handler coverage ----------------------------------------------------


def check_coverage(sim, mc):
    """COV001/COV002/COV003 over both graphs."""
    for graph in (sim, mc):
        emissions = graph.all_emissions()
        emitted = {e.mtype for e in emissions if e.mtype is not None}
        # COV001: emitted but unhandled.
        for name in sorted(emitted - set(graph.handlers)):
            site = _first_site(emissions, name)
            yield Finding(
                check_id="COV001", severity=Severity.ERROR, side=graph.side,
                fingerprint="%s:%s" % (graph.side, name),
                message="%s message %s is emitted (e.g. in %s) but no "
                        "handler is registered for it"
                        % (graph.side, name, site.func if site else "?"),
                file=site.file if site else None,
                line=site.line if site else None)
        # COV002: declared but never emitted (dead message).
        for name in sorted(set(graph.messages) - emitted):
            decl = graph.messages[name]
            yield Finding(
                check_id="COV002", severity=Severity.ERROR, side=graph.side,
                fingerprint="%s:%s" % (graph.side, name),
                message="%s message %s is declared but never emitted by "
                        "any handler or entry point (dead message)"
                        % (graph.side, name),
                file=decl.file, line=decl.line)
    # COV003: sim enum members missing from the dispatch table.  (The mc
    # side has no separate declaration to diff against — its vocabulary
    # *is* its handler set plus emissions, which COV001/COV002 cover.)
    for name in sorted(set(sim.messages) - set(sim.handlers)):
        decl = sim.messages[name]
        yield Finding(
            check_id="COV003", severity=Severity.ERROR, side="sim",
            fingerprint=name,
            message="MsgType.%s has no entry in the hub dispatch table "
                    "(_handlers)" % name,
            file=decl.file, line=decl.line)


# -- CON: sim <-> mc conformance ----------------------------------------------


def check_conformance(sim, mc, protocols=None, specs=None):
    """Sim ↔ model conformance, spec-driven when the tree has specs.

    A tree with ``spec/protocols/`` modules gets the full spec-driven
    diff (CON001-CON006 plus the SPC family) from :mod:`repro.spec`:
    both graphs are compared against the spec's transition relation, and
    the structured in-spec annotations (``only``/``hoist``/``replay``/
    ``note``) justify the intentional gaps that used to live in the
    allowlist.  A legacy tree without specs falls back to the name-map
    heuristic diff (CON001-CON004) below.
    """
    if specs:
        from ..spec.analyze import run_spec_checks
        from ..spec.conformance import run_conformance
        for name in sorted(specs):
            yield from run_spec_checks(specs[name])
        yield from run_conformance(specs, sim, mc, protocols)
    else:
        yield from _check_conformance_heuristic(sim, mc)


def _check_conformance_heuristic(sim, mc):
    """CON001/CON002 (vocabulary) and CON003/CON004 (transitions)."""
    # CON001: every sim message needs a live model counterpart.
    for name in sorted(sim.messages):
        decl = sim.messages[name]
        tokens = mc_counterparts(name)
        if tokens is None:
            yield Finding(
                check_id="CON001", severity=Severity.ERROR, side="both",
                fingerprint=name,
                message="MsgType.%s has no entry in the sim<->mc "
                        "conformance map (repro.lint.conformance)" % name,
                file=decl.file, line=decl.line)
            continue
        handled = [t for t in tokens if t in mc.handlers]
        if not handled:
            detail = ("maps to no model token"
                      if not tokens else
                      "maps to %s, none of which the model handles"
                      % "/".join(tokens))
            yield Finding(
                check_id="CON001", severity=Severity.ERROR, side="both",
                fingerprint=name,
                message="MsgType.%s %s" % (name, detail),
                file=decl.file, line=decl.line)
    # CON002: every model token needs a sim counterpart.
    for token in sorted(mc.messages):
        if sim_counterpart(token) is None:
            decl = mc.messages[token]
            yield Finding(
                check_id="CON002", severity=Severity.ERROR, side="both",
                fingerprint=token,
                message="model token %s has no sim counterpart in the "
                        "conformance map" % token,
                file=decl.file, line=decl.line)
    # CON003/CON004: per-message transition diff.  For each sim message
    # whose counterpart the model handles, compare what each side can
    # emit while handling it.
    for name in sorted(sim.handlers):
        tokens = mc_counterparts(name) or ()
        handled = [t for t in tokens if t in mc.handlers]
        if not handled:
            continue  # vocabulary gap already reported by CON001
        sim_out = sim.emitted_names(name)
        mc_out = set()
        for token in handled:
            mc_out |= mc.emitted_names(token)
        decl = sim.messages.get(name)
        # sim transition missing from the model.
        for out in sorted(sim_out):
            out_tokens = mc_counterparts(out)
            if out_tokens is None or not out_tokens:
                continue  # unmapped/unmodeled output: CON001's business
            if not (set(out_tokens) & mc_out):
                yield Finding(
                    check_id="CON003", severity=Severity.WARNING,
                    side="both", fingerprint="%s->%s" % (name, out),
                    message="sim handling of %s can emit %s, but the "
                            "model's %s handler(s) never emit %s"
                            % (name, out, "/".join(handled),
                               "/".join(out_tokens)),
                    file=decl.file if decl else None,
                    line=decl.line if decl else None)
        # model transition missing from the sim.
        for out in sorted(mc_out):
            sim_out_name = sim_counterpart(out)
            if sim_out_name is None:
                continue  # unmapped token: CON002's business
            if sim_out_name not in sim_out:
                yield Finding(
                    check_id="CON004", severity=Severity.WARNING,
                    side="both",
                    fingerprint="%s->%s" % (name, sim_out_name),
                    message="model handling of %s can emit %s (sim %s), "
                            "but the sim's %s handler never emits it"
                            % ("/".join(handled), out, sim_out_name, name),
                    file=decl.file if decl else None,
                    line=decl.line if decl else None)


# -- DLK: deadlock / livelock heuristics --------------------------------------


def _strongly_connected(graph):
    """Tarjan's SCC over ``{node: set(successors)}``; iterative."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(root):
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sccs


def check_deadlock(sim):
    """DLK001 (cycles without a NACK) and DLK002 (unbounded retries)."""
    digraph = sim.message_graph()
    # Direct self-loops: handling X can re-emit X (e.g. a forward).  These
    # are flagged even when X sits inside a larger NACK-containing SCC,
    # because the self-edge itself never passes through the NACK.
    for name in sorted(digraph):
        if name in digraph[name] and name not in NACK_FAMILY:
            anchor = sim.messages.get(name)
            yield Finding(
                check_id="DLK001", severity=Severity.WARNING, side="sim",
                fingerprint="cycle:%s" % name,
                message="handling %s can re-emit %s (forwarding "
                        "self-loop); unbounded if the forward target can "
                        "bounce it back" % (name, name),
                file=anchor.file if anchor else None,
                line=anchor.line if anchor else None)
    # Multi-message cycles with no NACK to bounce work back.
    for scc in _strongly_connected(digraph):
        members = set(scc)
        if len(scc) < 2 or members & NACK_FAMILY:
            continue
        cycle = ">".join(sorted(members))
        anchor = sim.messages.get(sorted(members)[0])
        yield Finding(
            check_id="DLK001", severity=Severity.WARNING, side="sim",
            fingerprint="cycle:%s" % cycle,
            message="message-dependency cycle {%s} is not broken by a "
                    "NACK; if every edge can block, this is a deadlock "
                    "candidate" % ", ".join(sorted(members)),
            file=anchor.file if anchor else None,
            line=anchor.line if anchor else None)
    # DLK002: a NACK handler that re-emits a request-class message on a
    # path with no retry-bound comparison can livelock under contention.
    for name in sorted(NACK_FAMILY & set(sim.handlers)):
        for emission in sim.emissions_for(name):
            if emission.mtype in REQUEST_CLASS and not emission.bounded:
                yield Finding(
                    check_id="DLK002", severity=Severity.WARNING,
                    side="sim",
                    fingerprint="%s->%s@%s" % (name, emission.mtype,
                                               emission.func),
                    message="%s handling re-emits %s in %s with no retry "
                            "bound on the path (unbounded NACK/retry "
                            "loop)" % (name, emission.mtype, emission.func),
                    file=emission.file, line=emission.line)


# -- RCH: state reachability --------------------------------------------------


def check_reachability(state_usages):
    """RCH001/RCH002 over the audited protocol enums."""
    for enum_name in sorted(state_usages):
        usage = state_usages[enum_name]
        for member in sorted(usage.members):
            info = usage.members[member]
            stores, reads = info["stores"], info["reads"]
            fingerprint = "%s.%s" % (enum_name, member)
            if not stores:
                yield Finding(
                    check_id="RCH001", severity=Severity.ERROR, side="sim",
                    fingerprint=fingerprint,
                    message="%s.%s is never assigned anywhere in the "
                            "source tree (%d read site(s)) — unreachable "
                            "state" % (enum_name, member, len(reads)),
                    file=usage.file, line=info["line"])
            elif not reads:
                yield Finding(
                    check_id="RCH002", severity=Severity.WARNING,
                    side="sim", fingerprint=fingerprint,
                    message="%s.%s is assigned (%d site(s)) but no "
                            "transition is ever conditioned on it — the "
                            "state cannot be left on purpose"
                            % (enum_name, member, len(stores)),
                    file=usage.file, line=info["line"])


# -- EXT: extraction blind spots ----------------------------------------------


def check_extraction(sim, mc):
    """EXT001: emission sites whose message type is statically opaque."""
    for graph in (sim, mc):
        seen = set()
        for emission in graph.all_emissions():
            if emission.mtype is not None:
                continue
            fingerprint = "%s:%s" % (graph.side, emission.func)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            yield Finding(
                check_id="EXT001", severity=Severity.NOTE, side=graph.side,
                fingerprint=fingerprint,
                message="%s emission in %s has a message type the "
                        "extractor cannot resolve statically"
                        % (graph.side, emission.func),
                file=emission.file, line=emission.line)


# -- ARN: arena-protocol registry ---------------------------------------------


def check_arena(sim, protocols):
    """ARN001: arena handler tables must stay inside the MsgType
    vocabulary.

    The baseline hubs (``wi``/``mesi``/``dragon``) are deliberately
    outside the sim<->mc conformance graph — they have no model twin, so
    the CON checks *skip* them rather than diffing them against a model
    of a different protocol.  This is the one static guard they keep: a
    typo'd or stale ``MsgType`` in a baseline ``_handlers`` table would
    otherwise only surface as an AttributeError mid-sweep.
    """
    known = set(sim.messages)
    if not known:
        return
    for proto in protocols.values():
        for name in sorted(set(proto.handlers) - known):
            yield Finding(
                check_id="ARN001", severity=Severity.ERROR, side="sim",
                fingerprint="%s:%s" % (proto.name, name),
                message="arena protocol %r registers a handler for %s, "
                        "which is not a declared MsgType"
                        % (proto.name, name),
                file="protocol/arena.py", line=proto.line)


#: The registry, in report order.  Each entry is (callable, arg names);
#: ``run_checks`` wires the extracted artefacts in by name.
CHECKS = (
    (check_coverage, ("sim", "mc")),
    (check_conformance, ("sim", "mc", "protocols", "specs")),
    (check_deadlock, ("sim",)),
    (check_reachability, ("states",)),
    (check_extraction, ("sim", "mc")),
    (check_arena, ("sim", "protocols")),
)


def run_checks(sim, mc, states, protocols=None, specs=None):
    """Run every registered check; return the flat finding list."""
    artefacts = {"sim": sim, "mc": mc, "states": states,
                 "protocols": protocols or {}, "specs": specs or {}}
    findings = []
    for check, args in CHECKS:
        findings.extend(check(*[artefacts[a] for a in args]))
    return findings
