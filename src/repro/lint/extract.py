"""Static extraction of the protocol graph from the simulator and model.

Everything here is pure AST analysis — no repro module is imported from the
analyzed tree, so the extractor can run over arbitrary (e.g. deliberately
mutated) source snapshots.  Two graphs come out:

* the **simulator graph** — ``MsgType`` vocabulary from
  ``network/message.py``, the ``Hub._handlers`` dispatch table from
  ``protocol/hub.py``, and per-method ``Message(MsgType.X, ...)`` emission
  sites across ``protocol/*.py``, closed over ``self.*`` helper calls;
* the **model graph** — ``_on_*`` handlers of ``mc/model.py``'s
  ``ProtocolModel`` and the message tuples its rules/handlers feed to
  ``_net_add``/``_net_add_unique``.

Handler *closures* follow helper calls transitively (including methods only
referenced as ``events.schedule`` callbacks) and prune branches guarded by
``msg.mtype is MsgType.X`` tests when analysing a different message — that
is what keeps the shared ``_route_request`` entry from smearing the GETS
and GETX transition sets into each other.  ``Message(msg.mtype, ...)``
forwards resolve to the message being handled.

State usage (for reachability checks) is collected for the protocol enums
(:class:`DirState`, :class:`LineState`, ...) over the whole source tree:
each ``Enum.MEMBER`` reference site is classified as a *store* (the member
is assigned/installed somewhere) or a *read* (compared or otherwise
consumed).
"""

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Message-name aliases handled per registered message in the simulator.
SIM_PROTOCOL_FILES = ("hub.py", "home.py", "producer.py", "requester.py",
                      "delegate_cache.py", "transactions.py")

#: Entry points that originate protocol traffic without handling a message.
SIM_ENTRY_POINTS = ("request_read", "request_write")

#: Enums whose members the reachability checks audit, as
#: (file-relative-to-package, class name) pairs.
STATE_ENUMS = (
    ("directory/state.py", "DirState"),
    ("cache/line.py", "LineState"),
    ("cache/line.py", "RacKind"),
    ("protocol/transactions.py", "BusyKind"),
    ("protocol/transactions.py", "MissKind"),
    ("protocol/transactions.py", "PathClass"),
)

#: Sentinel for ``Message(msg.mtype, ...)`` — "the message being handled".
SELF_TYPE = "@self"


@dataclass
class Emission:
    """One message-construction site."""

    mtype: Optional[str]   # message name, SELF_TYPE, or None (unresolvable)
    dst: str               # unparsed destination expression ("" if unknown)
    func: str
    file: str
    line: int
    bounded: bool = False  # a retry-bound guard dominates this emission


@dataclass
class Item:
    """One guarded fact inside a function body: an emission or a callee."""

    kind: str                                  # "emit" | "call"
    emission: Optional[Emission] = None
    callee: Optional[str] = None
    guards: Tuple[Tuple[str, bool], ...] = ()  # (msg name, polarity) tests

    def active_for(self, msg):
        """Whether this item applies when handling message ``msg``."""
        if msg is None:
            return True
        for name, wanted in self.guards:
            if (name == msg) is not wanted:
                return False
        return True


@dataclass
class FuncInfo:
    """Static summary of one function/method."""

    name: str
    file: str
    line: int
    items: List[Item] = field(default_factory=list)
    has_retry_guard: bool = False


@dataclass
class MsgDecl:
    """One declared message type (sim: an enum member; mc: a token)."""

    name: str
    file: str
    line: int
    data_bearing: Optional[bool] = None


class Graph:
    """One side's protocol graph: vocabulary, handlers, emission closure."""

    def __init__(self, side):
        self.side = side                 # "sim" | "mc"
        self.messages: Dict[str, MsgDecl] = {}
        self.handlers: Dict[str, List[str]] = {}
        self.entry_points: List[str] = []
        self.funcs: Dict[str, FuncInfo] = {}
        self.duplicate_funcs: List[str] = []

    # -- closure ----------------------------------------------------------

    def closure_emissions(self, start_funcs, msg=None):
        """Every emission reachable from ``start_funcs`` when handling
        ``msg`` (guard-pruned), with retry-boundedness propagated along
        call paths.  ``SELF_TYPE`` emissions resolve to ``msg``."""
        emissions = []
        seen = set()
        stack = [(name, False) for name in start_funcs]
        while stack:
            name, bounded = stack.pop()
            func = self.funcs.get(name)
            if func is None:
                continue
            bounded = bounded or func.has_retry_guard
            if (name, bounded) in seen:
                continue
            # A bounded visit subsumes nothing: the same function may be
            # reachable both guarded and unguarded, and the unguarded path
            # is the risky one, so both states are explored.
            seen.add((name, bounded))
            for item in func.items:
                if not item.active_for(msg):
                    continue
                if item.kind == "emit":
                    emission = item.emission
                    mtype = emission.mtype
                    if mtype == SELF_TYPE:
                        mtype = msg
                    emissions.append(Emission(
                        mtype=mtype, dst=emission.dst, func=emission.func,
                        file=emission.file, line=emission.line,
                        bounded=bounded))
                elif item.callee in self.funcs:
                    stack.append((item.callee, bounded))
        return emissions

    def emissions_for(self, msg):
        """Emissions reachable from ``msg``'s registered handlers."""
        return self.closure_emissions(self.handlers.get(msg, ()), msg=msg)

    def emitted_names(self, msg):
        return {e.mtype for e in self.emissions_for(msg)
                if e.mtype is not None}

    def all_emissions(self):
        """Every emission reachable from any handler or entry point."""
        out = []
        for msg in self.handlers:
            out.extend(self.emissions_for(msg))
        out.extend(self.closure_emissions(self.entry_points, msg=None))
        return out

    def message_graph(self):
        """Message dependency digraph: handled message -> emitted names."""
        return {msg: self.emitted_names(msg) for msg in self.handlers}


@dataclass
class StateUsage:
    """Reference census for one enum class."""

    enum: str
    file: str
    members: Dict[str, dict] = field(default_factory=dict)  # name -> info

    def add_member(self, name, line):
        self.members[name] = {"line": line, "stores": [], "reads": []}


# -- shared AST helpers -------------------------------------------------------


def _parse(path):
    return ast.parse(path.read_text(), filename=str(path))


def _is_enum_attr(node, enum_name):
    """``node`` is an ``EnumName.MEMBER`` attribute access."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == enum_name)


def _match_mtype_guard(test):
    """``msg.mtype is [not] MsgType.X`` -> (name, polarity), else None."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if not (isinstance(left, ast.Attribute) and left.attr == "mtype"
            and isinstance(left.value, ast.Name) and left.value.id == "msg"):
        return None
    if not _is_enum_attr(right, "MsgType"):
        return None
    if isinstance(op, (ast.Is, ast.Eq)):
        return (right.attr, True)
    if isinstance(op, (ast.IsNot, ast.NotEq)):
        return (right.attr, False)
    return None


def _has_retry_guard(func_node):
    """A comparison against a retry/backoff bound appears in the body."""
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Compare):
            continue
        for part in [node.left] + list(node.comparators):
            for sub in ast.walk(part):
                name = None
                if isinstance(sub, ast.Attribute):
                    name = sub.attr
                elif isinstance(sub, ast.Name):
                    name = sub.id
                if name and ("retries" in name or "retry_limit" in name
                             or "max_retries" in name):
                    return True
    return False


def _local_mtype_assigns(func_node):
    """Names assigned ``MsgType.X`` constants anywhere in the function."""
    assigns = {}
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign) and _is_enum_attr(node.value,
                                                          "MsgType"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.setdefault(target.id, []).append(node.value.attr)
    return assigns


# -- simulator extraction -----------------------------------------------------


class _SimFuncVisitor(ast.NodeVisitor):
    """Collects guarded emissions and self-callees from one sim method."""

    def __init__(self, info, relpath, mtype_assigns):
        self.info = info
        self.relpath = relpath
        self.mtype_assigns = mtype_assigns
        self.guards = []

    def visit_If(self, node):
        guard = _match_mtype_guard(node.test)
        if guard is None:
            self.generic_visit(node)
            return
        self.visit(node.test)
        name, polarity = guard
        self.guards.append((name, polarity))
        for child in node.body:
            self.visit(child)
        self.guards.pop()
        self.guards.append((name, not polarity))
        for child in node.orelse:
            self.visit(child)
        self.guards.pop()

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and node.func.id == "Message":
            self._record_message(node)
        self.generic_visit(node)

    def visit_Attribute(self, node):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self.info.items.append(Item(kind="call", callee=node.attr,
                                        guards=tuple(self.guards)))
        self.generic_visit(node)

    def _record_message(self, node):
        dst = ""
        for keyword in node.keywords:
            if keyword.arg == "dst":
                dst = ast.unparse(keyword.value)
        first = node.args[0] if node.args else None
        mtypes = [None]
        if first is None:
            pass
        elif _is_enum_attr(first, "MsgType"):
            mtypes = [first.attr]
        elif isinstance(first, ast.Attribute) and first.attr == "mtype":
            mtypes = [SELF_TYPE]
        elif isinstance(first, ast.Name):
            mtypes = self.mtype_assigns.get(first.id) or [None]
        for mtype in mtypes:
            emission = Emission(mtype=mtype, dst=dst, func=self.info.name,
                                file=self.relpath, line=node.lineno)
            self.info.items.append(Item(kind="emit", emission=emission,
                                        guards=tuple(self.guards)))


def _extract_msgtypes(message_path, relpath):
    messages = {}
    for node in ast.walk(_parse(message_path)):
        if isinstance(node, ast.ClassDef) and node.name == "MsgType":
            for stmt in node.body:
                if not (isinstance(stmt, ast.Assign)
                        and isinstance(stmt.value, ast.Tuple)
                        and stmt.value.elts
                        and isinstance(stmt.value.elts[0], ast.Constant)):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        data = None
                        if len(stmt.value.elts) > 1 and isinstance(
                                stmt.value.elts[1], ast.Constant):
                            data = bool(stmt.value.elts[1].value)
                        messages[target.id] = MsgDecl(
                            name=target.id, file=relpath, line=stmt.lineno,
                            data_bearing=data)
    return messages


def _extract_handler_table(hub_path):
    """The ``self._handlers = {MsgType.X: self._method}`` dispatch dict."""
    handlers = {}
    for node in ast.walk(_parse(hub_path)):
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and node.targets[0].attr == "_handlers"
                and isinstance(node.value, ast.Dict)):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if (_is_enum_attr(key, "MsgType")
                    and isinstance(value, ast.Attribute)):
                handlers.setdefault(key.attr, []).append(value.attr)
    return handlers


def extract_sim(root):
    """Extract the simulator-side protocol graph from package dir ``root``."""
    root = Path(root)
    graph = Graph("sim")
    graph.messages = _extract_msgtypes(root / "network" / "message.py",
                                       "network/message.py")
    graph.handlers = _extract_handler_table(root / "protocol" / "hub.py")
    graph.entry_points = list(SIM_ENTRY_POINTS)
    for filename in SIM_PROTOCOL_FILES:
        path = root / "protocol" / filename
        if not path.exists():
            continue
        relpath = "protocol/" + filename
        for node in ast.walk(_parse(path)):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                if stmt.name in graph.funcs:
                    graph.duplicate_funcs.append(stmt.name)
                info = FuncInfo(name=stmt.name, file=relpath,
                                line=stmt.lineno,
                                has_retry_guard=_has_retry_guard(stmt))
                visitor = _SimFuncVisitor(info, relpath,
                                          _local_mtype_assigns(stmt))
                for child in stmt.body:
                    visitor.visit(child)
                graph.funcs[stmt.name] = info
    return graph


# -- arena-protocol registry extraction ---------------------------------------


@dataclass
class ProtocolDecl:
    """One arena protocol as declared in ``protocol/arena.py``."""

    name: str
    #: ``True`` (hand-written model twin), ``"spec"`` (twin generated
    #: from the guarded-action spec), or ``False`` (no twin).
    mc_twin: Union[bool, str]
    line: int
    #: The hub's own ``_handlers`` table (empty for protocols whose hub
    #: lives outside arena.py, i.e. the adaptive default).
    handlers: Dict[str, List[str]] = field(default_factory=dict)


def extract_protocols(root):
    """Extract the ``PROTOCOLS`` registry from ``protocol/arena.py``.

    Pure AST, like everything else here.  ``arena.py`` is deliberately
    *not* in :data:`SIM_PROTOCOL_FILES` — its hubs are alternative
    protocols with no model-checker twin, so folding their handlers into
    the sim graph would false-positive every sim<->mc conformance check.
    This extractor gives the checks just enough structure to (a) report
    which protocols the conformance diff covers and (b) still validate
    the baseline handler tables against the shared MsgType vocabulary.
    Returns ``{}`` for trees that predate the arena.
    """
    root = Path(root)
    path = root / "protocol" / "arena.py"
    if not path.exists():
        return {}
    tree = _parse(path)
    tables = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        handlers = {}
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Attribute)
                    and sub.targets[0].attr == "_handlers"
                    and isinstance(sub.value, ast.Dict)):
                continue
            for key, value in zip(sub.value.keys, sub.value.values):
                if (_is_enum_attr(key, "MsgType")
                        and isinstance(value, ast.Attribute)):
                    handlers.setdefault(key.attr, []).append(value.attr)
        if handlers:
            tables[node.name] = handlers
    protocols = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "PROTOCOLS"
                and isinstance(node.value, ast.Dict)):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Call)):
                continue
            # Keep the declared *value*: True means the hand-written
            # model twin, "spec" means a twin generated from the
            # protocol's guarded-action spec.
            mc_twin = False
            for keyword in value.keywords:
                if (keyword.arg == "mc_twin"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value):
                    mc_twin = keyword.value.value
            hub = ""
            if len(value.args) > 1 and isinstance(value.args[1], ast.Name):
                hub = value.args[1].id
            protocols[key.value] = ProtocolDecl(
                name=key.value, mc_twin=mc_twin, line=key.lineno,
                handlers=tables.get(hub, {}))
    return protocols


# -- model extraction ---------------------------------------------------------

_NET_ADD_FUNCS = {"_net_add", "_net_add_unique"}


def _is_mc_msg_tuple(node):
    """A literal ``("NAME", src, dst, payload)`` model message."""
    return (isinstance(node, ast.Tuple) and len(node.elts) == 4
            and isinstance(node.elts[0], ast.Constant)
            and isinstance(node.elts[0].value, str)
            and len(node.elts[0].value) >= 2
            and node.elts[0].value.replace("_", "").isupper())


class _McFuncVisitor(ast.NodeVisitor):
    """Collects emissions (tuples reaching ``_net_add``) and callees."""

    def __init__(self, info, relpath, tuple_assigns):
        self.info = info
        self.relpath = relpath
        self.tuple_assigns = tuple_assigns

    def visit_Call(self, node):
        if (isinstance(node.func, ast.Name)
                and node.func.id in _NET_ADD_FUNCS):
            for arg in node.args[1:]:
                if _is_mc_msg_tuple(arg):
                    self._emit(arg)
                elif isinstance(arg, ast.Name):
                    for tup in self.tuple_assigns.get(arg.id, ()):
                        self._emit(tup)
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            self.info.items.append(Item(kind="call",
                                        callee=node.func.attr))
        self.generic_visit(node)

    def visit_Attribute(self, node):
        # Rules referenced without a call (e.g. stored callbacks).
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and not isinstance(getattr(node, "ctx", None), ast.Store)):
            self.info.items.append(Item(kind="call", callee=node.attr))
        self.generic_visit(node)

    def _emit(self, tup):
        dst = ast.unparse(tup.elts[2])
        emission = Emission(mtype=tup.elts[0].value, dst=dst,
                            func=self.info.name, file=self.relpath,
                            line=tup.lineno)
        self.info.items.append(Item(kind="emit", emission=emission))


def _local_tuple_assigns(func_node):
    """Names assigned literal message tuples anywhere in the function."""
    assigns = {}
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            values = []
            if _is_mc_msg_tuple(node.value):
                values = [node.value]
            elif isinstance(node.value, ast.IfExp):
                values = [part for part in (node.value.body,
                                            node.value.orelse)
                          if _is_mc_msg_tuple(part)]
            if not values:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.setdefault(target.id, []).extend(values)
    return assigns


def extract_mc(root, model_class="ProtocolModel"):
    """Extract the model-checker-side graph from ``mc/model.py``."""
    root = Path(root)
    relpath = "mc/model.py"
    graph = Graph("mc")
    tree = _parse(root / "mc" / "model.py")
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == model_class):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            info = FuncInfo(name=stmt.name, file=relpath, line=stmt.lineno,
                            has_retry_guard=_has_retry_guard(stmt))
            visitor = _McFuncVisitor(info, relpath,
                                     _local_tuple_assigns(stmt))
            for child in stmt.body:
                visitor.visit(child)
            graph.funcs[stmt.name] = info
            if stmt.name.startswith("_on_"):
                token = stmt.name[4:].upper()
                graph.handlers.setdefault(token, []).append(stmt.name)
                graph.messages.setdefault(token, MsgDecl(
                    name=token, file=relpath, line=stmt.lineno))
            elif (stmt.name.startswith("rule_")
                    and stmt.name != "rule_deliver"):
                graph.entry_points.append(stmt.name)
    # Vocabulary also includes every emitted token (handled or not).
    for emission in graph.all_emissions():
        if emission.mtype is not None:
            graph.messages.setdefault(emission.mtype, MsgDecl(
                name=emission.mtype, file=emission.file,
                line=emission.line))
    return graph


# -- state-usage extraction ---------------------------------------------------


class _StateRefVisitor(ast.NodeVisitor):
    """Classifies every ``Enum.MEMBER`` reference as a store or a read.

    A member that is a *comparator* (inside any ``Compare``) is a read; a
    member stored anywhere (assignment RHS, dict value, call argument,
    dataclass default) counts as enterable.  The distinction is what lets
    the reachability checks tell "no transition ever enters this state"
    from "this state is entered but never examined".
    """

    def __init__(self, usages, relpath):
        self.usages = usages  # enum name -> StateUsage
        self.relpath = relpath
        self._compare_depth = 0

    def visit_Compare(self, node):
        self._compare_depth += 1
        self.generic_visit(node)
        self._compare_depth -= 1

    def visit_Attribute(self, node):
        usage = self.usages.get(node.value.id) if isinstance(
            node.value, ast.Name) else None
        if usage is not None and node.attr in usage.members:
            bucket = "reads" if self._compare_depth else "stores"
            usage.members[node.attr][bucket].append(
                (self.relpath, node.lineno))
        self.generic_visit(node)


def extract_state_usage(root):
    """Reference census for each audited enum across the whole package."""
    root = Path(root)
    usages = {}
    for rel, enum_name in STATE_ENUMS:
        path = root / rel
        if not path.exists():
            continue
        usage = StateUsage(enum=enum_name, file=rel)
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.ClassDef) and node.name == enum_name:
                for stmt in node.body:
                    if (isinstance(stmt, ast.Assign)
                            and isinstance(stmt.value, (ast.Constant,
                                                        ast.Tuple))):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                usage.add_member(target.id, stmt.lineno)
        usages[enum_name] = usage
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = str(path.relative_to(root))
        visitor = _StateRefVisitor(usages, relpath)
        visitor.visit(_parse(path))
    return usages
